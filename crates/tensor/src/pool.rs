//! Recycled matrix storage for allocation-free hot loops.
//!
//! Training builds and tears down the same set of intermediate matrices on
//! every step. [`BufferPool`] keeps the backing `Vec<f32>` buffers alive
//! between steps, bucketed by power-of-two capacity class, so that after a
//! warm-up pass the tape and optimizer stop touching the heap entirely.

use crate::matrix::Matrix;

/// Number of power-of-two capacity classes tracked (up to 2^39 elements,
/// far beyond any matrix this workload builds).
const CLASSES: usize = 40;

/// A recycler for the `Vec<f32>` buffers behind [`Matrix`].
///
/// Buffers are bucketed by the power-of-two class of their element count:
/// [`BufferPool::take`] pops a buffer whose class matches the requested
/// size (resizing within the class as needed) and [`BufferPool::put`]
/// returns it. After one warm-up iteration of a fixed-shape workload every
/// `take` is serviced from the pool without heap traffic.
///
/// # Examples
///
/// ```
/// use hwpr_tensor::{BufferPool, Matrix};
///
/// let mut pool = BufferPool::new();
/// let m = pool.take(2, 3);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.sum(), 0.0);
/// pool.put(m);
/// let again = pool.take(3, 2); // same class, same backing buffer
/// assert_eq!(again.len(), 6);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: Vec<Vec<Vec<f32>>>,
    /// Takes serviced from a pooled buffer (no heap traffic).
    hits: u64,
    /// Takes that had to allocate fresh storage.
    misses: u64,
}

/// Capacity class of a buffer length: index of the smallest power of two
/// that holds `len` elements.
#[inline]
fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled `rows x cols` matrix, reusing pooled storage
    /// when a buffer of the right capacity class is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut data = self.take_raw(len);
        data.clear();
        data.resize(len, 0.0);
        Matrix::from_vec(rows, cols, data).expect("pool buffer sized to shape")
    }

    /// Takes a `rows x cols` matrix with **unspecified contents**, for
    /// outputs that every kernel in the consuming path fully overwrites
    /// (e.g. `matmul_prepacked_into`). Skips the zero-fill of
    /// [`BufferPool::take`].
    pub fn take_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut data = self.take_raw(len);
        data.resize(len, 0.0);
        Matrix::from_vec(rows, cols, data).expect("pool buffer sized to shape")
    }

    /// Takes a pooled copy of `src` (same shape, same contents).
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let len = src.len();
        let mut data = self.take_raw(len);
        data.clear();
        data.extend_from_slice(src.as_slice());
        Matrix::from_vec(src.rows(), src.cols(), data).expect("pool buffer sized to shape")
    }

    /// Returns a matrix's backing buffer to the pool for reuse.
    pub fn put(&mut self, m: Matrix) {
        self.put_raw(m.into_vec());
    }

    /// Takes a raw buffer with at least class capacity for `len` elements.
    /// Contents are unspecified; callers clear or overwrite.
    pub fn take_raw(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let class = class_of(len);
        match self.buckets.get_mut(class).and_then(Vec::pop) {
            Some(buf) => {
                self.hits += 1;
                buf
            }
            // Round fresh allocations up to the class size so the buffer
            // re-enters the same bucket whatever shape it is reused for.
            None => {
                self.misses += 1;
                Vec::with_capacity(len.next_power_of_two())
            }
        }
    }

    /// Returns a raw buffer to its capacity-class bucket.
    pub fn put_raw(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let class = class_of(cap.min(1 << (CLASSES - 1)));
        if self.buckets.len() <= class {
            self.buckets.resize_with(class + 1, Vec::new);
        }
        self.buckets[class].push(buf);
    }

    /// Total number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Non-empty takes serviced from pooled storage since creation.
    pub fn reuse_hits(&self) -> u64 {
        self.hits
    }

    /// Non-empty takes that allocated fresh storage since creation.
    pub fn reuse_misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of non-empty takes serviced without allocating; 0 before
    /// the first take. Approaches 1 once a fixed-shape workload warms up.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_put() {
        let mut pool = BufferPool::new();
        let mut m = pool.take(2, 2);
        m.as_mut_slice().fill(7.0);
        pool.put(m);
        let fresh = pool.take(2, 2);
        assert_eq!(fresh.sum(), 0.0);
    }

    #[test]
    fn same_class_reuses_buffer() {
        let mut pool = BufferPool::new();
        let m = pool.take(3, 2); // len 6 → class 3 (cap 8)
        pool.put(m);
        assert_eq!(pool.parked(), 1);
        let _again = pool.take(2, 4); // len 8 → same class
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn take_uninit_has_shape_and_reuses_class() {
        let mut pool = BufferPool::new();
        let mut m = pool.take(4, 4);
        m.as_mut_slice().fill(3.0);
        pool.put(m);
        let dirty = pool.take_uninit(4, 4);
        assert_eq!(dirty.shape(), (4, 4));
        assert_eq!(pool.reuse_hits(), 1);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut pool = BufferPool::new();
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let copy = pool.take_copy(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn zero_sized_buffers_are_ignored() {
        let mut pool = BufferPool::new();
        let m = pool.take(0, 5);
        assert!(m.is_empty());
        pool.put(m);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn reuse_stats_track_hits_and_misses() {
        let mut pool = BufferPool::new();
        assert_eq!(pool.reuse_ratio(), 0.0);
        let m = pool.take(2, 2); // miss
        pool.put(m);
        let _again = pool.take(2, 2); // hit
        assert_eq!(pool.reuse_hits(), 1);
        assert_eq!(pool.reuse_misses(), 1);
        assert_eq!(pool.reuse_ratio(), 0.5);
        let empty = pool.take(0, 3); // zero-sized: not counted
        pool.put(empty);
        assert_eq!(pool.reuse_hits() + pool.reuse_misses(), 2);
    }

    #[test]
    fn class_of_boundaries() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(4), 2);
        assert_eq!(class_of(5), 3);
    }
}
