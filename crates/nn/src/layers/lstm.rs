//! Multi-layer LSTM encoder.

use crate::params::{Binder, ParamId, Params};
use crate::{NnError, Result};
use hwpr_autograd::Var;
use hwpr_tensor::{Init, Matrix};

/// One LSTM layer's parameters: input, recurrent and bias weights packed
/// as `[i f g o]` gate blocks.
#[derive(Debug, Clone)]
struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    bias: ParamId,
}

/// Stacked LSTM used as the paper's latency encoder (2 layers, 225 hidden
/// units over embedded architecture tokens).
///
/// # Examples
///
/// ```
/// use hwpr_autograd::Tape;
/// use hwpr_nn::layers::Lstm;
/// use hwpr_nn::{Binder, Params};
/// use hwpr_tensor::Matrix;
///
/// let mut params = Params::new();
/// let lstm = Lstm::new(&mut params, "enc", 4, 8, 2, 11);
/// let mut tape = Tape::new();
/// let mut binder = Binder::new(&mut tape, &params);
/// let steps: Vec<_> = (0..3).map(|_| binder.input(Matrix::ones(2, 4))).collect();
/// let h = lstm.forward(&mut binder, &steps)?;
/// assert_eq!(tape.value(h).shape(), (2, 8));
/// # Ok::<(), hwpr_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    cells: Vec<LstmCell>,
    input_dim: usize,
    hidden_dim: usize,
}

impl Lstm {
    /// Registers an LSTM with `layers` stacked cells.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(
        params: &mut Params,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        seed: u64,
    ) -> Self {
        assert!(layers > 0, "LSTM needs at least one layer");
        let mut cells = Vec::with_capacity(layers);
        for l in 0..layers {
            let in_dim = if l == 0 { input_dim } else { hidden_dim };
            let w_ih = params.add(
                &format!("{name}.l{l}.w_ih"),
                in_dim,
                4 * hidden_dim,
                Init::Xavier,
                seed.wrapping_add(3 * l as u64),
            );
            let w_hh = params.add(
                &format!("{name}.l{l}.w_hh"),
                hidden_dim,
                4 * hidden_dim,
                Init::Xavier,
                seed.wrapping_add(3 * l as u64 + 1),
            );
            // forget-gate bias starts at 1 to ease gradient flow early on
            let mut b = Matrix::zeros(1, 4 * hidden_dim);
            for c in hidden_dim..2 * hidden_dim {
                b.set(0, c, 1.0);
            }
            let bias = params.add_matrix(&format!("{name}.l{l}.bias"), b);
            cells.push(LstmCell { w_ih, w_hh, bias });
        }
        Self {
            cells,
            input_dim,
            hidden_dim,
        }
    }

    /// Input feature dimension of the first layer.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Runs the recurrence over `steps` (each `[batch, input_dim]`) and
    /// returns the final hidden state of the top layer (`[batch, hidden]`).
    ///
    /// # Errors
    ///
    /// Returns a config error when `steps` is empty, or a shape error when
    /// step shapes are inconsistent.
    pub fn forward(&self, binder: &mut Binder<'_, '_>, steps: &[Var]) -> Result<Var> {
        Ok(*self
            .forward_sequence(binder, steps)?
            .last()
            .expect("forward_sequence returns one output per step"))
    }

    /// Runs the recurrence and returns the top-layer hidden state after
    /// every step (useful for attention-style pooling).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lstm::forward`].
    pub fn forward_sequence(&self, binder: &mut Binder<'_, '_>, steps: &[Var]) -> Result<Vec<Var>> {
        if steps.is_empty() {
            return Err(NnError::Config("LSTM received an empty sequence".into()));
        }
        let batch = binder.tape().value(steps[0]).rows();
        let h = self.hidden_dim;
        let mut layer_inputs: Vec<Var> = steps.to_vec();
        let mut outputs = Vec::with_capacity(steps.len());
        for (li, cell) in self.cells.iter().enumerate() {
            let w_ih = binder.param(cell.w_ih);
            let w_hh = binder.param(cell.w_hh);
            let bias = binder.param(cell.bias);
            let mut hidden = binder.input(Matrix::zeros(batch, h));
            let mut carry = binder.input(Matrix::zeros(batch, h));
            let mut next_inputs = Vec::with_capacity(layer_inputs.len());
            for &x in &layer_inputs {
                let tape = binder.tape();
                let xi = tape.matmul(x, w_ih)?;
                let hh = tape.matmul(hidden, w_hh)?;
                let pre = tape.add(xi, hh)?;
                let gates = tape.add_bias(pre, bias)?;
                let i_gate = tape.slice_cols(gates, 0, h)?;
                let f_gate = tape.slice_cols(gates, h, 2 * h)?;
                let g_gate = tape.slice_cols(gates, 2 * h, 3 * h)?;
                let o_gate = tape.slice_cols(gates, 3 * h, 4 * h)?;
                let i_act = tape.sigmoid(i_gate);
                let f_act = tape.sigmoid(f_gate);
                let g_act = tape.tanh(g_gate);
                let o_act = tape.sigmoid(o_gate);
                let keep = tape.mul(f_act, carry)?;
                let write = tape.mul(i_act, g_act)?;
                carry = tape.add(keep, write)?;
                let c_act = tape.tanh(carry);
                hidden = tape.mul(o_act, c_act)?;
                next_inputs.push(hidden);
            }
            if li == self.cells.len() - 1 {
                outputs = next_inputs.clone();
            }
            layer_inputs = next_inputs;
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;

    fn run(steps_data: &[Matrix], layers: usize) -> (Tape, Var, Params, Lstm) {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", steps_data[0].cols(), 5, layers, 3);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let steps: Vec<Var> = steps_data.iter().map(|m| binder.input(m.clone())).collect();
        let h = lstm.forward(&mut binder, &steps).unwrap();
        (tape, h, params, lstm)
    }

    #[test]
    fn output_shape() {
        let steps = vec![Matrix::ones(3, 2); 4];
        let (tape, h, _, lstm) = run(&steps, 2);
        assert_eq!(tape.value(h).shape(), (3, 5));
        assert_eq!(lstm.layers(), 2);
        assert_eq!(lstm.input_dim(), 2);
        assert_eq!(lstm.hidden_dim(), 5);
    }

    #[test]
    fn hidden_stays_bounded() {
        // tanh/sigmoid gating keeps |h| < 1
        let steps = vec![Matrix::filled(2, 3, 10.0); 6];
        let (tape, h, _, _) = run(&steps, 1);
        assert!(tape.value(h).as_slice().iter().all(|x| x.abs() < 1.0));
    }

    #[test]
    fn empty_sequence_is_config_error() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 3, 1, 0);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        assert!(matches!(
            lstm.forward(&mut binder, &[]),
            Err(NnError::Config(_))
        ));
    }

    #[test]
    fn sequence_order_matters() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, -1.0);
        let (tape1, h1, _, _) = run(&[a.clone(), b.clone()], 1);
        let (tape2, h2, _, _) = run(&[b, a], 1);
        assert_ne!(tape1.value(h1), tape2.value(h2));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 4, 2, 3);
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let steps: Vec<Var> = (0..3)
            .map(|i| binder.input(Matrix::filled(2, 2, i as f32 * 0.3 - 0.2)))
            .collect();
        let h = lstm.forward(&mut binder, &steps).unwrap();
        let loss = binder.tape().mean_all(h);
        let grads = binder.finish(loss).unwrap();
        // 2 layers x 3 params each
        assert_eq!(grads.iter().filter(|g| g.is_some()).count(), 6);
        for g in grads.into_iter().flatten() {
            assert!(g.norm() > 0.0, "a parameter received a zero gradient");
        }
    }

    #[test]
    fn forward_sequence_len_matches_steps() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 3, 1, 0);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let steps: Vec<Var> = (0..5).map(|_| binder.input(Matrix::ones(1, 2))).collect();
        let outs = lstm.forward_sequence(&mut binder, &steps).unwrap();
        assert_eq!(outs.len(), 5);
    }
}
