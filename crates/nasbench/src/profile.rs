//! Layer-by-layer profiler: FLOPs, parameters and tensor shapes for every
//! operation of an architecture instantiated on a dataset.
//!
//! The profiles serve two purposes: they provide the manual Architecture
//! Features (AF) of §III-C, and they are the input to the analytical
//! hardware cost models in `hwpr-hwmodel`.

use crate::arch::{Architecture, FBNET_LAYERS, NB201_EDGE_NODES};
use crate::op::{FbnetOp, Nb201Op, OpKind};
use crate::Dataset;
use serde::{Deserialize, Serialize};

/// Profile of a single operation instance in the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Human-readable name, e.g. `cell3.edge(0,1).nor_conv_3x3`.
    pub name: String,
    /// Cost-model category.
    pub kind: OpKind,
    /// Floating-point operations (multiply-accumulate counted as 2).
    pub flops: f64,
    /// Trainable parameters.
    pub params: f64,
    /// Input spatial resolution (square).
    pub input_hw: usize,
    /// Output spatial resolution (square).
    pub output_hw: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel size (0 for non-spatial ops).
    pub kernel: usize,
    /// Convolution groups (1 for dense ops).
    pub groups: usize,
}

impl OpProfile {
    /// Bytes moved through the op assuming 4-byte activations and weights
    /// read once — the memory-traffic proxy used by the roofline models.
    pub fn memory_bytes(&self) -> f64 {
        let input = (self.input_hw * self.input_hw * self.in_channels) as f64;
        let output = (self.output_hw * self.output_hw * self.out_channels) as f64;
        (input + output + self.params) * 4.0
    }
}

/// Full network profile of an architecture on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Per-op records in execution order.
    pub ops: Vec<OpProfile>,
}

impl NetworkProfile {
    /// Total FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Total parameters.
    pub fn total_params(&self) -> f64 {
        self.ops.iter().map(|o| o.params).sum()
    }

    /// Number of convolution ops (dense, grouped or depthwise).
    pub fn conv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Conv | OpKind::DepthwiseConv | OpKind::GroupedConv
                )
            })
            .count()
    }

    /// Number of resolution-reducing ops.
    pub fn downsample_count(&self) -> usize {
        self.ops.iter().filter(|o| o.output_hw < o.input_hw).count()
    }

    /// Depth: number of ops that actually transform data (skips, zeroes
    /// excluded).
    pub fn effective_depth(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| !matches!(o.kind, OpKind::Skip | OpKind::Zero))
            .count()
    }
}

/// Profiles `arch` on `dataset`, returning per-op records in execution
/// order.
pub fn profile(arch: &Architecture, dataset: Dataset) -> NetworkProfile {
    match arch {
        Architecture::Nb201(ops) => profile_nb201(ops, dataset),
        Architecture::Fbnet(ops) => profile_fbnet(ops, dataset),
    }
}

fn conv2d(
    name: String,
    hw: usize,
    stride: usize,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    groups: usize,
) -> OpProfile {
    let out_hw = hw.div_ceil(stride);
    let kind = if groups == in_ch && groups == out_ch && groups > 1 {
        OpKind::DepthwiseConv
    } else if groups > 1 {
        OpKind::GroupedConv
    } else {
        OpKind::Conv
    };
    let macs =
        (out_hw * out_hw * out_ch) as f64 * (in_ch / groups) as f64 * (kernel * kernel) as f64;
    let params = out_ch as f64 * (in_ch / groups) as f64 * (kernel * kernel) as f64;
    OpProfile {
        name,
        kind,
        flops: 2.0 * macs,
        params,
        input_hw: hw,
        output_hw: out_hw,
        in_channels: in_ch,
        out_channels: out_ch,
        kernel,
        groups,
    }
}

fn pool(name: String, hw: usize, stride: usize, ch: usize, kernel: usize) -> OpProfile {
    let out_hw = hw.div_ceil(stride);
    OpProfile {
        name,
        kind: OpKind::Pool,
        flops: (out_hw * out_hw * ch * kernel * kernel) as f64,
        params: 0.0,
        input_hw: hw,
        output_hw: out_hw,
        in_channels: ch,
        out_channels: ch,
        kernel,
        groups: 1,
    }
}

fn passthrough(name: String, kind: OpKind, hw: usize, ch: usize) -> OpProfile {
    OpProfile {
        name,
        kind,
        flops: 0.0,
        params: 0.0,
        input_hw: hw,
        output_hw: hw,
        in_channels: ch,
        out_channels: ch,
        kernel: 0,
        groups: 1,
    }
}

fn linear(name: String, in_features: usize, out_features: usize) -> OpProfile {
    OpProfile {
        name,
        kind: OpKind::Linear,
        flops: 2.0 * (in_features * out_features) as f64,
        params: (in_features * out_features + out_features) as f64,
        input_hw: 1,
        output_hw: 1,
        in_channels: in_features,
        out_channels: out_features,
        kernel: 0,
        groups: 1,
    }
}

/// NAS-Bench-201 macro-skeleton: stem(16) → 5 cells → reduce(32) → 5 cells
/// → reduce(64) → 5 cells → pool+fc, as in the benchmark definition.
fn profile_nb201(ops: &[Nb201Op; 6], dataset: Dataset) -> NetworkProfile {
    const CELLS_PER_STAGE: usize = 5;
    let mut records = Vec::new();
    let mut hw = dataset.input_size();
    records.push(conv2d("stem.conv3x3".into(), hw, 1, 3, 16, 3, 1));
    let mut channels = 16usize;
    for stage in 0..3 {
        if stage > 0 {
            // residual downsample block: conv3x3 s2 + conv3x3 s1 (+1x1 shortcut)
            let out = channels * 2;
            records.push(conv2d(
                format!("reduce{stage}.conv_a"),
                hw,
                2,
                channels,
                out,
                3,
                1,
            ));
            hw = hw.div_ceil(2);
            records.push(conv2d(
                format!("reduce{stage}.conv_b"),
                hw,
                1,
                out,
                out,
                3,
                1,
            ));
            records.push(conv2d(
                format!("reduce{stage}.shortcut"),
                hw * 2,
                2,
                channels,
                out,
                1,
                1,
            ));
            channels = out;
        }
        for cell in 0..CELLS_PER_STAGE {
            for (e, op) in ops.iter().enumerate() {
                let (src, dst) = NB201_EDGE_NODES[e];
                let name = format!("s{stage}.c{cell}.edge({src},{dst}).{}", op.name());
                let record = match op {
                    Nb201Op::None => passthrough(name, OpKind::Zero, hw, channels),
                    Nb201Op::SkipConnect => passthrough(name, OpKind::Skip, hw, channels),
                    Nb201Op::NorConv1x1 => conv2d(name, hw, 1, channels, channels, 1, 1),
                    Nb201Op::NorConv3x3 => conv2d(name, hw, 1, channels, channels, 3, 1),
                    Nb201Op::AvgPool3x3 => pool(name, hw, 1, channels, 3),
                };
                records.push(record);
            }
        }
    }
    records.push(pool(
        "head.global_avg_pool".into(),
        hw,
        hw.max(1),
        channels,
        hw.max(1),
    ));
    records.push(linear(
        "head.classifier".into(),
        channels,
        dataset.classes(),
    ));
    NetworkProfile { ops: records }
}

/// FBNet stage table: `(out_channels, blocks, stride_of_first_block)`,
/// CIFAR-adapted (stride-1 stem) as in HW-NAS-Bench; 22 searchable blocks.
const FBNET_STAGES: [(usize, usize, usize); 7] = [
    (16, 1, 1),
    (24, 4, 2),
    (32, 4, 2),
    (64, 4, 2),
    (112, 4, 1),
    (184, 4, 2),
    (352, 1, 1),
];

/// FBNet macro-skeleton: stem(16) → 22 searchable MBConv/skip blocks in 7
/// stages → 1x1 head conv → pool+fc.
fn profile_fbnet(ops: &[FbnetOp; FBNET_LAYERS], dataset: Dataset) -> NetworkProfile {
    let mut records = Vec::new();
    let mut hw = dataset.input_size();
    records.push(conv2d("stem.conv3x3".into(), hw, 1, 3, 16, 3, 1));
    let mut channels = 16usize;
    let mut layer = 0usize;
    for (stage, &(out_ch, blocks, first_stride)) in FBNET_STAGES.iter().enumerate() {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            let op = ops[layer];
            let name_prefix = format!("s{stage}.b{block}.{}", op.name());
            match op {
                FbnetOp::Skip => {
                    if stride == 1 && channels == out_ch {
                        records.push(passthrough(name_prefix, OpKind::Skip, hw, channels));
                    } else {
                        // shape must change: fall back to a minimal 1x1 conv
                        records.push(conv2d(
                            format!("{name_prefix}.proj"),
                            hw,
                            stride,
                            channels,
                            out_ch,
                            1,
                            1,
                        ));
                        hw = hw.div_ceil(stride);
                    }
                }
                mb => {
                    let e = mb.expansion().expect("MBConv has expansion");
                    let k = mb.kernel().expect("MBConv has kernel");
                    let g = mb.groups();
                    let mid = channels * e;
                    if e > 1 || g > 1 {
                        records.push(conv2d(
                            format!("{name_prefix}.expand1x1"),
                            hw,
                            1,
                            channels,
                            mid,
                            1,
                            g,
                        ));
                    }
                    records.push(conv2d(
                        format!("{name_prefix}.dw{k}x{k}"),
                        hw,
                        stride,
                        mid,
                        mid,
                        k,
                        mid,
                    ));
                    let new_hw = hw.div_ceil(stride);
                    records.push(conv2d(
                        format!("{name_prefix}.project1x1"),
                        new_hw,
                        1,
                        mid,
                        out_ch,
                        1,
                        g,
                    ));
                    hw = new_hw;
                }
            }
            channels = if matches!(op, FbnetOp::Skip)
                && records.last().map(|r| r.kind) == Some(OpKind::Skip)
            {
                channels
            } else {
                out_ch
            };
            layer += 1;
        }
    }
    records.push(conv2d("head.conv1x1".into(), hw, 1, channels, 1504, 1, 1));
    records.push(pool(
        "head.global_avg_pool".into(),
        hw,
        hw.max(1),
        1504,
        hw.max(1),
    ));
    records.push(linear("head.classifier".into(), 1504, dataset.classes()));
    NetworkProfile { ops: records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpaceId;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn all_convs() -> Architecture {
        Architecture::nb201([Nb201Op::NorConv3x3; 6])
    }

    fn all_skip() -> Architecture {
        Architecture::nb201([Nb201Op::SkipConnect; 6])
    }

    #[test]
    fn conv_flops_formula() {
        let c = conv2d("t".into(), 32, 1, 16, 16, 3, 1);
        assert_eq!(c.flops, 2.0 * (32.0 * 32.0) * 16.0 * 16.0 * 9.0);
        assert_eq!(c.params, 16.0 * 16.0 * 9.0);
        assert_eq!(c.kind, OpKind::Conv);
    }

    #[test]
    fn depthwise_detected_and_cheaper() {
        let dense = conv2d("d".into(), 16, 1, 32, 32, 3, 1);
        let dw = conv2d("w".into(), 16, 1, 32, 32, 3, 32);
        assert_eq!(dw.kind, OpKind::DepthwiseConv);
        assert!(dw.flops < dense.flops / 16.0);
    }

    #[test]
    fn grouped_conv_detected() {
        let g = conv2d("g".into(), 16, 1, 32, 64, 1, 2);
        assert_eq!(g.kind, OpKind::GroupedConv);
    }

    #[test]
    fn stride_halves_resolution() {
        let c = conv2d("s".into(), 33, 2, 8, 8, 3, 1);
        assert_eq!(c.output_hw, 17);
    }

    #[test]
    fn nb201_conv_arch_heavier_than_skip_arch() {
        let conv = profile(&all_convs(), Dataset::Cifar10);
        let skip = profile(&all_skip(), Dataset::Cifar10);
        assert!(conv.total_flops() > 10.0 * skip.total_flops());
        assert!(conv.total_params() > skip.total_params());
        assert_eq!(conv.ops.len(), skip.ops.len());
    }

    #[test]
    fn nb201_profile_structure() {
        let p = profile(&all_convs(), Dataset::Cifar10);
        // stem + 15 cells x 6 edges + 2 reduce blocks x 3 convs + pool + fc
        assert_eq!(p.ops.len(), 1 + 90 + 6 + 2);
        // 2 downsampling stages: conv_a + shortcut are downsampling + final global pool
        assert_eq!(p.downsample_count(), 5);
        assert!(p.conv_count() >= 90);
    }

    #[test]
    fn imagenet16_smaller_than_cifar() {
        let c = profile(&all_convs(), Dataset::Cifar10);
        let i = profile(&all_convs(), Dataset::ImageNet16);
        assert!(i.total_flops() < c.total_flops());
        // params barely change (classifier only)
        assert!((i.total_params() - c.total_params()).abs() / c.total_params() < 0.2);
    }

    #[test]
    fn fbnet_profile_runs_and_counts_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Architecture::random(SearchSpaceId::FBNet, &mut rng);
        let p = profile(&a, Dataset::Cifar10);
        assert!(p.total_flops() > 0.0);
        assert!(p.total_params() > 0.0);
        // stages downsample 4 times + global pool
        assert!(p.downsample_count() >= 5);
    }

    #[test]
    fn fbnet_bigger_expansion_costs_more() {
        let small = Architecture::fbnet([FbnetOp::K3E1; FBNET_LAYERS]);
        let big = Architecture::fbnet([FbnetOp::K3E6; FBNET_LAYERS]);
        assert!(
            profile(&big, Dataset::Cifar10).total_flops()
                > 2.0 * profile(&small, Dataset::Cifar10).total_flops()
        );
    }

    #[test]
    fn fbnet_all_skip_is_light_but_valid() {
        let a = Architecture::fbnet([FbnetOp::Skip; FBNET_LAYERS]);
        let p = profile(&a, Dataset::Cifar10);
        // skips at stage boundaries become 1x1 projections, so flops > 0
        assert!(p.total_flops() > 0.0);
        assert!(p.effective_depth() < 40);
    }

    #[test]
    fn fbnet_depthwise_ops_present() {
        let a = Architecture::fbnet([FbnetOp::K5E6; FBNET_LAYERS]);
        let p = profile(&a, Dataset::Cifar10);
        let dw = p
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::DepthwiseConv)
            .count();
        assert_eq!(dw, FBNET_LAYERS);
    }

    #[test]
    fn memory_bytes_positive_and_scales_with_channels() {
        let small = conv2d("a".into(), 8, 1, 4, 4, 3, 1);
        let big = conv2d("b".into(), 8, 1, 64, 64, 3, 1);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
