//! Random search (the paper's simplest baseline).

use crate::clock::SearchClock;
use crate::evaluator::{Evaluator, Fitness, SharedObjectives};
use crate::moea::SearchResult;
use crate::{Result, SearchError};
use hwpr_moo::{Fronts, MooWorkspace};
use hwpr_nasbench::{Architecture, SearchSpaceId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Configuration of random search.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSearchConfig {
    /// Number of architectures to sample.
    pub samples: usize,
    /// Size of the returned population (best-ranked subset).
    pub keep: usize,
    /// Search spaces to sample from.
    pub spaces: Vec<SearchSpaceId>,
    /// Total time budget (wall + simulated).
    pub budget: Option<Duration>,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearchConfig {
    /// Matches the MOEA's evaluation volume: population × generations.
    pub fn paper(space: SearchSpaceId) -> Self {
        Self {
            samples: 150 * 250,
            keep: 150,
            spaces: vec![space],
            budget: Some(Duration::from_secs(24 * 3600)),
            seed: 0,
        }
    }

    /// A small configuration for tests.
    pub fn small(space: SearchSpaceId) -> Self {
        Self {
            samples: 64,
            keep: 16,
            spaces: vec![space],
            budget: None,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runs random search: samples architectures uniformly, evaluates them
/// with `evaluator`, and keeps the best `keep` (top scores, or the best
/// non-dominated layers for objective evaluators).
///
/// # Errors
///
/// Returns [`SearchError::Config`] for degenerate settings and propagates
/// evaluator failures.
pub fn random_search(
    config: &RandomSearchConfig,
    evaluator: &mut dyn Evaluator,
) -> Result<SearchResult> {
    if config.samples == 0 || config.keep == 0 || config.keep > config.samples {
        return Err(SearchError::Config(format!(
            "need 0 < keep <= samples, got keep {} samples {}",
            config.keep, config.samples
        )));
    }
    if config.spaces.is_empty() {
        return Err(SearchError::Config(
            "at least one search space required".into(),
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut clock = match config.budget {
        Some(b) => SearchClock::with_budget(b),
        None => SearchClock::unbounded(),
    };
    let mut archs = Vec::with_capacity(config.samples);
    let mut fitness: Option<Fitness> = None;
    // sample and evaluate in chunks so the budget can cut the run short
    const CHUNK: usize = 512;
    while archs.len() < config.samples && !clock.exhausted() {
        let n = CHUNK.min(config.samples - archs.len());
        let chunk: Vec<Architecture> = (0..n)
            .map(|i| {
                let space = config.spaces[(archs.len() + i) % config.spaces.len()];
                Architecture::random(space, &mut rng)
            })
            .collect();
        let chunk_fitness = evaluator.evaluate(&chunk, &mut clock)?;
        archs.extend(chunk);
        fitness = Some(match (fitness.take(), chunk_fitness) {
            (None, f) => f,
            (Some(Fitness::Scores(mut a)), Fitness::Scores(b)) => {
                a.extend(b);
                Fitness::Scores(a)
            }
            (Some(Fitness::Objectives(mut a)), Fitness::Objectives(b)) => {
                a.extend(b);
                Fitness::Objectives(a)
            }
            (
                Some(Fitness::Ranked {
                    scores: mut sa,
                    objectives: mut oa,
                }),
                Fitness::Ranked {
                    scores: sb,
                    objectives: ob,
                },
            ) => {
                sa.extend(sb);
                oa.extend(ob);
                Fitness::Ranked {
                    scores: sa,
                    objectives: oa,
                }
            }
            _ => return Err(SearchError::Surrogate("fitness kind changed".into())),
        });
    }
    let fitness = fitness.ok_or_else(|| SearchError::Config("no samples evaluated".into()))?;
    let mut moo = MooWorkspace::new();
    let keep = best_indices(&archs, &fitness, config.keep.min(archs.len()), &mut moo)?;
    let surrogate_calls = evaluator
        .calls_made()
        .map_or(archs.len() * evaluator.calls_per_arch(), |calls| {
            calls as usize
        });
    // kept indices are unique: move the winners out instead of cloning
    let mut archs: Vec<Option<Architecture>> = archs.into_iter().map(Some).collect();
    Ok(SearchResult {
        population: keep
            .iter()
            .map(|&i| archs[i].take().expect("kept indices are unique"))
            .collect(),
        evaluator: format!("Random Search ({})", evaluator.name()),
        wall_time: clock.wall_elapsed(),
        simulated_time: clock.simulated_elapsed(),
        evaluations: archs.len(),
        surrogate_calls,
        history: Vec::new(),
    })
}

fn best_indices(
    archs: &[Architecture],
    fitness: &Fitness,
    k: usize,
    moo: &mut MooWorkspace,
) -> Result<Vec<usize>> {
    // unique architectures only (uniform sampling can repeat)
    let mut seen = std::collections::HashSet::new();
    let unique: Vec<usize> = (0..archs.len())
        .filter(|&i| seen.insert((archs[i].space(), archs[i].index())))
        .collect();
    match fitness {
        Fitness::Scores(s) => {
            let mut idx = unique;
            idx.sort_by(|&a, &b| s[b].total_cmp(&s[a]));
            idx.truncate(k);
            Ok(idx)
        }
        Fitness::Ranked { scores, objectives } => {
            // the score gates front membership: only the best-scored
            // candidates (k plus a 25 % margin) enter the pool; crowding
            // on the same call's predicted objectives then trims the
            // margin so coverage, not score noise, decides the last slots
            let mut pool = unique;
            pool.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            pool.truncate(k + k / 4 + 1);
            if pool.len() <= k {
                return Ok(pool);
            }
            let crowd = moo.crowding_distance_of(objectives, &pool)?;
            let mut order: Vec<usize> = (0..pool.len()).collect();
            order.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]));
            Ok(order.into_iter().take(k).map(|slot| pool[slot]).collect())
        }
        Fitness::Objectives(all_objs) => {
            let objs: Vec<SharedObjectives> = unique.iter().map(|&i| all_objs[i].clone()).collect();
            let mut fronts = Fronts::new();
            moo.fast_non_dominated_sort_into(&objs, &mut fronts)?;
            let mut keep = Vec::with_capacity(k);
            for front in fronts.iter() {
                if keep.len() + front.len() <= k {
                    keep.extend(front.iter().map(|&i| unique[i]));
                } else {
                    let crowd = moo.crowding_distance_of(&objs, front)?;
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]));
                    for &slot in order.iter().take(k - keep.len()) {
                        keep.push(unique[front[slot]]);
                    }
                    break;
                }
            }
            Ok(keep)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ScoreEvaluator;

    fn conv_counter() -> ScoreEvaluator {
        ScoreEvaluator::from_fn(
            "stub",
            Box::new(|archs| {
                Ok(archs
                    .iter()
                    .map(|a| a.op_indices().iter().filter(|&&o| o == 3).count() as f64)
                    .collect())
            }),
        )
    }

    #[test]
    fn keeps_the_best_scored_samples() {
        let cfg = RandomSearchConfig::small(SearchSpaceId::NasBench201);
        let result = random_search(&cfg, &mut conv_counter()).unwrap();
        assert_eq!(result.population.len(), 16);
        assert_eq!(result.evaluations, 64);
        // every kept arch should have at least one conv3x3 (highly likely
        // among top 16 of 64 uniform samples)
        let min_convs = result
            .population
            .iter()
            .map(|a| a.op_indices().iter().filter(|&&o| o == 3).count())
            .min()
            .unwrap();
        assert!(min_convs >= 1);
    }

    #[test]
    fn validates_config() {
        let mut cfg = RandomSearchConfig::small(SearchSpaceId::NasBench201);
        cfg.keep = 0;
        assert!(random_search(&cfg, &mut conv_counter()).is_err());
        let mut cfg = RandomSearchConfig::small(SearchSpaceId::NasBench201);
        cfg.keep = 1000;
        assert!(random_search(&cfg, &mut conv_counter()).is_err());
        let mut cfg = RandomSearchConfig::small(SearchSpaceId::NasBench201);
        cfg.spaces.clear();
        assert!(random_search(&cfg, &mut conv_counter()).is_err());
    }

    #[test]
    fn paper_config_matches_moea_volume() {
        let cfg = RandomSearchConfig::paper(SearchSpaceId::NasBench201);
        assert_eq!(cfg.samples, 37_500);
        assert_eq!(cfg.keep, 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomSearchConfig::small(SearchSpaceId::FBNet).with_seed(5);
        let a = random_search(&cfg, &mut conv_counter()).unwrap();
        let b = random_search(&cfg, &mut conv_counter()).unwrap();
        assert_eq!(a.population, b.population);
    }
}
