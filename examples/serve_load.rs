//! Serving load generator: start the prediction server in-process, drive
//! it with concurrent pipelining clients at batch 1 / 8 / 64, and print a
//! req/s + p99 table comparing adaptive micro-batching against the
//! uncoalesced (deadline = 0) baseline. Finishes with a live hot-swap —
//! republishing a retrained model mid-load — and reports how many
//! requests each version answered (expected: zero failures).
//!
//! ```text
//! cargo run --release --example serve_load
//! HWPR_SERVE_MAX_BATCH=32 HWPR_SERVE_BATCH_DEADLINE_US=500 \
//!     cargo run --release --example serve_load
//! ```
//!
//! The workload is deterministic (seeded architecture population, fixed
//! client/round grid); throughput numbers move with the host, the
//! response payloads do not.

use hw_pr_nas::core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::nasbench::{Architecture, Dataset, SearchSpaceId};
use hw_pr_nas::obs::config::{TelemetrySpec, TELEMETRY_ENV};
use hw_pr_nas::serve::{ModelRegistry, PredictKind, ServeClient, ServeConfig, Server};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PIPELINE_DEPTH: usize = 16;

fn train(seed: u64) -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(64),
        seed,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)
        .expect("bench is non-empty");
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::tiny()).expect("training failed");
    model.freeze_with(64, Precision::F16);
    Arc::new(model)
}

fn population(n: usize) -> Arc<Vec<Architecture>> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    Arc::new(
        (0..n)
            .map(|_| Architecture::random(SearchSpaceId::NasBench201, &mut rng))
            .collect(),
    )
}

struct LoadResult {
    requests: usize,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Drives `clients` pipelining connections, each sending `rounds`
/// batch-`batch` score requests. Latency is measured client-side.
fn drive(
    addr: SocketAddr,
    archs: &Arc<Vec<Architecture>>,
    clients: usize,
    batch: usize,
    rounds: usize,
) -> LoadResult {
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..clients {
        let archs = Arc::clone(archs);
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            let window = |i: usize| {
                let at = (worker * 31 + i * batch) % (archs.len() - batch);
                &archs[at..at + batch]
            };
            let mut sent_at = vec![Instant::now(); rounds + 1];
            let mut latencies = Vec::with_capacity(rounds);
            let mut scores = Vec::new();
            let mut next = 0usize;
            for _ in 0..PIPELINE_DEPTH.min(rounds) {
                next += 1;
                sent_at[next] = Instant::now();
                client
                    .send_predict(
                        PredictKind::Scores,
                        "default",
                        Platform::EdgeGpu,
                        window(next),
                    )
                    .expect("send");
            }
            for _ in 0..rounds {
                scores.clear();
                let id = client.recv_scores(&mut scores).expect("recv") as usize;
                assert_eq!(scores.len(), batch);
                latencies.push(sent_at[id].elapsed().as_secs_f64() * 1e6);
                if next < rounds {
                    next += 1;
                    sent_at[next] = Instant::now();
                    client
                        .send_predict(
                            PredictKind::Scores,
                            "default",
                            Platform::EdgeGpu,
                            window(next),
                        )
                        .expect("send");
                }
            }
            latencies
        }));
    }
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: usize| latencies[((latencies.len() - 1) * p) / 100];
    LoadResult {
        requests: clients * rounds,
        req_per_sec: (clients * rounds) as f64 / wall.max(1e-9),
        p50_us: pct(50),
        p99_us: pct(99),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // telemetry is optional: HWPR_TELEMETRY=jsonl:/tmp/serve.jsonl records
    // serve.request / serve.batch spans and the serving counters; an
    // unwritable sink warns and the load run continues unrecorded
    if let Ok(value) = std::env::var(TELEMETRY_ENV) {
        TelemetrySpec::parse(&value)?.install_or_warn();
    }

    println!("training serving fixture (fast config, f16 panels) ...");
    let model = train(1);
    let archs = population(256);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&model));

    // two servers, same workload: micro-batching on vs off
    let coalesced_config = ServeConfig {
        max_batch: 64,
        batch_deadline: Duration::from_micros(200),
        ..ServeConfig::default()
    }
    .with_env_overrides();
    let uncoalesced_config = ServeConfig {
        max_batch: 1,
        batch_deadline: Duration::ZERO,
        ..ServeConfig::default()
    };

    println!("\n  scenario          batch  clients    req/s    p50 us    p99 us");
    let grid: [(&str, usize, usize, usize); 3] =
        [("b1", 1, 8, 150), ("b8", 8, 4, 60), ("b64", 64, 2, 30)];
    let mut coalesced_b1 = 0.0;
    let mut uncoalesced_b1 = 0.0;
    for (label, config, tag) in [
        (&coalesced_config, "coalesced", true),
        (&uncoalesced_config, "uncoalesced", false),
    ]
    .map(|(c, l, t)| (l, c, t))
    {
        let server = Server::start(Arc::clone(&registry), config.clone())?;
        for (name, batch, clients, rounds) in grid {
            // the uncoalesced baseline only matters for the batch-1 grid
            // row the acceptance ratio is defined over
            if !tag && batch != 1 {
                continue;
            }
            let r = drive(server.addr(), &archs, clients, batch, rounds);
            println!(
                "  {label:<12} {name:>8} {clients:>8} {:>8.0} {:>9.0} {:>9.0}",
                r.req_per_sec, r.p50_us, r.p99_us
            );
            if batch == 1 {
                if tag {
                    coalesced_b1 = r.req_per_sec;
                } else {
                    uncoalesced_b1 = r.req_per_sec;
                }
            }
            assert_eq!(r.requests, clients * rounds);
        }
    }
    println!(
        "\nmicro-batching win at client batch 1: {:.1}x",
        coalesced_b1 / uncoalesced_b1.max(1e-9)
    );

    // hot-swap under load: retrain, publish mid-stream, count versions
    println!("\nhot-swap under load: publishing v2 while requests are in flight ...");
    let v2 = train(2);
    let server = Server::start(Arc::clone(&registry), coalesced_config)?;
    let addr = server.addr();
    let probe: Vec<Architecture> = archs[..8].to_vec();
    let reference = |m: &Arc<HwPrNas>| -> Vec<u64> {
        let frozen = m.frozen();
        frozen
            .predict_scores(m.encoding_cache(), &probe, 0)
            .expect("direct prediction")
            .iter()
            .map(|s| s.to_bits())
            .collect()
    };
    let v1_bits = reference(&model);
    let loader = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect");
        let mut answered = [0usize; 2];
        for _ in 0..200 {
            let scores = client
                .predict_scores("default", Platform::EdgeGpu, &probe)
                .expect("no request may fail across the swap");
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            answered[usize::from(bits != v1_bits)] += 1;
        }
        answered
    });
    std::thread::sleep(Duration::from_millis(40));
    let version = registry.publish("default", Arc::clone(&v2));
    let answered = loader.join().expect("load thread");
    println!(
        "published v{version}; {} requests answered by v1, {} by v2, 0 failed",
        answered[0], answered[1]
    );

    hw_pr_nas::obs::metrics::registry().emit();
    hw_pr_nas::obs::shutdown();
    Ok(())
}
