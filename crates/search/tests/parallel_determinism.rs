//! Determinism of the parallel evaluation pipeline: a seeded MOEA run
//! must produce bit-identical populations and Pareto fronts whether the
//! surrogate batch is evaluated serially, across worker threads, or
//! through a warm cross-generation score cache.

use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_moo::pareto_front;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_search::{Evaluator, Fitness};
use hwpr_search::{HwPrNasEvaluator, Moea, MoeaConfig, ScoreCache, SearchClock, SearchResult};
use std::sync::Arc;

fn trained_model() -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(48),
        seed: 3,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)
        .expect("fixture dataset");
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("tiny fit");
    Arc::new(model)
}

fn search(eval: &mut HwPrNasEvaluator) -> SearchResult {
    let cfg = MoeaConfig {
        generations: 4,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(7);
    Moea::new(cfg)
        .expect("valid config")
        .run(eval)
        .expect("search runs")
}

/// The front (as sorted architecture strings) of a final population.
fn front_of(model: &HwPrNas, population: &[Architecture]) -> Vec<String> {
    let (_, objectives) = model
        .predict_full(population, Platform::EdgeGpu)
        .expect("predict final population");
    let mut front: Vec<String> = pareto_front(&objectives)
        .expect("front")
        .into_iter()
        .map(|i| population[i].to_arch_string())
        .collect();
    front.sort();
    front
}

#[test]
fn parallel_search_matches_serial_bit_for_bit() {
    let model = trained_model();
    let mut serial = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(1);
    let mut parallel = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(4);
    let a = search(&mut serial);
    let b = search(&mut parallel);
    assert_eq!(a.population, b.population, "populations diverged");
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(
        front_of(&model, &a.population),
        front_of(&model, &b.population),
        "Pareto fronts diverged"
    );
}

#[test]
fn warm_cache_preserves_results_and_records_hits() {
    let model = trained_model();
    let cache = Arc::new(ScoreCache::new());
    let mut cold = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu)
        .with_shared_cache(Arc::clone(&cache));
    let a = search(&mut cold);
    let misses_after_first = cache.misses();
    assert!(misses_after_first > 0, "first run must populate the cache");
    // a second evaluator sharing the cache replays the same seeded search
    // entirely (or nearly) from cached scores
    let mut warm = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu)
        .with_shared_cache(Arc::clone(&cache));
    let b = search(&mut warm);
    assert_eq!(a.population, b.population, "cache changed the search");
    assert!(cache.hits() > 0, "second run never hit the warm cache");
    assert_eq!(
        cache.misses(),
        misses_after_first,
        "second run recomputed architectures the cache already held"
    );
}

#[test]
fn duplicate_offspring_share_one_forward_pass() {
    let model = trained_model();
    let mut eval = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(2);
    let arch = Architecture::nb201_from_index(11).expect("valid index");
    let batch = vec![arch.clone(), arch.clone(), arch];
    let mut clock = SearchClock::unbounded();
    let Fitness::Ranked { scores, objectives } = eval.evaluate(&batch, &mut clock).unwrap() else {
        panic!("fused evaluator must return ranked fitness");
    };
    assert_eq!(scores[0], scores[1]);
    assert_eq!(scores[0], scores[2]);
    assert!(Arc::ptr_eq(&objectives[0], &objectives[1]));
    assert!(Arc::ptr_eq(&objectives[0], &objectives[2]));
    // one miss for the distinct architecture; the duplicates were deduped
    // before prediction, and nothing else touched this private cache
    assert_eq!(eval.cache().misses(), 1);
    assert_eq!(eval.cache().len(), 1);
}
