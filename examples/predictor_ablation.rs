//! Mini version of the Fig. 4 / Table I studies: compare encoder
//! combinations and regressor heads on a small benchmark slice.
//!
//! ```text
//! cargo run --release --example predictor_ablation
//! ```

use hw_pr_nas::core::encoders::EncoderChoice;
use hw_pr_nas::core::predictor::{Predictor, PredictorConfig, RegressorKind, TargetMetric};
use hw_pr_nas::core::{ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(400),
        seed: 11,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)?;

    println!("== encoder ablation (MLP head, Kendall tau) ==");
    println!("{:<10} {:>11} {:>11}", "encoding", "accuracy", "latency");
    for choice in EncoderChoice::FIG4_VARIANTS {
        let mut taus = Vec::new();
        for target in [TargetMetric::Accuracy, TargetMetric::Latency] {
            let config = PredictorConfig {
                model: ModelConfig::fast(),
                train: TrainConfig::fast(),
                ..PredictorConfig::mlp(choice, target)
            };
            let (_, report) = Predictor::fit(&data, &config)?;
            taus.push(report.kendall_tau);
        }
        println!(
            "{:<10} {:>11.4} {:>11.4}",
            choice.to_string(),
            taus[0],
            taus[1]
        );
    }

    println!("\n== regressor heads (accuracy target) ==");
    println!("{:<10} {:>9} {:>11}", "regressor", "RMSE", "Kendall tau");
    for kind in [
        RegressorKind::Mlp,
        RegressorKind::XgBoost,
        RegressorKind::LgBoost,
    ] {
        let config = match kind {
            RegressorKind::Mlp => PredictorConfig {
                model: ModelConfig::fast(),
                train: TrainConfig::fast(),
                ..PredictorConfig::mlp(EncoderChoice::GCN_AF, TargetMetric::Accuracy)
            },
            kind => PredictorConfig::boosted(kind, TargetMetric::Accuracy),
        };
        let (_, report) = Predictor::fit(&data, &config)?;
        println!(
            "{:<10} {:>9.3} {:>11.4}",
            kind.to_string(),
            report.rmse,
            report.kendall_tau
        );
    }
    Ok(())
}
