//! Island-model search benchmark: wall time of a short seeded search at
//! 1, 2 and 8 islands, plus two scalar quality metrics per island count —
//! aggregate island-generations per second and the hypervolume reached at
//! the fixed generation budget. On a multi-core host the worker lanes
//! give multi-island runs a real throughput edge; on the single-core CI
//! container the honest expectation is ~1x — the island machinery
//! (migration channel, archive merge, checkpoint plumbing) must not add
//! meaningful per-generation cost.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use hwpr_bench::fixture_dataset;
use hwpr_core::{HwPrNas, ModelConfig, TrainConfig};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::SearchSpaceId;
use hwpr_search::{Evaluator, HwPrNasEvaluator, IslandConfig, IslandSearch, IslandSearchResult};
use std::sync::Arc;

fn config(islands: usize) -> IslandConfig {
    IslandConfig {
        islands,
        population: 24,
        generations: 16,
        migration_every: 4,
        migrants: 2,
        ..IslandConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(11)
}

fn run(model: &Arc<HwPrNas>, islands: usize) -> IslandSearchResult {
    IslandSearch::new(config(islands))
        .expect("valid config")
        .run(|_| {
            Box::new(HwPrNasEvaluator::new(Arc::clone(model), Platform::EdgeGpu))
                as Box<dyn Evaluator + Send>
        })
        .expect("search runs")
}

fn bench_island_search(c: &mut Criterion) {
    let data = fixture_dataset(96);
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("training failed");
    let model = Arc::new(model);

    let mut group = c.benchmark_group("island_search");
    group.sample_size(10);
    for islands in [1usize, 2, 8] {
        group.bench_function(format!("run_i{islands}"), |b| {
            b.iter(|| run(&model, islands));
        });
    }
    group.finish();

    // scalar metrics: aggregate generation throughput (island count x
    // generations / wall time) and the deterministic hypervolume at the
    // generation budget. The island counts are interleaved round-robin
    // and the rate is computed over the summed wall time of all rounds,
    // so environmental noise on a shared runner biases every island
    // count the same way instead of handing one of them a lucky run.
    const ROUNDS: usize = 7;
    let counts = [1usize, 2, 8];
    let mut wall = [0.0f64; 3];
    let mut hv = [None; 3];
    for _ in 0..ROUNDS {
        for (slot, &islands) in counts.iter().enumerate() {
            let result = run(&model, islands);
            wall[slot] += result.wall_time.as_secs_f64();
            hv[slot] = result.hypervolume;
        }
    }
    for (slot, &islands) in counts.iter().enumerate() {
        let total_gens = (ROUNDS * islands * config(islands).generations) as f64;
        record_metric(
            format!("island_search/metrics/gens_per_sec_i{islands}"),
            total_gens / wall[slot].max(1e-9),
        );
        record_metric(
            format!("island_search/metrics/hv_at_budget_i{islands}"),
            hv[slot].expect("2-objective run records a hypervolume"),
        );
    }
}

criterion_group!(benches, bench_island_search);
criterion_main!(benches);
