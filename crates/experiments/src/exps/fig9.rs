//! Figure 9: three-objective Pareto fronts (accuracy, latency, energy) on
//! CIFAR-10 / Edge GPU using the scalable HW-PR-NAS variant (§III-F).

use crate::{shared_reference, Harness, MarkdownTable};
use hwpr_core::scalable::ScalableHwPrNas;
use hwpr_hwmodel::Platform;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_search::{Moea, ScoreEvaluator, ScoreFn, SearchError};
use std::fmt::Write as _;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let space = SearchSpaceId::NasBench201;
    let data = h.dataset(space, dataset, platform);

    // train on two objectives, then fine-tune the head only (5 epochs,
    // frozen encoders) to add energy — exactly §III-F
    let mut model = ScalableHwPrNas::fit(&data, &h.scale.model_config(), &h.scale.train_config())
        .expect("scalable training failed");
    model
        .extend_to_three_objectives(&data, 5, 9)
        .expect("fine-tuning failed");

    let score_fn: ScoreFn = Box::new(move |archs| {
        model
            .predict_scores(archs)
            .map_err(|e| SearchError::Surrogate(e.to_string()))
    });
    let mut eval = ScoreEvaluator::from_fn("Scalable HW-PR-NAS", score_fn);
    let moea = Moea::new(h.scale.moea_config(vec![space]).with_seed(9)).expect("valid config");
    let result = moea.run(&mut eval).expect("search failed");

    // baseline: measured-values MOEA on the same three objectives
    let mut measured = h.measured(dataset, platform).with_three_objectives();
    let baseline = moea.run(&mut measured).expect("search failed");

    let oracle = h.measured(dataset, platform);
    let objs3 = |pop: &[hwpr_nasbench::Architecture]| -> Vec<Vec<f64>> {
        pop.iter().map(|a| oracle.true_objectives3(a)).collect()
    };
    let ours = objs3(&result.population);
    let base = objs3(&baseline.population);
    let reference = shared_reference(&[ours.clone(), base.clone()]);
    let mut moo = MooWorkspace::new();
    let mut front_of = |objs: &Vec<Vec<f64>>| -> Vec<Vec<f64>> {
        moo.pareto_front(objs)
            .expect("non-empty population")
            .iter()
            .map(|&i| objs[i].clone())
            .collect()
    };
    let our_front = front_of(&ours);
    let base_front = front_of(&base);
    let hv_ours = moo.hypervolume(&our_front, &reference).expect("bounded");
    let hv_base = moo.hypervolume(&base_front, &reference).expect("bounded");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9 — three objectives (accuracy, latency, energy)\n"
    );
    let _ = writeln!(
        out,
        "Scalable HW-PR-NAS (concatenated AF+GCN+LSTM encodings, single \
         score MLP) fine-tuned for 5 epochs with frozen encoders to add \
         the energy objective; NAS-Bench-201 / {dataset} / {platform}.\n"
    );
    let mut t = MarkdownTable::new(vec!["Method", "3-D hypervolume ↑", "Front size"]);
    t.row(vec![
        "MOEA + Scalable HW-PR-NAS".to_string(),
        format!("{hv_ours:.1}"),
        our_front.len().to_string(),
    ]);
    t.row(vec![
        "MOEA + Measured Values (3 objectives)".to_string(),
        format!("{hv_base:.1}"),
        base_front.len().to_string(),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(out, "\n## Front points (error %, latency ms, energy mJ)\n");
    let mut sorted = our_front.clone();
    sorted.sort_by(|a, b| a[1].total_cmp(&b[1]));
    for p in sorted.iter().take(20) {
        let _ = writeln!(out, "- {:.2}, {:.3}, {:.3}", p[0], p[1], p[2]);
    }
    let _ = writeln!(
        out,
        "\nPaper's shape: the surrogate-driven 3-objective front covers a \
         comparable hypervolume to exhaustive measurement while evaluating \
         only through the fused score model."
    );
    out
}
