//! Graph encoding for the GCN encoder — §III-C(3) of the paper.
//!
//! Following BRP-NAS, each architecture becomes a DAG whose nodes are
//! *operations* plus three structural nodes (`input`, `output` and a
//! `global` aggregation node connected to everything). Node features are
//! one-hot types in a vocabulary shared across both search spaces, so one
//! GCN can encode NAS-Bench-201 and FBNet architectures.
//!
//! For NAS-Bench-201 the DAG has one node per cell edge; `none` (zeroize)
//! operations cut their connections since no data flows through them. For
//! FBNet the DAG is the layer chain (identity `skip` blocks keep the chain
//! connected).

use crate::arch::{Architecture, FBNET_LAYERS, NB201_EDGES, NB201_EDGE_NODES};
use crate::op::{FbnetOp, Nb201Op};
use hwpr_tensor::Matrix;

/// One-hot node-feature dimension: `[input, output, global]` + 5
/// NAS-Bench-201 ops + 9 FBNet ops.
pub const NODE_FEATURE_DIM: usize = 3 + Nb201Op::ALL.len() + FbnetOp::ALL.len();

/// Node count of a NAS-Bench-201 graph (input + 6 ops + output + global).
pub const NB201_NODES: usize = NB201_EDGES + 3;

/// Node count of an FBNet graph (input + 22 blocks + output + global).
pub const FBNET_NODES: usize = FBNET_LAYERS + 3;

/// Feature column of the `input` node type.
const FEAT_INPUT: usize = 0;
/// Feature column of the `output` node type.
const FEAT_OUTPUT: usize = 1;
/// Feature column of the `global` node type.
const FEAT_GLOBAL: usize = 2;

/// A graph-encoded architecture: symmetric-normalised adjacency and
/// one-hot node features, ready for [`hwpr_autograd::Tape::block_graph_matmul`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchGraph {
    /// `n x n` symmetric-normalised adjacency (with self loops).
    pub adjacency: Matrix,
    /// `n x NODE_FEATURE_DIM` one-hot node features.
    pub features: Matrix,
    /// Number of non-padding nodes (input + ops + output + global).
    natural: usize,
}

impl ArchGraph {
    /// Number of nodes, including padding.
    pub fn node_count(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of non-padding nodes.
    pub fn natural_count(&self) -> usize {
        self.natural
    }

    /// Index of the global aggregation node (last non-padding node).
    pub fn global_node(&self) -> usize {
        self.natural - 1
    }
}

/// Encodes `arch` as a graph of its natural size ([`NB201_NODES`] or
/// [`FBNET_NODES`]).
pub fn encode(arch: &Architecture) -> ArchGraph {
    encode_padded(arch, natural_nodes(arch))
}

/// The natural node count for `arch`'s space.
pub fn natural_nodes(arch: &Architecture) -> usize {
    match arch {
        Architecture::Nb201(_) => NB201_NODES,
        Architecture::Fbnet(_) => FBNET_NODES,
    }
}

/// Encodes `arch` padded with isolated zero-feature nodes up to `nodes`
/// (so mixed-space batches share one block size).
///
/// # Panics
///
/// Panics if `nodes` is smaller than the natural size.
pub fn encode_padded(arch: &Architecture, nodes: usize) -> ArchGraph {
    let natural = natural_nodes(arch);
    assert!(nodes >= natural, "cannot pad below natural node count");
    let mut raw = Matrix::zeros(nodes, nodes);
    let mut features = Matrix::zeros(nodes, NODE_FEATURE_DIM);
    // node layout: 0 = input, 1..=P ops, P+1 = output, P+2 = global;
    // padding nodes (if any) are appended after the global node
    let global = natural - 1;
    let output = natural - 2;
    features.set(0, FEAT_INPUT, 1.0);
    features.set(output, FEAT_OUTPUT, 1.0);
    features.set(global, FEAT_GLOBAL, 1.0);
    match arch {
        Architecture::Nb201(ops) => {
            for (e, op) in ops.iter().enumerate() {
                features.set(1 + e, 3 + op.index(), 1.0);
            }
            // data edges; `none` ops transmit nothing, so their node keeps
            // only the global link
            let alive = |e: usize| ops[e] != Nb201Op::None;
            for (e, &(src, dst)) in NB201_EDGE_NODES.iter().enumerate() {
                if !alive(e) {
                    continue;
                }
                // sources: cell node `src` is fed by the input (src == 0) or
                // by every alive op edge ending at `src`
                if src == 0 {
                    raw.set(0, 1 + e, 1.0);
                } else {
                    for (p, &(ps, pd)) in NB201_EDGE_NODES.iter().enumerate() {
                        if pd == src && alive(p) && ps < pd {
                            raw.set(1 + p, 1 + e, 1.0);
                        }
                    }
                }
                // sinks: ops ending at the last cell node feed the output
                if dst == 3 {
                    raw.set(1 + e, output, 1.0);
                }
            }
        }
        Architecture::Fbnet(ops) => {
            // chain: input -> b0 -> b1 -> ... -> b21 -> output
            for (l, op) in ops.iter().enumerate() {
                features.set(1 + l, 3 + Nb201Op::ALL.len() + op.index(), 1.0);
            }
            raw.set(0, 1, 1.0);
            for l in 0..FBNET_LAYERS - 1 {
                raw.set(1 + l, 2 + l, 1.0);
            }
            raw.set(FBNET_LAYERS, output, 1.0);
        }
    }
    // global node aggregates every real node (bidirectional links appear
    // after symmetrisation)
    for n in 0..natural - 1 {
        raw.set(n, global, 1.0);
    }
    ArchGraph {
        adjacency: normalized_adjacency(&raw, natural, nodes),
        features,
        natural,
    }
}

/// Symmetric normalisation `D^{-1/2}(A + A^T + I)D^{-1/2}` restricted to
/// the first `natural` nodes; padding nodes stay fully isolated (zero
/// rows), so they contribute nothing to message passing.
fn normalized_adjacency(raw: &Matrix, natural: usize, nodes: usize) -> Matrix {
    let mut sym = Matrix::zeros(nodes, nodes);
    for i in 0..natural {
        for j in 0..natural {
            let v = if i == j {
                1.0
            } else {
                (raw[(i, j)] + raw[(j, i)]).min(1.0)
            };
            sym.set(i, j, v);
        }
    }
    let mut deg = vec![0.0f32; nodes];
    for (i, d) in deg.iter_mut().enumerate() {
        *d = sym.row(i).iter().sum::<f32>();
    }
    let mut out = Matrix::zeros(nodes, nodes);
    for i in 0..nodes {
        if deg[i] == 0.0 {
            continue;
        }
        for j in 0..nodes {
            if sym[(i, j)] != 0.0 && deg[j] > 0.0 {
                out.set(i, j, sym[(i, j)] / (deg[i].sqrt() * deg[j].sqrt()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpaceId;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn nb201_graph_shapes() {
        let a = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let g = encode(&a);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.adjacency.shape(), (9, 9));
        assert_eq!(g.features.shape(), (9, NODE_FEATURE_DIM));
        assert_eq!(g.global_node(), 8);
    }

    #[test]
    fn features_are_one_hot() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            let a = Architecture::random(space, &mut rng);
            let g = encode(&a);
            for r in 0..g.features.rows() {
                let s: f32 = g.features.row(r).iter().sum();
                assert_eq!(s, 1.0, "node {r} feature row must be one-hot");
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_normalised() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let g = encode(&a);
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                assert!((g.adjacency[(i, j)] - g.adjacency[(j, i)]).abs() < 1e-6);
            }
            assert!(g.adjacency[(i, i)] > 0.0, "self loop on node {i}");
        }
    }

    #[test]
    fn zeroize_cuts_data_edges() {
        let all_none = Architecture::nb201([Nb201Op::None; 6]);
        let g = encode(&all_none);
        // op nodes only touch themselves and the global node
        for e in 0..6 {
            let row = g.adjacency.row(1 + e);
            let touching: Vec<usize> = (0..9).filter(|&j| row[j] != 0.0).collect();
            assert_eq!(touching, vec![1 + e, 8], "op node {e}");
        }
    }

    #[test]
    fn conv_edges_follow_cell_topology() {
        let all_conv = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let g = encode(&all_conv);
        // e0 = (0,1) is fed by input (node 0)
        assert!(g.adjacency[(0, 1)] > 0.0);
        // e2 = (1,2) is fed by e0
        assert!(g.adjacency[(1, 3)] > 0.0);
        // e5 = (2,3) feeds output (node 7)
        assert!(g.adjacency[(6, 7)] > 0.0);
        // e0 does not directly touch output
        assert_eq!(g.adjacency[(1, 7)], 0.0);
    }

    #[test]
    fn global_node_touches_every_real_node() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Architecture::random(SearchSpaceId::FBNet, &mut rng);
        let g = encode(&a);
        let global = g.global_node();
        for n in 0..g.node_count() - 1 {
            assert!(
                g.adjacency[(n, global)] > 0.0,
                "node {n} missing global link"
            );
        }
    }

    #[test]
    fn fbnet_chain_is_connected() {
        let a = Architecture::fbnet([FbnetOp::K3E3; FBNET_LAYERS]);
        let g = encode(&a);
        // input -> first block, consecutive blocks, last block -> output
        assert!(g.adjacency[(0, 1)] > 0.0);
        for l in 0..FBNET_LAYERS - 1 {
            assert!(g.adjacency[(1 + l, 2 + l)] > 0.0, "chain broken at {l}");
        }
        assert!(g.adjacency[(FBNET_LAYERS, FBNET_LAYERS + 1)] > 0.0);
    }

    #[test]
    fn padded_graph_isolates_padding() {
        let a = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let g = encode_padded(&a, FBNET_NODES);
        assert_eq!(g.node_count(), FBNET_NODES);
        assert_eq!(g.natural_count(), NB201_NODES);
        // padding rows (after the global node at 8) are all zero
        for n in NB201_NODES..FBNET_NODES {
            assert!(g.adjacency.row(n).iter().all(|&v| v == 0.0), "pad row {n}");
            assert!(g.features.row(n).iter().all(|&v| v == 0.0), "pad feat {n}");
        }
        // global stays at its natural slot and still touches real nodes
        let global = g.global_node();
        assert_eq!(global, 8);
        assert!(g.adjacency[(0, global)] > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot pad below natural")]
    fn padding_below_natural_panics() {
        let a = Architecture::fbnet([FbnetOp::Skip; FBNET_LAYERS]);
        let _ = encode_padded(&a, 9);
    }

    #[test]
    fn distinct_archs_have_distinct_encodings() {
        let a = encode(&Architecture::nb201([Nb201Op::NorConv3x3; 6]));
        let b = encode(&Architecture::nb201([Nb201Op::NorConv1x1; 6]));
        assert_ne!(a.features, b.features);
    }
}
