//! Gradient-boosted regression trees for the HW-PR-NAS regressor study.
//!
//! Table I of the paper compares three regressor families — MLP, XGBoost
//! and LGBoost (LightGBM) — as the head of the accuracy and latency
//! predictors. This crate implements the two tree ensembles from scratch:
//!
//! - second-order gradient boosting on squared loss with L2-regularised
//!   leaf weights and gain-based splits (the XGBoost objective),
//! - histogram-based split finding with per-feature quantile bins,
//! - two growth strategies: **level-wise** (XGBoost-style, grow all leaves
//!   to a depth budget) and **leaf-wise** (LightGBM-style, repeatedly split
//!   the leaf with the largest gain up to a leaf budget),
//! - stochastic row subsampling and shrinkage.
//!
//! # Examples
//!
//! ```
//! use hwpr_gbdt::{Gbdt, GbdtConfig};
//!
//! // learn y = x0 + 2*x1 on a small grid
//! let mut rows = Vec::new();
//! let mut targets = Vec::new();
//! for i in 0..20 {
//!     for j in 0..20 {
//!         rows.push(vec![i as f32 / 20.0, j as f32 / 20.0]);
//!         targets.push(i as f32 / 20.0 + 2.0 * j as f32 / 20.0);
//!     }
//! }
//! let model = Gbdt::fit(&rows, &targets, &GbdtConfig::xgboost_preset(7))?;
//! let pred = model.predict(&[0.5, 0.5]);
//! assert!((pred - 1.5).abs() < 0.1);
//! # Ok::<(), hwpr_gbdt::GbdtError>(())
//! ```

#![warn(missing_docs)]
mod binning;
mod boosting;
mod tree;

pub use binning::FeatureBins;
pub use boosting::{Gbdt, GbdtConfig, GrowthStrategy};
pub use tree::{RegressionTree, TreeConfig};

use std::error::Error;
use std::fmt;

/// Error produced when fitting or configuring a model.
#[derive(Debug, Clone, PartialEq)]
pub enum GbdtError {
    /// The training set is empty or features/targets disagree in length.
    InvalidDataset(String),
    /// A configuration value is out of range.
    InvalidConfig(String),
}

impl fmt::Display for GbdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdtError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            GbdtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for GbdtError {}

/// Convenience alias for fallible GBDT operations.
pub type Result<T> = std::result::Result<T, GbdtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(GbdtError::InvalidDataset("x".into())
            .to_string()
            .contains('x'));
        assert!(GbdtError::InvalidConfig("y".into())
            .to_string()
            .contains('y'));
    }
}
