//! End-to-end finite-difference gradient checks through whole layers
//! (LSTM, GCN, MLP): perturb each parameter scalar and compare the loss
//! slope against the analytic gradient from the tape.

use hwpr_autograd::Tape;
use hwpr_nn::layers::{GcnLayer, LayerRng, Lstm, Mlp, MlpConfig};
use hwpr_nn::{Binder, Params};
use hwpr_tensor::Matrix;
use rand_chacha::rand_core::SeedableRng;

/// Computes the loss for the current parameter values.
fn loss_of<F>(params: &Params, forward: &F) -> f32
where
    F: Fn(&mut Binder<'_, '_>) -> hwpr_nn::Result<hwpr_autograd::Var>,
{
    let mut tape = Tape::new();
    let mut binder = Binder::new(&mut tape, params);
    let loss = forward(&mut binder).expect("forward failed");
    tape.value(loss)[(0, 0)]
}

/// Checks every parameter's analytic gradient against central differences.
fn check_gradients<F>(mut params: Params, forward: F)
where
    F: Fn(&mut Binder<'_, '_>) -> hwpr_nn::Result<hwpr_autograd::Var>,
{
    // analytic
    let mut tape = Tape::new();
    let mut binder = Binder::for_training(&mut tape, &params);
    binder.train = false; // keep dropout off for determinism
    let loss = forward(&mut binder).expect("forward failed");
    let grads = binder.finish(loss).expect("backward failed");

    let h = 5e-3f32;
    let ids = params.ids();
    for (idx, id) in ids.into_iter().enumerate() {
        let Some(grad) = &grads[idx] else { continue };
        let len = params.get(id).len();
        // sample a few scalars per parameter to keep runtime bounded
        for k in (0..len).step_by((len / 5).max(1)) {
            let original = params.get(id).as_slice()[k];
            params.get_mut(id).as_mut_slice()[k] = original + h;
            let plus = loss_of(&params, &forward);
            params.get_mut(id).as_mut_slice()[k] = original - h;
            let minus = loss_of(&params, &forward);
            params.get_mut(id).as_mut_slice()[k] = original;
            let numeric = (plus - minus) / (2.0 * h);
            let analytic = grad.as_slice()[k];
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                (analytic - numeric).abs() / denom < 7e-2,
                "param {idx} elem {k}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn lstm_end_to_end_gradients() {
    let mut params = Params::new();
    let lstm = Lstm::new(&mut params, "lstm", 3, 4, 2, 5);
    let steps_data: Vec<Matrix> = (0..3)
        .map(|t| Matrix::filled(2, 3, 0.3 * (t as f32 + 1.0) - 0.4))
        .collect();
    let target = Matrix::filled(2, 4, 0.2);
    check_gradients(params, move |binder| {
        let steps: Vec<_> = steps_data.iter().map(|m| binder.input(m.clone())).collect();
        let h = lstm.forward(binder, &steps)?;
        Ok(binder.tape().mse_loss(h, &target)?)
    });
}

#[test]
fn gcn_end_to_end_gradients() {
    let mut params = Params::new();
    let layer1 = GcnLayer::new(&mut params, "g1", 5, 6, 1);
    let layer2 = GcnLayer::new(&mut params, "g2", 6, 3, 2);
    let adj = {
        let mut raw = Matrix::zeros(4, 4);
        raw.set(0, 1, 1.0);
        raw.set(1, 2, 1.0);
        raw.set(2, 3, 1.0);
        hwpr_nn::layers::normalize_adjacency(&raw)
    };
    let features =
        Matrix::from_vec(8, 5, (0..40).map(|i| (i as f32 * 0.13).sin()).collect()).unwrap();
    let target = Matrix::filled(8, 3, 0.1);
    check_gradients(params, move |binder| {
        let x = binder.input(features.clone());
        let h = layer1.forward(binder, x, &[adj.clone(), adj.clone()], 4)?;
        let h = layer2.forward(binder, h, &[adj.clone(), adj.clone()], 4)?;
        Ok(binder.tape().mse_loss(h, &target)?)
    });
}

#[test]
fn mlp_end_to_end_gradients() {
    let mut params = Params::new();
    let mlp = Mlp::new(&mut params, "m", &MlpConfig::new(4, vec![6, 5], 2, 3)).unwrap();
    let input = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32 * 0.37).cos()).collect()).unwrap();
    let target = Matrix::filled(3, 2, -0.3);
    check_gradients(params, move |binder| {
        let mut rng = LayerRng::seed_from_u64(0);
        let x = binder.input(input.clone());
        let y = mlp.forward(binder, x, &mut rng)?;
        Ok(binder.tape().mse_loss(y, &target)?)
    });
}
