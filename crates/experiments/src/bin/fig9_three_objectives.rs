//! Regenerates Figure 9 (three-objective Pareto fronts).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig9::run(&harness);
    hwpr_experiments::write_report("fig9_three_objectives", &report);
}
