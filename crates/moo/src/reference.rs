//! The original O(M·N²) multi-objective kernels, kept as the ground truth
//! for the workspace-backed implementations in [`crate::MooWorkspace`] —
//! the same pattern as `hwpr_tensor::reference` for the blocked GEMM.
//!
//! Differential tests assert the optimised paths produce identical fronts,
//! ranks and crowding distances (hypervolume within 1e-12), and the
//! `table3_moo_kernels` criterion bench measures the speedup. These are
//! the pre-workspace `hwpr_moo` implementations, unchanged.
//!
//! One behavioural note preserved here: `fast_non_dominated_sort` lists
//! each front in domination-count release order (front 0 ascending, later
//! fronts in traversal order), whereas the optimised kernels normalise
//! every front to ascending index order. The sets per front are identical.

use crate::dominance::{dominates, weakly_dominates};
use crate::{validate_points, MooError, Result};
use std::borrow::Borrow;

/// Partitions `points` into Pareto fronts (indices), best front first
/// (original implementation).
///
/// # Errors
///
/// Returns [`crate::MooError`] when the set is empty, dimensions are
/// inconsistent, or values are non-finite.
pub fn fast_non_dominated_sort<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<Vec<usize>>> {
    validate_points(points)?;
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(points[i].borrow(), points[j].borrow()) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if dominates(points[j].borrow(), points[i].borrow()) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    Ok(fronts)
}

/// The Pareto rank (0-based front index) of every point (original
/// implementation).
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_ranks<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    let fronts = fast_non_dominated_sort(points)?;
    let mut ranks = vec![0usize; points.len()];
    for (k, front) in fronts.iter().enumerate() {
        for &i in front {
            ranks[i] = k;
        }
    }
    Ok(ranks)
}

/// Indices of the non-dominated (first-front) points (original
/// implementation: computes *all* fronts, then takes the first).
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_front<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    Ok(fast_non_dominated_sort(points)?.remove(0))
}

/// NSGA-II crowding distance of each point *within one front* (original
/// implementation).
///
/// # Errors
///
/// Returns [`crate::MooError`] for empty/inconsistent inputs.
pub fn crowding_distance<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<f64>> {
    let dim = validate_points(points)?;
    let n = points.len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return Ok(vec![f64::INFINITY; n]);
    }
    let at = |i: usize, d: usize| points[i].borrow()[d];
    for d in 0..dim {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| at(i, d).total_cmp(&at(j, d)));
        let span = at(order[n - 1], d) - at(order[0], d);
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        if span <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let gap = (at(order[w + 1], d) - at(order[w - 1], d)) / span;
            distance[order[w]] += gap;
        }
    }
    Ok(distance)
}

/// The hypervolume dominated by `points` with respect to `reference`
/// (original implementation: re-validates inside [`pareto_front`] and
/// clones the point set at every WFG recursion level).
///
/// # Errors
///
/// Returns [`MooError`] for empty/inconsistent input, a reference point of
/// the wrong dimension, or a reference that does not bound the points.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> Result<f64> {
    let dim = validate_points(points)?;
    if reference.len() != dim {
        return Err(MooError::DimensionMismatch {
            expected: dim,
            found: reference.len(),
        });
    }
    if reference.iter().any(|v| !v.is_finite()) {
        return Err(MooError::NonFinite);
    }
    if points
        .iter()
        .any(|p| p.iter().zip(reference).any(|(x, r)| x > r))
    {
        return Err(MooError::ReferenceNotDominating);
    }
    // only the non-dominated points contribute
    let front_idx = pareto_front(points)?;
    let front: Vec<Vec<f64>> = front_idx.iter().map(|&i| points[i].clone()).collect();
    Ok(match dim {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(&front, reference),
        _ => wfg(&front, reference),
    })
}

/// 2-D hypervolume by sweeping points sorted on the first objective.
fn hv2(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in pts {
        // front is non-dominated, so y strictly decreases along increasing x
        let width = reference[0] - p[0];
        let height = prev_y - p[1];
        if height > 0.0 {
            hv += width * height;
            prev_y = p[1];
        }
    }
    hv
}

/// WFG exclusive-hypervolume recursion for `d >= 3`.
fn wfg(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = front.to_vec();
    // processing points sorted worst-first on the last objective improves
    // limit-set pruning
    pts.sort_by(|a, b| b[a.len() - 1].total_cmp(&a[a.len() - 1]));
    let mut total = 0.0;
    for i in 0..pts.len() {
        total += exclusive_hv(&pts[i], &pts[i + 1..], reference);
    }
    total
}

/// Volume dominated by `p` alone, minus the part also dominated by `rest`.
fn exclusive_hv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let box_vol: f64 = p.iter().zip(reference).map(|(x, r)| r - x).product();
    if rest.is_empty() {
        return box_vol;
    }
    // limit set: clip every other point into p's dominated box
    let limited: Vec<Vec<f64>> = rest
        .iter()
        .map(|q| q.iter().zip(p).map(|(&qv, &pv)| qv.max(pv)).collect())
        .collect();
    // non-dominated subset of the limit set
    let nd = non_dominated(&limited);
    box_vol - hv_dispatch(&nd, reference)
}

fn hv_dispatch(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    match front[0].len() {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(front, reference),
        _ => wfg(front, reference),
    }
}

fn non_dominated(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut keep: Vec<Vec<f64>> = Vec::new();
    for p in points {
        if keep.iter().any(|q| weakly_dominates(q, p)) {
            continue;
        }
        keep.retain(|q| !weakly_dominates(p, q));
        keep.push(p.clone());
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_front_traversal_order_is_preserved() {
        // the original sort releases later fronts in traversal order; this
        // pins the exact behaviour the workspace normalises away
        let points = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 1.0],
            vec![3.0, 4.0],
            vec![5.0, 5.0],
        ];
        let fronts = fast_non_dominated_sort(&points).unwrap();
        assert_eq!(fronts[0], vec![0, 1, 2]);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
        assert_eq!(pareto_ranks(&points).unwrap(), vec![0, 0, 0, 1, 2]);
        assert_eq!(pareto_front(&points).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn reference_hypervolume_staircase() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let hv = hypervolume(&front, &[4.0, 4.0]).unwrap();
        assert!((hv - 6.0).abs() < 1e-12);
    }
}
