//! Standalone single-objective predictors — the building blocks of the
//! Fig. 4 encoding study and the Table I regressor study.

use crate::config::{ModelConfig, TrainConfig};
use crate::data::{EncodingCache, SurrogateDataset};
use crate::encoders::{EncoderChoice, EncoderSet};
use crate::Result;
use hwpr_autograd::Tape;
use hwpr_gbdt::{Gbdt, GbdtConfig};
use hwpr_nasbench::{tokens, Architecture};
use hwpr_nn::batch::shuffled_batches;
use hwpr_nn::layers::{LayerRng, Mlp, MlpConfig};
use hwpr_nn::optim::{AdamW, CosineAnnealing, EarlyStopping, Optimizer};
use hwpr_nn::{Binder, Params};
use hwpr_tensor::Matrix;
use rand_chacha::rand_core::SeedableRng;
use std::fmt;

/// Which scalar a predictor regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMetric {
    /// Accuracy in percent (on the dataset the training data is bound to).
    Accuracy,
    /// Latency in milliseconds (on the platform the data is bound to).
    Latency,
}

impl fmt::Display for TargetMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetMetric::Accuracy => write!(f, "accuracy"),
            TargetMetric::Latency => write!(f, "latency"),
        }
    }
}

/// The regressor head (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressorKind {
    /// Neural head (MLP) on top of the chosen encoders.
    Mlp,
    /// Level-wise gradient-boosted trees (XGBoost-style).
    XgBoost,
    /// Leaf-wise gradient-boosted trees (LightGBM-style).
    LgBoost,
}

impl fmt::Display for RegressorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressorKind::Mlp => write!(f, "MLP"),
            RegressorKind::XgBoost => write!(f, "XGBoost"),
            RegressorKind::LgBoost => write!(f, "LGBoost"),
        }
    }
}

/// Configuration of a standalone predictor.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Encoder combination (ignored by tree heads, which consume AF +
    /// one-hot op features as in the paper's dense-layer+AF setup).
    pub encoders: EncoderChoice,
    /// Head type.
    pub regressor: RegressorKind,
    /// Regression target.
    pub target: TargetMetric,
    /// Network sizes for neural heads.
    pub model: ModelConfig,
    /// Optimisation hyperparameters for neural heads.
    pub train: TrainConfig,
    /// Weight of the pairwise hinge ranking term (margin 0.1, as in the
    /// paper's encoder study).
    pub hinge_weight: f32,
}

impl PredictorConfig {
    /// An MLP predictor with the given encoders and target.
    pub fn mlp(encoders: EncoderChoice, target: TargetMetric) -> Self {
        Self {
            encoders,
            regressor: RegressorKind::Mlp,
            target,
            model: ModelConfig::fast(),
            train: TrainConfig::fast(),
            hinge_weight: 0.5,
        }
    }

    /// A boosted-tree predictor for the given target.
    pub fn boosted(kind: RegressorKind, target: TargetMetric) -> Self {
        Self {
            encoders: EncoderChoice::AF,
            regressor: kind,
            target,
            model: ModelConfig::fast(),
            train: TrainConfig::fast(),
            hinge_weight: 0.0,
        }
    }
}

/// Quality of a fitted predictor on its validation split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorReport {
    /// Root mean squared error in the target's natural units.
    pub rmse: f64,
    /// Kendall τ ranking correlation.
    pub kendall_tau: f64,
}

enum PredictorInner {
    Neural {
        params: Params,
        encoder: EncoderSet,
        head: Mlp,
    },
    Boosted(Gbdt),
}

impl fmt::Debug for PredictorInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorInner::Neural { .. } => f.write_str("Neural"),
            PredictorInner::Boosted(_) => f.write_str("Boosted"),
        }
    }
}

/// A fitted single-objective predictor.
#[derive(Debug)]
pub struct Predictor {
    inner: PredictorInner,
    cache: EncodingCache,
    target: TargetMetric,
    scale: f64,
}

impl Predictor {
    /// Fits a predictor on `data` and reports validation quality.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on empty data or model failures.
    pub fn fit(
        data: &SurrogateDataset,
        config: &PredictorConfig,
    ) -> Result<(Self, PredictorReport)> {
        let space = data.samples()[0].arch.space();
        let mixed = data.samples().iter().any(|s| s.arch.space() != space);
        let cache = if mixed {
            EncodingCache::for_mixed(data.dataset())
        } else {
            EncodingCache::for_space(space, data.dataset())
        };
        let (train, val) = data.split(0.2, config.train.seed)?;
        let scale = match config.target {
            TargetMetric::Accuracy => 100.0,
            TargetMetric::Latency => data.max_latency().max(1e-9),
        };
        let target_of = |s: &crate::data::ArchSample| match config.target {
            TargetMetric::Accuracy => s.accuracy,
            TargetMetric::Latency => s.latency_ms,
        };
        let mut predictor = match config.regressor {
            RegressorKind::Mlp => Self::fit_neural(&cache, &train, config, scale, &target_of)?,
            kind => Self::fit_boosted(&cache, &train, config, kind, scale, &target_of)?,
        };
        predictor.target = config.target;
        let report = predictor.evaluate(&val)?;
        Ok((predictor, report))
    }

    fn fit_neural(
        cache: &EncodingCache,
        train: &SurrogateDataset,
        config: &PredictorConfig,
        scale: f64,
        target_of: &dyn Fn(&crate::data::ArchSample) -> f64,
    ) -> Result<Self> {
        let train_archs: Vec<Architecture> =
            train.samples().iter().map(|s| s.arch.clone()).collect();
        let mut params = Params::new();
        let encoder = EncoderSet::new(
            &mut params,
            "enc",
            &config.model,
            config.encoders,
            cache,
            &train_archs,
        )?;
        let head = Mlp::new(
            &mut params,
            "head",
            &MlpConfig {
                input_dim: encoder.output_dim(),
                hidden: config.model.mlp_hidden.clone(),
                output_dim: 1,
                activation: Default::default(),
                dropout: config.model.dropout,
                seed: config.model.seed.wrapping_add(7),
            },
        )?;
        let mut optimizer =
            AdamW::new(config.train.learning_rate).with_weight_decay(config.train.weight_decay);
        let schedule = CosineAnnealing::new(
            config.train.learning_rate,
            config.train.learning_rate * 0.01,
            config.train.epochs,
        );
        let mut stopper = EarlyStopping::new(config.train.early_stop_patience);
        let mut rng = LayerRng::seed_from_u64(config.train.seed);
        let samples = train.samples();
        for epoch in 0..config.train.epochs {
            optimizer.set_learning_rate(schedule.learning_rate_at(epoch));
            let batches = shuffled_batches(
                samples.len(),
                config.train.batch_size,
                config.train.seed.wrapping_add(epoch as u64),
            );
            let mut epoch_loss = 0.0f32;
            for batch in &batches {
                if batch.len() < 2 {
                    continue;
                }
                let archs: Vec<Architecture> =
                    batch.iter().map(|&i| samples[i].arch.clone()).collect();
                let targets: Vec<f32> = batch
                    .iter()
                    .map(|&i| (target_of(&samples[i]) / scale) as f32)
                    .collect();
                let target_col = Matrix::col_vector(&targets);
                // ranking pairs: adjacent in sorted-target order, higher first
                let mut order: Vec<usize> = (0..batch.len()).collect();
                order.sort_by(|&a, &b| targets[b].total_cmp(&targets[a]));
                let pairs: Vec<(usize, usize)> = order
                    .windows(2)
                    .filter(|w| targets[w[0]] > targets[w[1]])
                    .map(|w| (w[0], w[1]))
                    .collect();
                let mut tape = Tape::new();
                let mut binder = Binder::for_training(&mut tape, &params);
                let repr = encoder.forward(&mut binder, cache, &archs, &mut rng)?;
                let pred = head.forward(&mut binder, repr, &mut rng)?;
                let tape_ref = binder.tape();
                let mse = tape_ref.mse_loss(pred, &target_col)?;
                let loss = if config.hinge_weight > 0.0 && !pairs.is_empty() {
                    let hinge = tape_ref.pairwise_hinge(pred, &pairs, 0.1)?;
                    let hinge = tape_ref.scale(hinge, config.hinge_weight);
                    tape_ref.add(mse, hinge)?
                } else {
                    mse
                };
                epoch_loss += tape_ref.value(loss)[(0, 0)];
                let grads = binder.finish(loss)?;
                optimizer.step(&mut params, &grads);
            }
            if stopper.update(epoch_loss / batches.len().max(1) as f32) {
                break;
            }
        }
        Ok(Self {
            inner: PredictorInner::Neural {
                params,
                encoder,
                head,
            },
            cache: clone_cache(cache),
            target: TargetMetric::Accuracy, // overwritten by caller
            scale,
        })
    }

    fn fit_boosted(
        cache: &EncodingCache,
        train: &SurrogateDataset,
        config: &PredictorConfig,
        kind: RegressorKind,
        scale: f64,
        target_of: &dyn Fn(&crate::data::ArchSample) -> f64,
    ) -> Result<Self> {
        let rows: Vec<Vec<f32>> = train
            .samples()
            .iter()
            .map(|s| tree_features(cache, &s.arch))
            .collect();
        let targets: Vec<f32> = train
            .samples()
            .iter()
            .map(|s| (target_of(s) / scale) as f32)
            .collect();
        let gbdt_config = match kind {
            RegressorKind::XgBoost => GbdtConfig::xgboost_preset(config.train.seed),
            RegressorKind::LgBoost => GbdtConfig::lgboost_preset(config.train.seed),
            RegressorKind::Mlp => unreachable!("neural head handled separately"),
        };
        let model = Gbdt::fit(&rows, &targets, &gbdt_config)?;
        Ok(Self {
            inner: PredictorInner::Boosted(model),
            cache: clone_cache(cache),
            target: TargetMetric::Accuracy, // overwritten by caller
            scale,
        })
    }

    /// The regression target.
    pub fn target(&self) -> TargetMetric {
        self.target
    }

    /// Predicts the target metric (natural units) for each architecture.
    ///
    /// # Errors
    ///
    /// Propagates model failures (cannot occur for well-formed inputs).
    pub fn predict(&self, archs: &[Architecture]) -> Result<Vec<f64>> {
        match &self.inner {
            PredictorInner::Neural {
                params,
                encoder,
                head,
            } => {
                let mut rng = LayerRng::seed_from_u64(0);
                let mut out = Vec::with_capacity(archs.len());
                for chunk in archs.chunks(crate::model::infer_batch()) {
                    let mut tape = Tape::new();
                    let mut binder = Binder::new(&mut tape, params);
                    let repr = encoder.forward(&mut binder, &self.cache, chunk, &mut rng)?;
                    let pred = head.forward(&mut binder, repr, &mut rng)?;
                    out.extend(
                        tape.value(pred)
                            .as_slice()
                            .iter()
                            .map(|&v| v as f64 * self.scale),
                    );
                }
                Ok(out)
            }
            PredictorInner::Boosted(model) => Ok(archs
                .iter()
                .map(|a| model.predict(&tree_features(&self.cache, a)) as f64 * self.scale)
                .collect()),
        }
    }

    /// Evaluates RMSE and Kendall τ against the true targets in `data`.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn evaluate(&self, data: &SurrogateDataset) -> Result<PredictorReport> {
        let archs: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
        let preds: Vec<f32> = self
            .predict(&archs)?
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let truth: Vec<f32> = data
            .samples()
            .iter()
            .map(|s| match self.target {
                TargetMetric::Accuracy => s.accuracy as f32,
                TargetMetric::Latency => s.latency_ms as f32,
            })
            .collect();
        Ok(PredictorReport {
            rmse: hwpr_metrics::rmse(&preds, &truth).unwrap_or(f64::NAN),
            kendall_tau: hwpr_metrics::kendall_tau(&preds, &truth).unwrap_or(0.0),
        })
    }
}

/// Tree-model features: raw AF concatenated with one-hot op-position
/// indicators (the paper passes the architecture encoding through a dense
/// layer and concatenates AF; for trees the one-hot encoding is the
/// equivalent raw form).
fn tree_features(cache: &EncodingCache, arch: &Architecture) -> Vec<f32> {
    let enc = cache.encoding(arch);
    let mut row = enc.af.clone();
    for &token in &enc.tokens {
        let mut onehot = [0.0f32; tokens::VOCAB_SIZE];
        onehot[token] = 1.0;
        row.extend_from_slice(&onehot);
    }
    row
}

/// The caches are configured identically; building a fresh one lets the
/// predictor own its memoisation without sharing locks with the trainer.
fn clone_cache(cache: &EncodingCache) -> EncodingCache {
    EncodingCache::new(cache.dataset(), cache.nodes(), cache.seq_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
    use hwpr_nasbench::{Dataset, SearchSpaceId};

    fn data(n: usize) -> SurrogateDataset {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(n),
            seed: 9,
        });
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap()
    }

    #[test]
    fn boosted_latency_predictor_ranks_well() {
        let d = data(300);
        let (p, report) = Predictor::fit(
            &d,
            &PredictorConfig::boosted(RegressorKind::XgBoost, TargetMetric::Latency),
        )
        .unwrap();
        assert_eq!(p.target(), TargetMetric::Latency);
        assert!(report.kendall_tau > 0.6, "tau {}", report.kendall_tau);
        assert!(report.rmse.is_finite());
    }

    #[test]
    fn lgboost_accuracy_predictor_learns() {
        let d = data(300);
        let (_, report) = Predictor::fit(
            &d,
            &PredictorConfig::boosted(RegressorKind::LgBoost, TargetMetric::Accuracy),
        )
        .unwrap();
        assert!(report.kendall_tau > 0.4, "tau {}", report.kendall_tau);
    }

    #[test]
    fn mlp_af_predictor_learns_latency() {
        let d = data(200);
        let mut cfg = PredictorConfig::mlp(EncoderChoice::AF, TargetMetric::Latency);
        cfg.model = ModelConfig::tiny();
        cfg.train = TrainConfig::tiny();
        cfg.train.epochs = 15;
        let (p, report) = Predictor::fit(&d, &cfg).unwrap();
        assert!(report.kendall_tau > 0.3, "tau {}", report.kendall_tau);
        let preds = p.predict(&[d.samples()[0].arch.clone()]).unwrap();
        assert_eq!(preds.len(), 1);
        assert!(preds[0].is_finite());
    }

    #[test]
    fn predictions_are_deterministic() {
        let d = data(64);
        let mut cfg = PredictorConfig::mlp(EncoderChoice::GCN, TargetMetric::Accuracy);
        cfg.model = ModelConfig::tiny();
        cfg.train = TrainConfig::tiny();
        let (p, _) = Predictor::fit(&d, &cfg).unwrap();
        let archs: Vec<Architecture> = d.samples().iter().take(4).map(|s| s.arch.clone()).collect();
        assert_eq!(p.predict(&archs).unwrap(), p.predict(&archs).unwrap());
    }

    #[test]
    fn tree_features_have_fixed_dim() {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let a = Architecture::nb201_from_index(5).unwrap();
        let f = tree_features(&cache, &a);
        assert_eq!(
            f.len(),
            hwpr_nasbench::features::ARCH_FEATURE_DIM + 6 * tokens::VOCAB_SIZE
        );
    }

    #[test]
    fn display_impls() {
        assert_eq!(TargetMetric::Accuracy.to_string(), "accuracy");
        assert_eq!(RegressorKind::XgBoost.to_string(), "XGBoost");
        assert_eq!(RegressorKind::LgBoost.to_string(), "LGBoost");
        assert_eq!(RegressorKind::Mlp.to_string(), "MLP");
    }
}
