//! A full MOEA run with telemetry enabled: the event stream must carry
//! per-generation hypervolume and cache statistics, and counter updates
//! from parallel evaluation workers must never be lost.

use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_obs::sink::MemorySink;
use hwpr_obs::{Event, Recorder, Value};
use hwpr_search::{HwPrNasEvaluator, Moea, MoeaConfig, ScoreCache};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The recorder slot is process-global; tests that install one serialise
/// on this lock.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn trained_model() -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(48),
        seed: 3,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)
        .expect("fixture dataset");
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("tiny fit");
    Arc::new(model)
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(value: &Value) -> f64 {
    match value {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("expected a number, got {other:?}"),
    }
}

#[test]
fn instrumented_parallel_search_emits_consistent_telemetry() {
    let _guard = recorder_lock();
    let model = trained_model();
    let cache = Arc::new(ScoreCache::new());
    let mut evaluator = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu)
        .with_threads(4)
        .with_shared_cache(Arc::clone(&cache));

    let sink = Arc::new(MemorySink::new());
    hwpr_obs::install(Arc::clone(&sink) as Arc<dyn Recorder>);
    let cfg = MoeaConfig {
        generations: 4,
        record_populations: true,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(7);
    let result = Moea::new(cfg)
        .expect("valid config")
        .run(&mut evaluator)
        .expect("search runs");
    hwpr_obs::shutdown();
    let events = sink.events();

    // every evaluated architecture hits or misses the cache exactly once,
    // so the counters reconcile with the run even under 4 worker threads
    assert_eq!(
        cache.hits() + cache.misses(),
        result.evaluations as u64,
        "cache counters lost updates under parallel evaluation"
    );
    assert_eq!(result.surrogate_calls as u64, cache.misses());

    // the whole run is wrapped in a search.moea span
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::SpanEnd { name, .. } if name == "search.moea")));

    // one generation record per generation, each carrying hypervolume,
    // front size and reconciled cache statistics
    let generations: Vec<&Vec<(String, Value)>> = events
        .iter()
        .filter_map(|e| match e {
            Event::Record { name, fields, .. } if name == "search.generation" => Some(fields),
            _ => None,
        })
        .collect();
    assert_eq!(generations.len(), result.history.len());
    for (i, fields) in generations.iter().enumerate() {
        assert_eq!(as_f64(field(fields, "gen").expect("gen")) as usize, i);
        let hv = as_f64(field(fields, "hypervolume").expect("hypervolume"));
        assert!(hv >= 0.0, "hypervolume must be non-negative: {hv}");
        assert!(as_f64(field(fields, "front_size").expect("front_size")) >= 1.0);
        let hits = as_f64(field(fields, "cache_hits").expect("cache_hits"));
        let misses = as_f64(field(fields, "cache_misses").expect("cache_misses"));
        let rate = as_f64(field(fields, "cache_hit_rate").expect("cache_hit_rate"));
        assert!((rate - hits / (hits + misses)).abs() < 1e-9);
    }
    let last = generations.last().expect("at least one generation");
    assert_eq!(
        as_f64(field(last, "cache_hits").expect("cache_hits")) as u64,
        cache.hits(),
        "final record must carry the cache totals"
    );

    // record_populations also snapshots the Pareto front point sets
    let fronts: Vec<&Vec<(String, Value)>> = events
        .iter()
        .filter_map(|e| match e {
            Event::Record { name, fields, .. } if name == "search.front" => Some(fields),
            _ => None,
        })
        .collect();
    assert_eq!(fronts.len(), generations.len());
    let Value::Array(points) = field(fronts[0], "points").expect("points") else {
        panic!("front snapshot must carry a point array");
    };
    assert!(!points.is_empty());
    let Value::Array(first_point) = &points[0] else {
        panic!("each front point is an objective vector");
    };
    assert_eq!(
        first_point.len(),
        2,
        "accuracy-error and latency objectives"
    );

    // the evaluator latency histogram saw one observation per evaluate call
    let eval_hist = events.iter().rev().find_map(|e| match e {
        Event::Hist { name, count, .. } if name == "search.eval_ms" => Some(*count),
        _ => None,
    });
    // the registry snapshot is emitted by the caller, not the MOEA, so the
    // histogram only shows up via registry().emit(); check it directly
    assert!(eval_hist.is_none() || eval_hist == Some(result.history.len() as u64 + 1));
    let snapshot = hwpr_obs::metrics::registry().snapshot();
    let hist_event = snapshot
        .histograms
        .iter()
        .find_map(|e| match e {
            Event::Hist { name, count, .. } if name == "search.eval_ms" => Some(*count),
            _ => None,
        })
        .expect("eval latency histogram registered");
    assert!(
        hist_event > result.history.len() as u64,
        "one observation per evaluate call (initial + per generation)"
    );
}

#[test]
fn disabled_telemetry_leaves_search_results_identical() {
    let _guard = recorder_lock();
    let model = trained_model();
    let cfg = MoeaConfig {
        generations: 3,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(11);

    // telemetry off
    let mut plain = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(2);
    let a = Moea::new(cfg.clone())
        .expect("valid config")
        .run(&mut plain)
        .expect("search runs");

    // telemetry on
    let sink = Arc::new(MemorySink::new());
    hwpr_obs::install(Arc::clone(&sink) as Arc<dyn Recorder>);
    let mut instrumented =
        HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(2);
    let b = Moea::new(cfg)
        .expect("valid config")
        .run(&mut instrumented)
        .expect("search runs");
    hwpr_obs::shutdown();

    assert_eq!(a.population, b.population, "telemetry changed the search");
    assert_eq!(a.evaluations, b.evaluations);
    assert!(!sink.events().is_empty());
}
