//! Figure 4: encoding-scheme ablation (AF / LSTM / GCN / LSTM+AF / GCN+AF)
//! for the accuracy and latency predictors, measured by Kendall τ.

use crate::{Harness, MarkdownTable};
use hwpr_core::encoders::EncoderChoice;
use hwpr_core::predictor::{Predictor, PredictorConfig, TargetMetric};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 4 — encoding schemes (Kendall τ, MLP head)\n");
    for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
        let data = h.dataset(space, Dataset::Cifar10, Platform::EdgeGpu);
        let _ = writeln!(out, "## {space}\n");
        let mut t = MarkdownTable::new(vec!["Encoding", "Accuracy τ", "Latency τ"]);
        for choice in EncoderChoice::FIG4_VARIANTS {
            let mut cells = vec![choice.to_string()];
            for target in [TargetMetric::Accuracy, TargetMetric::Latency] {
                let config = PredictorConfig {
                    model: h.scale.model_config(),
                    train: h.scale.train_config(),
                    ..PredictorConfig::mlp(choice, target)
                };
                let (_, report) =
                    Predictor::fit(&data, &config).expect("predictor training failed");
                cells.push(format!("{:.4}", report.kendall_tau));
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Paper's shape: AF alone correlates weakly with accuracy; GCN(+AF) \
         is the best accuracy encoder (it sees the connections zeroize/skip \
         modify); LSTM(+AF) is the best latency encoder, and AF helps \
         latency substantially."
    );
    out
}
