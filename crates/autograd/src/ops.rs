//! Forward op builders and their backward rules.

use crate::error::AutogradError;
use crate::tape::{Op, Tape, Var};
use crate::Result;
use hwpr_tensor::Matrix;

impl Tape {
    /// Matrix product `a @ b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).matmul(self.value(b))?;
        Ok(self.push(value, Op::MatMul(a, b)))
    }

    /// Element-wise sum `a + b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).add(self.value(b))?;
        Ok(self.push(value, Op::Add(a, b)))
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).sub(self.value(b))?;
        Ok(self.push(value, Op::Sub(a, b)))
    }

    /// Element-wise product `a * b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).hadamard(self.value(b))?;
        Ok(self.push(value, Op::Mul(a, b)))
    }

    /// Adds the `1 x cols` row vector `bias` to every row of `a`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `bias` is not `1 x a.cols()`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Result<Var> {
        let value = self.value(a).add_row_broadcast(self.value(bias))?;
        Ok(self.push(value, Op::AddBias(a, bias)))
    }

    /// Scalar product `a * scalar`.
    pub fn scale(&mut self, a: Var, scalar: f32) -> Var {
        let value = self.value(a).scale(scalar);
        self.push(value, Op::Scale(a, scalar))
    }

    /// Element-wise `a + scalar`.
    pub fn add_scalar(&mut self, a: Var, scalar: f32) -> Var {
        let value = self.value(a).map(|x| x + scalar);
        self.push(value, Op::AddScalar(a, scalar))
    }

    /// Rectified linear unit `max(a, 0)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Logistic sigmoid `1 / (1 + exp(-a))`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::exp);
        self.push(value, Op::Exp(a))
    }

    /// Element-wise `sqrt(a + eps)`; `eps` keeps the derivative finite at 0.
    pub fn sqrt(&mut self, a: Var, eps: f32) -> Var {
        let value = self.value(a).map(|x| (x + eps).sqrt());
        self.push(value, Op::Sqrt(a, eps))
    }

    /// Horizontal concatenation of `parts` (equal row counts).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Result<Var> {
        let values: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Matrix::concat_cols(&values)?;
        Ok(self.push(value, Op::ConcatCols(parts.to_vec())))
    }

    /// Columns `start..end` of `a` as a new node.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the range is out of bounds or empty.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Result<Var> {
        let src = self.value(a);
        if start >= end || end > src.cols() {
            return Err(AutogradError::Shape(hwpr_tensor::ShapeError::new(
                "slice_cols",
                src.shape(),
                (start, end),
            )));
        }
        let mut value = Matrix::zeros(src.rows(), end - start);
        for r in 0..src.rows() {
            value.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        Ok(self.push(value, Op::SliceCols(a, start, end)))
    }

    /// Gathers rows of `a` by index (embedding lookup); duplicate indices
    /// are allowed and their gradients accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::IndexOutOfRange`] for invalid indices.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Result<Var> {
        let src = self.value(a);
        let rows = src.rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
            return Err(AutogradError::IndexOutOfRange { index: bad, rows });
        }
        let value = src.select_rows(indices);
        Ok(self.push(value, Op::GatherRows(a, indices.to_vec())))
    }

    /// Per-sample constant graph convolution: interprets `x` as
    /// `adjacency.len()` stacked blocks of `n` rows and left-multiplies
    /// block `b` by `adjacency[b]`. The adjacencies are constants (they are
    /// derived from the architecture, not learned), so only `x` receives
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure is inconsistent.
    pub fn block_graph_matmul(&mut self, x: Var, adjacency: Vec<Matrix>, n: usize) -> Result<Var> {
        let value = self.value(x).block_left_matmul(&adjacency, n)?;
        Ok(self.push(value, Op::BlockGraphMatmul(x, adjacency, n)))
    }

    /// Element-wise product with a fixed dropout `mask` (entries are `0` or
    /// `1/(1-p)`; the caller generates the mask so the tape stays
    /// deterministic).
    ///
    /// # Errors
    ///
    /// Returns a shape error when the mask shape differs from `a`.
    pub fn dropout(&mut self, a: Var, mask: Matrix) -> Result<Var> {
        let value = self.value(a).hadamard(&mask)?;
        Ok(self.push(value, Op::Dropout(a, mask)))
    }

    /// Mean over all elements of `a`, producing a `1 x 1` node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::filled(1, 1, self.value(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements of `a`, producing a `1 x 1` node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::filled(1, 1, self.value(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean squared error between `pred` and the constant `target`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Result<Var> {
        let diff = self.value(pred).sub(target)?;
        let mse = diff.map(|x| x * x).mean();
        Ok(self.push(Matrix::filled(1, 1, mse), Op::MseLoss(pred, target.clone())))
    }

    /// ListMLE listwise ranking loss (Eq. 4 of the paper).
    ///
    /// `scores` must be an `n x 1` column of model scores and `order` a
    /// permutation of `0..n` listing rows from most-dominant to
    /// least-dominant. The loss is
    /// `Σ_i [-s_{π(i)} + log Σ_{j≥i} exp(s_{π(j)})]`, computed with
    /// suffix log-sum-exp stabilisation.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::InvalidRanking`] if `order` is not a
    /// permutation of the score rows, or a shape error if `scores` is not a
    /// column vector.
    pub fn list_mle(&mut self, scores: Var, order: &[usize]) -> Result<Var> {
        let s = self.value(scores);
        if s.cols() != 1 {
            return Err(AutogradError::Shape(hwpr_tensor::ShapeError::new(
                "list_mle",
                s.shape(),
                (s.rows(), 1),
            )));
        }
        validate_permutation(order, s.rows())?;
        let loss = list_mle_forward(s.as_slice(), order);
        Ok(self.push(
            Matrix::filled(1, 1, loss),
            Op::ListMle(scores, order.to_vec()),
        ))
    }

    /// Pairwise hinge ranking loss with a margin (GATES-style).
    ///
    /// For each `(hi, lo)` pair the model should score row `hi` at least
    /// `margin` above row `lo`; violations contribute
    /// `margin - (s_hi - s_lo)` and the loss is the mean over pairs.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::InvalidRanking`] when `pairs` is empty or
    /// holds out-of-range indices, or a shape error if `scores` is not a
    /// column vector.
    pub fn pairwise_hinge(
        &mut self,
        scores: Var,
        pairs: &[(usize, usize)],
        margin: f32,
    ) -> Result<Var> {
        let s = self.value(scores);
        if s.cols() != 1 {
            return Err(AutogradError::Shape(hwpr_tensor::ShapeError::new(
                "pairwise_hinge",
                s.shape(),
                (s.rows(), 1),
            )));
        }
        if pairs.is_empty() {
            return Err(AutogradError::InvalidRanking("empty pair list".into()));
        }
        let n = s.rows();
        if let Some(&(a, b)) = pairs.iter().find(|&&(a, b)| a >= n || b >= n) {
            return Err(AutogradError::InvalidRanking(format!(
                "pair ({a}, {b}) out of range for {n} scores"
            )));
        }
        let v = s.as_slice();
        let loss: f32 = pairs
            .iter()
            .map(|&(hi, lo)| (margin - (v[hi] - v[lo])).max(0.0))
            .sum::<f32>()
            / pairs.len() as f32;
        Ok(self.push(
            Matrix::filled(1, 1, loss),
            Op::PairwiseHinge(scores, pairs.to_vec(), margin),
        ))
    }

    pub(crate) fn backprop_node(&mut self, i: usize) -> Result<()> {
        let grad = self.nodes[i]
            .grad
            .clone()
            .expect("backprop_node called on node without gradient");
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let da = grad.matmul_nt(self.value(b))?;
                let db = self.value(a).matmul_tn(&grad)?;
                self.accumulate(a, &da);
                self.accumulate(b, &db);
            }
            Op::Add(a, b) => {
                self.accumulate(a, &grad);
                self.accumulate(b, &grad);
            }
            Op::Sub(a, b) => {
                self.accumulate(a, &grad);
                let neg = grad.scale(-1.0);
                self.accumulate(b, &neg);
            }
            Op::Mul(a, b) => {
                let da = grad.hadamard(self.value(b))?;
                let db = grad.hadamard(self.value(a))?;
                self.accumulate(a, &da);
                self.accumulate(b, &db);
            }
            Op::AddBias(a, bias) => {
                self.accumulate(a, &grad);
                let db = grad.sum_rows();
                self.accumulate(bias, &db);
            }
            Op::Scale(a, s) => {
                let da = grad.scale(s);
                self.accumulate(a, &da);
            }
            Op::AddScalar(a, _) => {
                self.accumulate(a, &grad);
            }
            Op::Relu(a) => {
                let da = grad.zip_with(
                    "relu_bwd",
                    self.value(a),
                    |g, x| if x > 0.0 { g } else { 0.0 },
                )?;
                self.accumulate(a, &da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let da = grad.zip_with("tanh_bwd", y, |g, y| g * (1.0 - y * y))?;
                self.accumulate(a, &da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let da = grad.zip_with("sigmoid_bwd", y, |g, y| g * y * (1.0 - y))?;
                self.accumulate(a, &da);
            }
            Op::Exp(a) => {
                let y = &self.nodes[i].value;
                let da = grad.hadamard(y)?;
                self.accumulate(a, &da);
            }
            Op::Sqrt(a, _) => {
                let y = &self.nodes[i].value;
                let da = grad.zip_with("sqrt_bwd", y, |g, y| g * 0.5 / y.max(1e-12))?;
                self.accumulate(a, &da);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for p in parts {
                    let w = self.value(p).cols();
                    let rows = grad.rows();
                    let mut dp = Matrix::zeros(rows, w);
                    for r in 0..rows {
                        dp.row_mut(r)
                            .copy_from_slice(&grad.row(r)[offset..offset + w]);
                    }
                    self.accumulate(p, &dp);
                    offset += w;
                }
            }
            Op::SliceCols(a, start, end) => {
                let src = self.value(a);
                let mut da = Matrix::zeros(src.rows(), src.cols());
                for r in 0..grad.rows() {
                    da.row_mut(r)[start..end].copy_from_slice(grad.row(r));
                }
                self.accumulate(a, &da);
            }
            Op::GatherRows(a, indices) => {
                let src = self.value(a);
                let mut da = Matrix::zeros(src.rows(), src.cols());
                for (out_row, &src_row) in indices.iter().enumerate() {
                    for (dst, &g) in da.row_mut(src_row).iter_mut().zip(grad.row(out_row)) {
                        *dst += g;
                    }
                }
                self.accumulate(a, &da);
            }
            Op::BlockGraphMatmul(x, adjacency, n) => {
                let transposed: Vec<Matrix> = adjacency.iter().map(Matrix::transpose).collect();
                let dx = grad.block_left_matmul(&transposed, n)?;
                self.accumulate(x, &dx);
            }
            Op::Dropout(a, mask) => {
                let da = grad.hadamard(&mask)?;
                self.accumulate(a, &da);
            }
            Op::MeanAll(a) => {
                let src = self.value(a);
                let g = grad[(0, 0)] / src.len().max(1) as f32;
                let da = Matrix::filled(src.rows(), src.cols(), g);
                self.accumulate(a, &da);
            }
            Op::SumAll(a) => {
                let src = self.value(a);
                let da = Matrix::filled(src.rows(), src.cols(), grad[(0, 0)]);
                self.accumulate(a, &da);
            }
            Op::MseLoss(pred, target) => {
                let src = self.value(pred);
                let scale = grad[(0, 0)] * 2.0 / src.len().max(1) as f32;
                let da = src.zip_with("mse_bwd", &target, |p, t| scale * (p - t))?;
                self.accumulate(pred, &da);
            }
            Op::ListMle(scores, order) => {
                let s = self.value(scores).as_slice().to_vec();
                let mut ds = list_mle_backward(&s, &order);
                for d in &mut ds {
                    *d *= grad[(0, 0)];
                }
                let da = Matrix::from_vec(s.len(), 1, ds).expect("grad shape");
                self.accumulate(scores, &da);
            }
            Op::PairwiseHinge(scores, pairs, margin) => {
                let s = self.value(scores).as_slice().to_vec();
                let mut ds = vec![0.0f32; s.len()];
                let w = grad[(0, 0)] / pairs.len() as f32;
                for &(hi, lo) in &pairs {
                    if margin - (s[hi] - s[lo]) > 0.0 {
                        ds[hi] -= w;
                        ds[lo] += w;
                    }
                }
                let da = Matrix::from_vec(s.len(), 1, ds).expect("grad shape");
                self.accumulate(scores, &da);
            }
        }
        Ok(())
    }
}

fn validate_permutation(order: &[usize], n: usize) -> Result<()> {
    if order.len() != n {
        return Err(AutogradError::InvalidRanking(format!(
            "order has {} entries for {} scores",
            order.len(),
            n
        )));
    }
    let mut seen = vec![false; n];
    for &i in order {
        if i >= n || seen[i] {
            return Err(AutogradError::InvalidRanking(format!(
                "order is not a permutation (offending index {i})"
            )));
        }
        seen[i] = true;
    }
    Ok(())
}

/// Forward ListMLE loss with suffix log-sum-exp stabilisation.
fn list_mle_forward(scores: &[f32], order: &[usize]) -> f32 {
    let log_z = suffix_log_sum_exp(scores, order);
    order
        .iter()
        .enumerate()
        .map(|(i, &idx)| log_z[i] - scores[idx])
        .sum()
}

/// Gradient of the ListMLE loss with respect to each score.
fn list_mle_backward(scores: &[f32], order: &[usize]) -> Vec<f32> {
    let n = order.len();
    let log_z = suffix_log_sum_exp(scores, order);
    let mut grad = vec![0.0f32; scores.len()];
    // dL/ds_{π(k)} = -1 + Σ_{i≤k} exp(s_{π(k)} - logZ_i)
    let mut prefix = vec![0.0f32; n];
    for (k, &idx) in order.iter().enumerate() {
        let mut acc = 0.0;
        for lz in log_z.iter().take(k + 1) {
            acc += (scores[idx] - lz).exp();
        }
        prefix[k] = acc;
        grad[idx] = -1.0 + acc;
    }
    grad
}

/// `log Σ_{j≥i} exp(s_{π(j)})` for every suffix start `i`.
fn suffix_log_sum_exp(scores: &[f32], order: &[usize]) -> Vec<f32> {
    let n = order.len();
    let mut out = vec![0.0f32; n];
    // running (max, sum of exp(s - max)) maintained from the tail
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f32;
    for i in (0..n).rev() {
        let s = scores[order[i]];
        if s > max {
            sum = sum * (max - s).exp() + 1.0;
            max = s;
        } else {
            sum += (s - max).exp();
        }
        out[i] = max + sum.ln();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_difference_check;

    #[test]
    fn matmul_gradients() {
        finite_difference_check(&[(2, 3), (3, 2)], |tape, vars| {
            let y = tape.matmul(vars[0], vars[1])?;
            Ok(tape.mean_all(y))
        });
    }

    #[test]
    fn add_sub_mul_gradients() {
        finite_difference_check(&[(2, 2), (2, 2)], |tape, vars| {
            let s = tape.add(vars[0], vars[1])?;
            let d = tape.sub(s, vars[1])?;
            let m = tape.mul(d, vars[0])?;
            Ok(tape.mean_all(m))
        });
    }

    #[test]
    fn bias_and_scale_gradients() {
        finite_difference_check(&[(3, 4), (1, 4)], |tape, vars| {
            let b = tape.add_bias(vars[0], vars[1])?;
            let s = tape.scale(b, 0.5);
            let t = tape.add_scalar(s, 1.0);
            Ok(tape.mean_all(t))
        });
    }

    #[test]
    fn nonlinearity_gradients() {
        finite_difference_check(&[(2, 3)], |tape, vars| {
            let t = tape.tanh(vars[0]);
            let s = tape.sigmoid(t);
            let e = tape.exp(s);
            let q = tape.sqrt(e, 1e-6);
            Ok(tape.mean_all(q))
        });
    }

    #[test]
    fn relu_gradient_away_from_kink() {
        // offset inputs so no element sits exactly at the ReLU kink
        finite_difference_check(&[(2, 3)], |tape, vars| {
            let shifted = tape.add_scalar(vars[0], 0.37);
            let r = tape.relu(shifted);
            Ok(tape.mean_all(r))
        });
    }

    #[test]
    fn concat_and_slice_gradients() {
        finite_difference_check(&[(2, 2), (2, 3)], |tape, vars| {
            let c = tape.concat_cols(&[vars[0], vars[1]])?;
            let s = tape.slice_cols(c, 1, 4)?;
            Ok(tape.mean_all(s))
        });
    }

    #[test]
    fn gather_rows_gradients_accumulate_duplicates() {
        finite_difference_check(&[(4, 3)], |tape, vars| {
            let g = tape.gather_rows(vars[0], &[0, 2, 2, 3])?;
            Ok(tape.mean_all(g))
        });
    }

    #[test]
    fn block_graph_matmul_gradients() {
        let adj0 = Matrix::from_rows(&[&[0.5, 1.0], &[0.0, 0.5]]);
        let adj1 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        finite_difference_check(&[(4, 3)], move |tape, vars| {
            let y = tape.block_graph_matmul(vars[0], vec![adj0.clone(), adj1.clone()], 2)?;
            Ok(tape.mean_all(y))
        });
    }

    #[test]
    fn dropout_gradient_uses_mask() {
        let mask = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        finite_difference_check(&[(2, 2)], move |tape, vars| {
            let d = tape.dropout(vars[0], mask.clone())?;
            Ok(tape.mean_all(d))
        });
    }

    #[test]
    fn sum_and_mse_gradients() {
        let target = Matrix::from_rows(&[&[0.3, -0.2], &[0.1, 0.9]]);
        finite_difference_check(&[(2, 2)], move |tape, vars| {
            let l = tape.mse_loss(vars[0], &target)?;
            Ok(l)
        });
        finite_difference_check(&[(2, 2)], |tape, vars| Ok(tape.sum_all(vars[0])));
    }

    #[test]
    fn list_mle_gradients() {
        finite_difference_check(&[(5, 1)], |tape, vars| {
            tape.list_mle(vars[0], &[3, 1, 4, 0, 2])
        });
    }

    #[test]
    fn pairwise_hinge_gradients() {
        // margin large enough that all pairs are active (nonsmooth boundary avoided)
        finite_difference_check(&[(4, 1)], |tape, vars| {
            tape.pairwise_hinge(vars[0], &[(0, 1), (1, 2), (0, 3)], 10.0)
        });
    }

    #[test]
    fn list_mle_perfect_order_is_low() {
        // scores already sorted best-first: loss should be lower than reversed
        let mut tape = Tape::new();
        let good = tape.leaf(Matrix::col_vector(&[3.0, 2.0, 1.0, 0.0]));
        let l_good = tape.list_mle(good, &[0, 1, 2, 3]).unwrap();
        let l_bad = tape.list_mle(good, &[3, 2, 1, 0]).unwrap();
        assert!(tape.value(l_good)[(0, 0)] < tape.value(l_bad)[(0, 0)]);
    }

    #[test]
    fn list_mle_rejects_bad_permutation() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[1.0, 2.0]));
        assert!(tape.list_mle(s, &[0, 0]).is_err());
        assert!(tape.list_mle(s, &[0]).is_err());
        assert!(tape.list_mle(s, &[0, 2]).is_err());
    }

    #[test]
    fn pairwise_hinge_rejects_bad_pairs() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[1.0, 2.0]));
        assert!(tape.pairwise_hinge(s, &[], 0.1).is_err());
        assert!(tape.pairwise_hinge(s, &[(0, 5)], 0.1).is_err());
    }

    #[test]
    fn hinge_zero_when_margin_satisfied() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[5.0, 0.0]));
        let l = tape.pairwise_hinge(s, &[(0, 1)], 0.1).unwrap();
        assert_eq!(tape.value(l)[(0, 0)], 0.0);
    }

    #[test]
    fn suffix_lse_matches_naive() {
        let scores = [0.3f32, -1.2, 2.5, 0.0];
        let order = [2usize, 0, 3, 1];
        let fast = suffix_log_sum_exp(&scores, &order);
        for i in 0..order.len() {
            let naive: f32 = order[i..].iter().map(|&j| scores[j].exp()).sum();
            assert!((fast[i] - naive.ln()).abs() < 1e-5, "suffix {i}");
        }
    }

    #[test]
    fn gradients_accumulate_across_reuse() {
        // y = x + x means dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0));
        let y = tape.add(x, x).unwrap();
        tape.backward(y).unwrap();
        assert_eq!(tape.grad(x).unwrap()[(0, 0)], 2.0);
    }
}
