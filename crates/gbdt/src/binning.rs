//! Per-feature quantile binning for histogram split finding.

/// Quantile-based bin edges for every feature of a training set.
///
/// Candidate split thresholds are taken from these edges, so split search
/// is `O(bins)` per feature per node instead of `O(samples)`.
#[derive(Debug, Clone)]
pub struct FeatureBins {
    /// `edges[f]` holds the strictly increasing inner edges for feature `f`.
    edges: Vec<Vec<f32>>,
}

impl FeatureBins {
    /// Builds up to `max_bins` quantile bins per feature from `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `max_bins < 2`.
    pub fn from_rows(rows: &[Vec<f32>], max_bins: usize) -> Self {
        assert!(!rows.is_empty(), "binning requires at least one row");
        assert!(max_bins >= 2, "need at least two bins");
        let dim = rows[0].len();
        let mut edges = Vec::with_capacity(dim);
        for f in 0..dim {
            let mut vals: Vec<f32> = rows.iter().map(|r| r[f]).collect();
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            let mut feature_edges = Vec::new();
            if vals.len() > 1 {
                let step = (vals.len() as f32 / max_bins as f32).max(1.0);
                let mut pos = step;
                while (pos as usize) < vals.len() {
                    let lo = vals[pos as usize - 1];
                    let hi = vals[pos as usize];
                    let edge = (lo + hi) * 0.5;
                    if feature_edges.last() != Some(&edge) {
                        feature_edges.push(edge);
                    }
                    pos += step;
                }
                // make sure every adjacent distinct pair can be separated when
                // there are few distinct values
                if feature_edges.is_empty() {
                    feature_edges.push((vals[0] + vals[1]) * 0.5);
                }
            }
            edges.push(feature_edges);
        }
        Self { edges }
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.edges.len()
    }

    /// The candidate thresholds for feature `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn thresholds(&self, f: usize) -> &[f32] {
        &self.edges[f]
    }

    /// The bin index of `value` under feature `f` (values `<= edge` go
    /// left, so bin `i` covers `(edge[i-1], edge[i]]`-style ranges).
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn bin_of(&self, f: usize, value: f32) -> usize {
        self.edges[f].partition_point(|&e| e < value)
    }

    /// Number of bins for feature `f` (edges + 1).
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn bin_count(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_feature_has_no_edges() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let bins = FeatureBins::from_rows(&rows, 8);
        assert!(bins.thresholds(0).is_empty());
        assert_eq!(bins.bin_count(0), 1);
    }

    #[test]
    fn binary_feature_gets_one_edge() {
        let rows = vec![vec![0.0], vec![1.0], vec![0.0], vec![1.0]];
        let bins = FeatureBins::from_rows(&rows, 8);
        assert_eq!(bins.thresholds(0), &[0.5]);
        assert_eq!(bins.bin_of(0, 0.0), 0);
        assert_eq!(bins.bin_of(0, 1.0), 1);
    }

    #[test]
    fn edges_are_strictly_increasing() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![(i % 13) as f32]).collect();
        let bins = FeatureBins::from_rows(&rows, 8);
        let e = bins.thresholds(0);
        assert!(!e.is_empty() && e.len() <= 13);
        for w in e.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bin_of_is_monotone() {
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let bins = FeatureBins::from_rows(&rows, 8);
        let mut prev = 0;
        for i in 0..50 {
            let b = bins.bin_of(0, i as f32);
            assert!(b >= prev);
            prev = b;
        }
        assert!(prev < bins.bin_count(0));
    }

    #[test]
    fn respects_max_bins() {
        let rows: Vec<Vec<f32>> = (0..1000).map(|i| vec![i as f32]).collect();
        let bins = FeatureBins::from_rows(&rows, 16);
        assert!(bins.bin_count(0) <= 17);
        assert!(bins.bin_count(0) >= 8);
    }
}
