//! The HW-PR-NAS surrogate model (§III-B, Fig. 3).

use crate::config::ModelConfig;
use crate::data::EncodingCache;
use crate::encoders::{EncoderChoice, EncoderSet};
use crate::Result;
use hwpr_autograd::{Tape, Var};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, Dataset};
use hwpr_nn::layers::{LayerRng, Mlp, MlpConfig};
use hwpr_nn::{Binder, Params};
use rand_chacha::rand_core::SeedableRng;

/// Maximum batch size used during inference (bounds tape memory).
pub(crate) const INFER_BATCH: usize = 256;

/// The trained HW-PR-NAS surrogate.
///
/// Built by [`HwPrNas::fit`] (single platform) or [`HwPrNas::fit_multi`]
/// (multi-platform latency head bank); scoring follows Fig. 3: a GCN+AF
/// accuracy branch and an LSTM+AF latency branch whose two predictions a
/// dense fusion layer turns into one Pareto score.
#[derive(Debug)]
pub struct HwPrNas {
    pub(crate) params: Params,
    pub(crate) accuracy_encoder: EncoderSet,
    pub(crate) latency_encoder: EncoderSet,
    pub(crate) accuracy_head: Mlp,
    pub(crate) latency_heads: Vec<Mlp>,
    pub(crate) platforms: Vec<Platform>,
    pub(crate) fusion: Mlp,
    /// Index of the first fusion parameter (everything below is frozen
    /// during the fusion fine-tune phase).
    pub(crate) fusion_param_start: usize,
    pub(crate) cache: EncodingCache,
    pub(crate) max_latency: Vec<f64>,
    pub(crate) dataset: Dataset,
    pub(crate) model_config: ModelConfig,
}

/// The raw branch outputs for one forward pass (still on the tape).
pub(crate) struct BranchOutputs {
    /// Normalised accuracy prediction, `[batch, 1]`.
    pub accuracy: Var,
    /// Normalised latency prediction, `[batch, 1]`.
    pub latency: Var,
    /// Fused Pareto score, `[batch, 1]`.
    pub score: Var,
}

impl HwPrNas {
    /// Builds an untrained model (used by the trainer).
    pub(crate) fn build(
        config: &ModelConfig,
        cache: EncodingCache,
        train_archs: &[Architecture],
        platforms: Vec<Platform>,
        max_latency: Vec<f64>,
        dataset: Dataset,
    ) -> Result<Self> {
        assert_eq!(platforms.len(), max_latency.len());
        let model_config = config.clone();
        let mut params = Params::new();
        let accuracy_encoder = EncoderSet::new(
            &mut params,
            "acc_enc",
            config,
            EncoderChoice::GCN_AF,
            &cache,
            train_archs,
        )?;
        let latency_encoder = EncoderSet::new(
            &mut params,
            "lat_enc",
            config,
            EncoderChoice::LSTM_AF,
            &cache,
            train_archs,
        )?;
        let accuracy_head = Mlp::new(
            &mut params,
            "acc_head",
            &MlpConfig {
                input_dim: accuracy_encoder.output_dim(),
                hidden: config.mlp_hidden.clone(),
                output_dim: 1,
                activation: Default::default(),
                dropout: config.dropout,
                seed: config.seed.wrapping_add(100),
            },
        )?;
        let latency_heads = platforms
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Mlp::new(
                    &mut params,
                    &format!("lat_head.{}", p.name()),
                    &MlpConfig {
                        input_dim: latency_encoder.output_dim(),
                        hidden: config.mlp_hidden.clone(),
                        output_dim: 1,
                        activation: Default::default(),
                        dropout: config.dropout,
                        seed: config.seed.wrapping_add(200 + i as u64),
                    },
                )
            })
            .collect::<hwpr_nn::Result<Vec<_>>>()?;
        let fusion_param_start = params.len();
        // the fusion head combines the two branch predictions into one
        // Pareto score. A purely linear layer would make the score a
        // weighted-sum scalarisation whose maximiser is a single corner of
        // the front; a small nonlinear head lets the ranking loss flatten
        // the score along the front (equal scores within a Pareto rank).
        let fusion = Mlp::new(
            &mut params,
            "fusion",
            &MlpConfig {
                input_dim: 2,
                hidden: vec![16, 16],
                output_dim: 1,
                activation: Default::default(),
                dropout: 0.0,
                seed: config.seed.wrapping_add(300),
            },
        )?;
        Ok(Self {
            params,
            accuracy_encoder,
            latency_encoder,
            accuracy_head,
            latency_heads,
            platforms,
            fusion,
            fusion_param_start,
            cache,
            max_latency,
            dataset,
            model_config,
        })
    }

    /// The platforms this model carries latency heads for.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// The image dataset the model was trained for.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    pub(crate) fn platform_slot(&self, platform: Platform) -> Result<usize> {
        self.platforms
            .iter()
            .position(|&p| p == platform)
            .ok_or_else(|| {
                crate::CoreError::Data(format!(
                    "model has no latency head for {platform}; available: {:?}",
                    self.platforms
                ))
            })
    }

    /// One forward pass over a batch (used by training and inference).
    pub(crate) fn forward(
        &self,
        binder: &mut Binder<'_, '_>,
        archs: &[Architecture],
        platform_slot: usize,
        rng: &mut LayerRng,
    ) -> Result<BranchOutputs> {
        let acc_repr = self
            .accuracy_encoder
            .forward(binder, &self.cache, archs, rng)?;
        let accuracy = self.accuracy_head.forward(binder, acc_repr, rng)?;
        let lat_repr = self
            .latency_encoder
            .forward(binder, &self.cache, archs, rng)?;
        let latency = self.latency_heads[platform_slot].forward(binder, lat_repr, rng)?;
        let both = binder
            .tape()
            .concat_cols(&[accuracy, latency])
            .map_err(hwpr_nn::NnError::from)?;
        let score = self.fusion.forward(binder, both, rng)?;
        Ok(BranchOutputs {
            accuracy,
            latency,
            score,
        })
    }

    /// Pareto scores of `archs` on `platform` (higher = closer to the
    /// predicted Pareto front). This is the single call the MOEA makes.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_scores(&self, archs: &[Architecture], platform: Platform) -> Result<Vec<f64>> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(archs.len());
        // one tape for all chunks: reset() recycles buffers between passes
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(INFER_BATCH) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            out.extend(
                tape.value(outputs.score)
                    .as_slice()
                    .iter()
                    .map(|&v| v as f64),
            );
        }
        Ok(out)
    }

    /// Scores and predicted minimisation objectives `[error %, latency
    /// ms]` from a *single* forward pass — everything Fig. 3 produces in
    /// one surrogate call.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_full(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut scores = Vec::with_capacity(archs.len());
        let mut objectives = Vec::with_capacity(archs.len());
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(INFER_BATCH) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            scores.extend(
                tape.value(outputs.score)
                    .as_slice()
                    .iter()
                    .map(|&v| v as f64),
            );
            let acc = tape.value(outputs.accuracy);
            let lat = tape.value(outputs.latency);
            for (&a, &l) in acc.as_slice().iter().zip(lat.as_slice()) {
                objectives.push(vec![
                    (100.0 - a as f64 * 100.0).clamp(0.0, 100.0),
                    (l as f64 * self.max_latency[slot]).max(0.0),
                ]);
            }
        }
        Ok((scores, objectives))
    }

    /// [`Self::predict_full`] with the batch split across scoped worker
    /// threads (the MOEA's per-generation hot path).
    ///
    /// The input is cut into `threads` contiguous chunks, each worker runs
    /// the serial predictor on its chunk, and the results are spliced back
    /// in input order. Every row of a forward pass is independent and
    /// dropout is inert at inference, so the result is bit-identical to
    /// the serial path for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform` or any
    /// worker's prediction fails.
    pub fn predict_full_parallel(
        &self,
        archs: &[Architecture],
        platform: Platform,
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        // fail fast on unknown platforms before spawning anything
        self.platform_slot(platform)?;
        let threads = threads.max(1).min(archs.len().max(1));
        if threads == 1 {
            return self.predict_full(archs, platform);
        }
        let chunk = archs.len().div_ceil(threads);
        type ChunkResult = Result<(Vec<f64>, Vec<Vec<f64>>)>;
        let results: Vec<ChunkResult> = crossbeam::scope(|s| {
            let handles: Vec<_> = archs
                .chunks(chunk)
                .map(|c| s.spawn(move |_| self.predict_full(c, platform)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prediction worker panicked"))
                .collect()
        })
        .expect("prediction scope panicked");
        let mut scores = Vec::with_capacity(archs.len());
        let mut objectives = Vec::with_capacity(archs.len());
        for r in results {
            let (s, o) = r?;
            scores.extend(s);
            objectives.extend(o);
        }
        Ok((scores, objectives))
    }

    /// Predicted `(accuracy %, latency ms)` pairs — the branch outputs
    /// denormalised. Exposed for the predictor-quality studies.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_objectives(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<Vec<(f64, f64)>> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(archs.len());
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(INFER_BATCH) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            let acc = tape.value(outputs.accuracy);
            let lat = tape.value(outputs.latency);
            for (&a, &l) in acc.as_slice().iter().zip(lat.as_slice()) {
                out.push((
                    (a as f64 * 100.0).clamp(0.0, 100.0),
                    (l as f64 * self.max_latency[slot]).max(0.0),
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::data::SurrogateDataset;
    use hwpr_hwmodel::{SimBench, SimBenchConfig};
    use hwpr_nasbench::SearchSpaceId;

    fn tiny_dataset() -> SurrogateDataset {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(48),
            seed: 3,
        });
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap()
    }

    #[test]
    fn fit_and_predict_shapes() {
        let data = tiny_dataset();
        let (model, report) =
            HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        assert!(report.epochs_run >= 1);
        assert!(model.parameter_count() > 0);
        assert_eq!(model.platforms(), &[Platform::EdgeGpu]);
        assert_eq!(model.dataset(), Dataset::Cifar10);
        let archs: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
        let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(scores.len(), archs.len());
        assert!(scores.iter().all(|s| s.is_finite()));
        let objs = model.predict_objectives(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(objs.len(), archs.len());
        for (a, l) in objs {
            assert!((0.0..=100.0).contains(&a));
            assert!(l >= 0.0);
        }
    }

    #[test]
    fn unknown_platform_is_an_error() {
        let data = tiny_dataset();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let archs = vec![data.samples()[0].arch.clone()];
        assert!(model.predict_scores(&archs, Platform::Eyeriss).is_err());
    }

    #[test]
    fn deterministic_inference() {
        let data = tiny_dataset();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let archs: Vec<Architecture> = data
            .samples()
            .iter()
            .take(5)
            .map(|s| s.arch.clone())
            .collect();
        let a = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        let b = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(a, b);
    }
}
