//! The gradient tape: node arena, handles and the backward pass.

use crate::error::AutogradError;
use crate::Result;
use hwpr_tensor::Matrix;

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index: copying it is free and it is only meaningful for
/// the tape that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Operation recorded on the tape; parents are stored as [`Var`] handles.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input node (parameter or data); gradients accumulate here.
    Leaf,
    /// `a @ b`.
    MatMul(Var, Var),
    /// `a + b` (same shape).
    Add(Var, Var),
    /// `a - b` (same shape).
    Sub(Var, Var),
    /// Element-wise `a * b` (same shape).
    Mul(Var, Var),
    /// `a + broadcast_rows(bias)` where `bias` is `1 x cols`.
    AddBias(Var, Var),
    /// `a * scalar`.
    Scale(Var, f32),
    /// `a + scalar` element-wise (scalar kept for Debug output).
    AddScalar(Var, #[allow(dead_code)] f32),
    /// `max(a, 0)`.
    Relu(Var),
    /// `tanh(a)`.
    Tanh(Var),
    /// Logistic sigmoid of `a`.
    Sigmoid(Var),
    /// `exp(a)`.
    Exp(Var),
    /// `sqrt(a + eps)` (epsilon kept for Debug output).
    Sqrt(Var, #[allow(dead_code)] f32),
    /// Horizontal concatenation of the parents.
    ConcatCols(Vec<Var>),
    /// Columns `start..end` of the parent.
    SliceCols(Var, usize, usize),
    /// Rows gathered by index (embedding lookup); duplicates allowed.
    GatherRows(Var, Vec<usize>),
    /// Per-sample constant-adjacency product: block `b` of the parent
    /// (shape `n x f`) is left-multiplied by `adjacency[b]`.
    BlockGraphMatmul(Var, Vec<Matrix>, usize),
    /// Element-wise product with a fixed dropout mask.
    Dropout(Var, Matrix),
    /// Mean over all elements, producing `1 x 1`.
    MeanAll(Var),
    /// Sum over all elements, producing `1 x 1`.
    SumAll(Var),
    /// Mean squared error against a constant target, producing `1 x 1`.
    MseLoss(Var, Matrix),
    /// ListMLE listwise ranking loss over an `n x 1` score column given a
    /// best-first permutation of row indices. Produces `1 x 1`.
    ListMle(Var, Vec<usize>),
    /// Pairwise hinge ranking loss: for each `(hi, lo)` pair the score of
    /// `hi` should exceed the score of `lo` by at least the margin.
    PairwiseHinge(Var, Vec<(usize, usize)>, f32),
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) grad: Option<Matrix>,
    pub(crate) op: Op,
}

/// Records a computation graph and runs reverse-mode differentiation.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts an input node holding `value` and returns its handle.
    ///
    /// Leaves are where gradients are read back after [`Tape::backward`];
    /// both trainable parameters and constant inputs are leaves (gradients
    /// of constants are simply ignored by the caller).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value held by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated into `v`, if [`Tape::backward`] has run and
    /// `v` participated in the loss.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Runs the backward pass from `loss`, accumulating gradients into every
    /// node that contributed to it.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::NonScalarLoss`] if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) -> Result<()> {
        let shape = self.nodes[loss.0].value.shape();
        if shape != (1, 1) {
            return Err(AutogradError::NonScalarLoss { shape });
        }
        self.nodes[loss.0].grad = Some(Matrix::ones(1, 1));
        for i in (0..=loss.0).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            self.backprop_node(i)?;
        }
        Ok(())
    }

    pub(crate) fn accumulate(&mut self, v: Var, delta: &Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(delta),
            slot @ None => *slot = Some(delta.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let mut t = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = t.leaf(m.clone());
        assert_eq!(t.value(v), &m);
        assert!(t.grad(v).is_none());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::zeros(2, 2));
        let err = t.backward(v).unwrap_err();
        assert_eq!(err, AutogradError::NonScalarLoss { shape: (2, 2) });
    }

    #[test]
    fn backward_on_scalar_leaf_sets_unit_grad() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::ones(1, 1));
        t.backward(v).unwrap();
        assert_eq!(t.grad(v).unwrap(), &Matrix::ones(1, 1));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let t = Tape::with_capacity(64);
        assert!(t.is_empty());
    }
}
