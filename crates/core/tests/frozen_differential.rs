//! Differential fixture: the frozen tape-free inference engine must be
//! bit-identical to the recording-tape reference path for every public
//! predict method, every latency-head platform, and uneven final chunks.
//!
//! (Per-encoder-type differentials — AF / LSTM / GCN and combinations —
//! live as unit tests in `hwpr_core::frozen`; here the full compiled
//! model is exercised end to end.)

use hwpr_core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn bench(n: usize) -> SimBench {
    SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed: 3,
    })
}

/// A scoring population larger than the training set, so batch widths
/// 64 and 129 exercise uneven final chunks and Kendall τ has enough
/// pairs to be meaningful.
fn eval_archs(n: usize) -> Vec<Architecture> {
    bench(n)
        .entries()
        .iter()
        .map(|e| e.arch().clone())
        .collect()
}

fn tau(a: &[f64], b: &[f64]) -> f64 {
    let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    hwpr_metrics::kendall_tau(&af, &bf).unwrap()
}

fn trained_single() -> (HwPrNas, Vec<Architecture>) {
    let b = bench(48);
    let data = SurrogateDataset::from_simbench(&b, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    let archs = data.samples().iter().map(|s| s.arch.clone()).collect();
    (model, archs)
}

fn trained_multi() -> (HwPrNas, Vec<Architecture>) {
    let b = bench(40);
    let platforms = [Platform::EdgeGpu, Platform::Pixel3];
    let (model, _) = HwPrNas::fit_multi(
        b.entries(),
        Dataset::Cifar10,
        &platforms,
        &ModelConfig::tiny(),
        &TrainConfig::tiny(),
    )
    .unwrap();
    let archs = b.entries().iter().map(|e| e.arch().clone()).collect();
    (model, archs)
}

fn assert_bit_identical(model: &HwPrNas, archs: &[Architecture], platform: Platform) {
    let frozen_scores = model.predict_scores(archs, platform).unwrap();
    let tape_scores = model.predict_scores_tape(archs, platform).unwrap();
    assert_eq!(frozen_scores, tape_scores, "scores diverge on {platform}");

    let (ff_scores, ff_objs) = model.predict_full(archs, platform).unwrap();
    let (tf_scores, tf_objs) = model.predict_full_tape(archs, platform).unwrap();
    assert_eq!(ff_scores, tf_scores, "full scores diverge on {platform}");
    assert_eq!(ff_objs, tf_objs, "full objectives diverge on {platform}");

    let frozen_objs = model.predict_objectives(archs, platform).unwrap();
    let tape_objs = model.predict_objectives_tape(archs, platform).unwrap();
    assert_eq!(frozen_objs, tape_objs, "objectives diverge on {platform}");
}

#[test]
fn frozen_engine_is_bit_identical_to_tape() {
    let (model, archs) = trained_single();
    assert_bit_identical(&model, &archs, Platform::EdgeGpu);
}

#[test]
fn frozen_engine_matches_tape_on_every_platform() {
    let (model, archs) = trained_multi();
    for &platform in model.platforms() {
        assert_bit_identical(&model, &archs, platform);
    }
}

#[test]
fn uneven_final_chunks_are_bit_identical() {
    let (model, archs) = trained_single();
    let tape_scores = model
        .predict_scores_tape(&archs, Platform::EdgeGpu)
        .unwrap();
    // 48 archs in chunks of 7 leaves a final chunk of 6; batch 5 leaves 3
    for batch in [7usize, 5, 48, 64] {
        let frozen = model.freeze_with_batch(batch);
        assert_eq!(frozen.batch(), batch);
        let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(scores, tape_scores, "chunk size {batch} diverges");
    }
}

#[test]
fn parallel_path_is_bit_identical_and_pack_free() {
    let (model, archs) = trained_single();
    let serial = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    for threads in [2usize, 3, 8] {
        let parallel = model
            .predict_full_parallel(&archs, Platform::EdgeGpu, threads)
            .unwrap();
        assert_eq!(parallel, serial, "{threads} threads diverge from serial");
    }
}

#[test]
fn batched_engine_matches_serial_bit_identically() {
    let (model, _) = trained_single();
    let archs = eval_archs(160);
    model.freeze_with(1, Precision::F32);
    let serial = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    for batch in [7usize, 64, 129] {
        model.freeze_with(batch, Precision::F32);
        let batched = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(batched, serial, "batch width {batch} diverges from serial");
    }
}

#[test]
fn reduced_precision_preserves_rank_on_uneven_batches() {
    let (model, _) = trained_single();
    let archs = eval_archs(160);
    model.freeze_with(64, Precision::F32);
    let base = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
    for precision in [Precision::F16, Precision::Int8] {
        for batch in [1usize, 7, 64, 129] {
            model.freeze_with(batch, precision);
            let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
            let t = tau(&base, &scores);
            assert!(
                t >= 0.99,
                "{} batch {batch}: Kendall tau {t:.4} < 0.99",
                precision.label()
            );
        }
    }
}

#[test]
fn quantized_rank_is_preserved_on_every_platform_head() {
    let (model, _) = trained_multi();
    let archs = eval_archs(160);
    for &platform in model.platforms() {
        model.freeze_with(64, Precision::F32);
        let base = model.predict_scores(&archs, platform).unwrap();
        for precision in [Precision::F16, Precision::Int8] {
            model.freeze_with(64, precision);
            let scores = model.predict_scores(&archs, platform).unwrap();
            let t = tau(&base, &scores);
            assert!(
                t >= 0.99,
                "{platform} {}: Kendall tau {t:.4} < 0.99",
                precision.label()
            );
        }
    }
}

/// Shared fixture for the proptest below only — proptest cases run
/// sequentially inside one `#[test]`, so reinstalling the frozen engine
/// per case never races with the other tests (which train their own
/// models).
fn proptest_fixture() -> &'static (HwPrNas, Vec<Architecture>, Vec<f64>) {
    static FIX: OnceLock<(HwPrNas, Vec<Architecture>, Vec<f64>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let (model, archs) = trained_single();
        let tape = model
            .predict_scores_tape(&archs, Platform::EdgeGpu)
            .unwrap();
        (model, archs, tape)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Scores are per-architecture, so any prefix scored at any batch
    // width must reproduce the tape reference bit for bit (the tape is
    // itself bit-identical to the serial frozen path).
    #[test]
    fn any_batch_width_is_bit_identical_to_the_tape(
        batch in 1usize..=160,
        len in 1usize..=48,
    ) {
        let (model, archs, tape) = proptest_fixture();
        model.freeze_with(batch, Precision::F32);
        let scores = model
            .predict_scores(&archs[..len], Platform::EdgeGpu)
            .unwrap();
        prop_assert_eq!(&scores[..], &tape[..len]);
    }
}

#[test]
fn unknown_platform_still_fails_fast() {
    let (model, archs) = trained_single();
    assert!(model.predict_scores(&archs, Platform::Eyeriss).is_err());
    assert!(model
        .predict_full_parallel(&archs, Platform::Eyeriss, 4)
        .is_err());
}
