//! Trace-level views over a run record: Chrome Trace Event export,
//! a self-time-attributed span tree, and folded flamegraph stacks.
//!
//! The event stream stores spans flat (start/end pairs with `parent`
//! ids); this module reassembles them into the causal tree and renders
//! it three ways:
//!
//! - [`chrome_trace`] — Chrome Trace Event JSON, openable in Perfetto or
//!   `chrome://tracing`, with one lane per recorded thread id;
//! - [`span_tree`] — an indented plain-text tree aggregating spans by
//!   path, attributing **self time** (span duration minus the duration of
//!   its direct children) versus child time;
//! - [`folded_stacks`] — `root;child;leaf <self µs>` lines, the input
//!   format of standard flamegraph tooling (`flamegraph.pl`, inferno).
//!
//! [`stats`] reports connectivity: a healthy capture of one process has
//! exactly one root span per top-level operation and **zero orphans**
//! (spans whose recorded parent never appears in the capture — the
//! signature of a worker thread that failed to propagate its
//! [`crate::SpanContext`]).
//!
//! Self time is wall-clock per span: when children run concurrently on
//! worker threads (e.g. `infer.worker` fan-outs), their summed duration
//! can exceed the parent's wall time, in which case the parent's self
//! time clamps to zero — the tree shows where time is spent, the Chrome
//! view shows how it overlaps.

use crate::event::Event;
use crate::report::{fmt_us, table};
use serde::Value;
use std::collections::BTreeMap;

/// One reassembled span occurrence.
#[derive(Debug, Clone)]
struct SpanRec {
    id: u64,
    parent: u64,
    name: String,
    label: Option<String>,
    tid: u64,
    start_us: u64,
    dur_us: u64,
}

impl SpanRec {
    /// Display name: `name[label]` for labeled spans.
    fn shown(&self) -> String {
        match &self.label {
            Some(label) => format!("{}[{}]", self.name, label),
            None => self.name.clone(),
        }
    }
}

/// Pairs start/end events into span records. Spans still open at capture
/// end (an end event never arrived) are synthesised from their start with
/// a duration running to the last event timestamp, so a killed run still
/// renders.
fn collect_spans(events: &[Event]) -> Vec<SpanRec> {
    let t_max = events.iter().map(Event::t_us).max().unwrap_or(0);
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();
    for event in events {
        match event {
            Event::SpanStart {
                id,
                parent,
                name,
                label,
                tid,
                t_us,
            } => {
                open.insert(*id, spans.len());
                spans.push(SpanRec {
                    id: *id,
                    parent: *parent,
                    name: name.clone(),
                    label: label.clone(),
                    tid: *tid,
                    start_us: *t_us,
                    // provisional: refined by the end event, else runs to
                    // the end of the capture
                    dur_us: t_max.saturating_sub(*t_us),
                });
            }
            Event::SpanEnd {
                id,
                parent,
                name,
                label,
                tid,
                t_us,
                dur_us,
            } => {
                if let Some(i) = open.remove(id) {
                    spans[i].dur_us = *dur_us;
                } else {
                    // end without a start (capture began mid-span):
                    // reconstruct the start from the monotonic duration
                    spans.push(SpanRec {
                        id: *id,
                        parent: *parent,
                        name: name.clone(),
                        label: label.clone(),
                        tid: *tid,
                        start_us: t_us.saturating_sub(*dur_us),
                        dur_us: *dur_us,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

/// The run's trace id as recorded by the `trace.meta` record, if any.
fn recorded_trace_id(events: &[Event]) -> Option<String> {
    events.iter().find_map(|e| match e {
        Event::Record { name, fields, .. } if name == "trace.meta" => {
            fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("trace_id", Value::String(s)) => Some(s.clone()),
                _ => None,
            })
        }
        _ => None,
    })
}

/// Trace connectivity statistics for a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total span occurrences (open spans count too).
    pub spans: usize,
    /// Spans with parent id 0 — intentional tree roots.
    pub roots: usize,
    /// Spans whose non-zero parent id appears nowhere in the capture:
    /// broken cross-thread propagation.
    pub orphans: usize,
    /// Distinct thread lanes that emitted spans.
    pub threads: usize,
}

/// Computes [`TraceStats`] for a capture.
pub fn stats(events: &[Event]) -> TraceStats {
    let spans = collect_spans(events);
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    TraceStats {
        spans: spans.len(),
        roots: spans.iter().filter(|s| s.parent == 0).count(),
        orphans: spans
            .iter()
            .filter(|s| s.parent != 0 && !ids.contains(&s.parent))
            .count(),
        threads: tids.len(),
    }
}

/// Renders the capture as Chrome Trace Event JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto and
/// `chrome://tracing`. Spans become complete (`"ph":"X"`) events laid out
/// in one lane per recorded thread id; counters and gauges become counter
/// tracks; warnings become global instant events.
pub fn chrome_trace(events: &[Event]) -> String {
    let spans = collect_spans(events);
    let mut trace_events: Vec<Value> = Vec::new();
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };

    // one metadata row per lane so Perfetto names the tracks
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        let lane = if tid <= 1 {
            // lane 1 is the first thread to emit (the main thread in
            // practice); lane 0 only appears in pre-tracing captures
            "main".to_string()
        } else {
            format!("worker-{tid}")
        };
        trace_events.push(obj(vec![
            ("name", Value::String("thread_name".into())),
            ("ph", Value::String("M".into())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(tid)),
            ("args", obj(vec![("name", Value::String(lane))])),
        ]));
    }

    for span in &spans {
        let mut args = vec![
            ("span_id", Value::UInt(span.id)),
            ("parent", Value::UInt(span.parent)),
        ];
        if let Some(label) = &span.label {
            args.push(("label", Value::String(label.clone())));
        }
        trace_events.push(obj(vec![
            ("name", Value::String(span.shown())),
            ("cat", Value::String("span".into())),
            ("ph", Value::String("X".into())),
            ("ts", Value::UInt(span.start_us)),
            ("dur", Value::UInt(span.dur_us)),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(span.tid)),
            ("args", obj(args)),
        ]));
    }

    for event in events {
        match event {
            Event::Counter { name, value, t_us } => {
                trace_events.push(obj(vec![
                    ("name", Value::String(name.clone())),
                    ("ph", Value::String("C".into())),
                    ("ts", Value::UInt(*t_us)),
                    ("pid", Value::UInt(1)),
                    ("args", obj(vec![("value", Value::UInt(*value))])),
                ]));
            }
            Event::Gauge { name, value, t_us } => {
                trace_events.push(obj(vec![
                    ("name", Value::String(name.clone())),
                    ("ph", Value::String("C".into())),
                    ("ts", Value::UInt(*t_us)),
                    ("pid", Value::UInt(1)),
                    ("args", obj(vec![("value", Value::Float(*value))])),
                ]));
            }
            Event::Warn { message, t_us } => {
                trace_events.push(obj(vec![
                    ("name", Value::String("warn".into())),
                    ("ph", Value::String("i".into())),
                    ("s", Value::String("g".into())),
                    ("ts", Value::UInt(*t_us)),
                    ("pid", Value::UInt(1)),
                    (
                        "args",
                        obj(vec![("message", Value::String(message.clone()))]),
                    ),
                ]));
            }
            _ => {}
        }
    }

    let mut top = vec![
        ("displayTimeUnit", Value::String("ms".into())),
        ("traceEvents", Value::Array(trace_events)),
    ];
    if let Some(trace_id) = recorded_trace_id(events) {
        top.push((
            "otherData",
            obj(vec![("trace_id", Value::String(trace_id))]),
        ));
    }
    serde_json::to_string(&obj(top)).expect("trace serialisation is infallible")
}

/// Aggregated node of the rendered span tree: spans grouped by
/// (path, name, label).
#[derive(Debug, Default)]
struct TreeNode {
    count: u64,
    total_us: u64,
    self_us: u64,
    children: BTreeMap<String, TreeNode>,
}

/// Self time of one span occurrence: wall duration minus direct
/// children's wall duration, clamped at zero for concurrent fan-outs.
fn self_us(span: &SpanRec, child_total: u64) -> u64 {
    span.dur_us.saturating_sub(child_total)
}

/// Builds the aggregated tree; orphan spans (recorded parent missing from
/// the capture) are grouped under a synthetic `(orphan)` root so broken
/// propagation is loud, not invisible.
fn build_tree(spans: &[SpanRec]) -> TreeNode {
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children_of: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut top: Vec<(String, usize)> = Vec::new(); // (group key, span idx)
    for (i, span) in spans.iter().enumerate() {
        if span.parent != 0 && ids.contains(&span.parent) {
            children_of.entry(span.parent).or_default().push(i);
        } else if span.parent == 0 {
            top.push((span.shown(), i));
        } else {
            top.push((format!("(orphan) {}", span.shown()), i));
        }
    }

    fn insert(
        node: &mut TreeNode,
        key: String,
        idx: usize,
        spans: &[SpanRec],
        children_of: &BTreeMap<u64, Vec<usize>>,
    ) {
        let span = &spans[idx];
        let child_idxs = children_of.get(&span.id);
        let child_total: u64 = child_idxs
            .map(|c| c.iter().map(|&i| spans[i].dur_us).sum())
            .unwrap_or(0);
        let entry = node.children.entry(key).or_default();
        entry.count += 1;
        entry.total_us += span.dur_us;
        entry.self_us += self_us(span, child_total);
        if let Some(child_idxs) = child_idxs {
            for &child in child_idxs {
                insert(entry, spans[child].shown(), child, spans, children_of);
            }
        }
    }

    let mut root = TreeNode::default();
    for (key, idx) in top {
        insert(&mut root, key, idx, spans, &children_of);
    }
    root
}

/// Renders the capture as an indented span tree with per-path counts and
/// total/self-time attribution — a dependency-free flamegraph substitute.
pub fn span_tree(events: &[Event]) -> String {
    let spans = collect_spans(events);
    let st = stats(events);
    let mut out = String::new();
    if let Some(trace_id) = recorded_trace_id(events) {
        out.push_str(&format!("trace {trace_id}\n"));
    }
    out.push_str(&format!(
        "spans: {} total, {} roots, {} orphans, {} thread lanes\n",
        st.spans, st.roots, st.orphans, st.threads
    ));
    if spans.is_empty() {
        return out;
    }

    let tree = build_tree(&spans);
    let mut rows: Vec<Vec<String>> = Vec::new();
    fn render(node: &TreeNode, depth: usize, rows: &mut Vec<Vec<String>>) {
        // widest subtree first reads like a profile
        let mut children: Vec<(&String, &TreeNode)> = node.children.iter().collect();
        children.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        for (name, child) in children {
            let self_pct = if child.total_us > 0 {
                100.0 * child.self_us as f64 / child.total_us as f64
            } else {
                100.0
            };
            rows.push(vec![
                format!("{}{}", "  ".repeat(depth), name),
                child.count.to_string(),
                fmt_us(child.total_us),
                fmt_us(child.self_us),
                format!("{self_pct:.0}%"),
            ]);
            render(child, depth + 1, rows);
        }
    }
    render(&tree, 0, &mut rows);
    out.push_str(&table(&["span", "count", "total", "self", "self%"], &rows));
    out
}

/// Renders folded stacks (`root;child;leaf <self µs>` per line, stacks
/// sorted), the input format of `flamegraph.pl` and inferno. The counted
/// value is self time in microseconds.
pub fn folded_stacks(events: &[Event]) -> String {
    let spans = collect_spans(events);
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let by_id: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut child_total: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &spans {
        if span.parent != 0 && ids.contains(&span.parent) {
            *child_total.entry(span.parent).or_default() += span.dur_us;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for span in &spans {
        // walk ancestry up to the root (or to an orphaned parent)
        let mut stack = vec![span.shown()];
        let mut parent = span.parent;
        while parent != 0 {
            match by_id.get(&parent) {
                Some(&i) => {
                    stack.push(spans[i].shown());
                    parent = spans[i].parent;
                }
                None => {
                    stack.push("(orphan)".to_string());
                    break;
                }
            }
        }
        stack.reverse();
        let own = self_us(span, child_total.get(&span.id).copied().unwrap_or(0));
        if own > 0 {
            *folded.entry(stack.join(";")).or_default() += own;
        }
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: u64, name: &str, tid: u64, t_us: u64) -> Event {
        Event::SpanStart {
            id,
            parent,
            name: name.into(),
            label: None,
            tid,
            t_us,
        }
    }

    fn end(id: u64, parent: u64, name: &str, tid: u64, t_us: u64, dur_us: u64) -> Event {
        Event::SpanEnd {
            id,
            parent,
            name: name.into(),
            label: None,
            tid,
            t_us,
            dur_us,
        }
    }

    /// main: root(1) { a(2) { b(3) } }, worker lane: w(4) parented to a.
    fn connected_capture() -> Vec<Event> {
        vec![
            start(1, 0, "root", 1, 0),
            start(2, 1, "a", 1, 10),
            start(3, 2, "b", 1, 20),
            end(3, 2, "b", 1, 50, 30),
            start(4, 2, "w", 2, 25),
            end(4, 2, "w", 2, 55, 30),
            end(2, 1, "a", 1, 90, 80),
            end(1, 0, "root", 1, 100, 100),
        ]
    }

    #[test]
    fn stats_counts_roots_orphans_and_lanes() {
        let st = stats(&connected_capture());
        assert_eq!(
            st,
            TraceStats {
                spans: 4,
                roots: 1,
                orphans: 0,
                threads: 2
            }
        );

        // break propagation: the worker's parent never appears
        let mut broken = connected_capture();
        broken.push(end(9, 7777, "lost", 3, 60, 5));
        let st = stats(&broken);
        assert_eq!(st.orphans, 1);
        assert_eq!(st.roots, 1);
    }

    #[test]
    fn chrome_trace_lays_spans_in_thread_lanes() {
        let json = chrome_trace(&connected_capture());
        let value: Value = serde_json::from_str(&json).expect("valid JSON");
        let top = value.as_object().expect("object form");
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        // 2 thread_name metadata rows + 4 complete span events
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.as_object()
                    .and_then(|o| o.iter().find(|(k, _)| k == "ph"))
                    .is_some_and(|(_, v)| *v == Value::String("M".into()))
            })
            .collect();
        assert_eq!(metas.len(), 2, "{json}");
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.as_object()
                    .and_then(|o| o.iter().find(|(k, _)| k == "ph"))
                    .is_some_and(|(_, v)| *v == Value::String("X".into()))
            })
            .collect();
        assert_eq!(complete.len(), 4, "{json}");
        assert!(json.contains("\"tid\":2"), "worker lane present: {json}");
        // span "a": ts from its start event, dur from its end event
        assert!(json.contains("\"name\":\"a\""), "{json}");
        assert!(json.contains("\"dur\":80"), "{json}");
    }

    #[test]
    fn chrome_trace_carries_trace_meta_and_counters() {
        let mut events = connected_capture();
        events.push(Event::Record {
            name: "trace.meta".into(),
            t_us: 0,
            fields: vec![("trace_id".into(), Value::String("00c0ffee00c0ffee".into()))],
        });
        events.push(Event::Counter {
            name: "tensor.gemm.calls".into(),
            value: 7,
            t_us: 60,
        });
        let json = chrome_trace(&events);
        assert!(json.contains("\"trace_id\":\"00c0ffee00c0ffee\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("tensor.gemm.calls"), "{json}");
    }

    #[test]
    fn span_tree_attributes_self_vs_child_time() {
        let text = span_tree(&connected_capture());
        assert!(text.contains("1 roots, 0 orphans"), "{text}");
        // root: 100 total, children (a: 80) -> self 20
        // a: 80 total, children (b: 30, w: 30) -> self 20
        let root_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("root"))
            .unwrap();
        assert!(root_line.contains("100us"), "{root_line}");
        assert!(root_line.contains("20us"), "{root_line}");
        let a_line = text
            .lines()
            .find(|l| l.trim_start().starts_with('a'))
            .unwrap();
        assert!(a_line.contains("80us"), "{a_line}");
        assert!(a_line.contains("20us"), "{a_line}");
        // children are indented under their parents
        assert!(text.contains("  a"), "{text}");
        assert!(text.contains("    b"), "{text}");
    }

    #[test]
    fn span_tree_clamps_concurrent_fanout_self_time() {
        // two workers of 80us each inside a 100us parent: child wall time
        // (160us) exceeds the parent's, self clamps to 0
        let events = vec![
            start(1, 0, "parent", 1, 0),
            end(2, 1, "w", 2, 80, 80),
            end(3, 1, "w", 3, 90, 80),
            end(1, 0, "parent", 1, 100, 100),
        ];
        let text = span_tree(&events);
        let parent = text
            .lines()
            .find(|l| l.trim_start().starts_with("parent"))
            .unwrap();
        assert!(parent.contains("0us"), "{parent}");
        let w = text
            .lines()
            .find(|l| l.trim_start().starts_with('w'))
            .unwrap();
        assert!(w.contains("160us"), "aggregated worker total: {w}");
    }

    #[test]
    fn folded_stacks_sum_self_time_per_path() {
        let text = folded_stacks(&connected_capture());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"root 20"), "{text}");
        assert!(lines.contains(&"root;a 20"), "{text}");
        assert!(lines.contains(&"root;a;b 30"), "{text}");
        assert!(lines.contains(&"root;a;w 30"), "{text}");
    }

    #[test]
    fn orphans_are_grouped_loudly() {
        let events = vec![end(9, 7777, "lost", 1, 60, 5)];
        let tree = span_tree(&events);
        assert!(tree.contains("1 orphans"), "{tree}");
        assert!(tree.contains("(orphan) lost"), "{tree}");
        let folded = folded_stacks(&events);
        assert!(folded.contains("(orphan);lost 5"), "{folded}");
    }

    #[test]
    fn open_spans_render_to_capture_end() {
        // start without end: a killed run still produces a usable trace
        let events = vec![
            start(1, 0, "root", 1, 0),
            Event::Warn {
                message: "killed".into(),
                t_us: 40,
            },
        ];
        let st = stats(&events);
        assert_eq!(st.spans, 1);
        assert_eq!(st.roots, 1);
        let json = chrome_trace(&events);
        assert!(json.contains("\"dur\":40"), "{json}");
    }
}
