//! Benchmarks behind Table III and Fig. 6: the multi-objective kernels —
//! fast non-dominated sorting, Pareto ranking and hypervolume — at the
//! population sizes the MOEA uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_bench::fixture_objectives;
use hwpr_moo::{fast_non_dominated_sort, hypervolume, nadir_reference_point, pareto_ranks};

fn bench_moo(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_moo_kernels");
    for &n in &[150usize, 300] {
        let objs2 = fixture_objectives(n, 2);
        group.bench_with_input(BenchmarkId::new("nds_2d", n), &objs2, |b, objs| {
            b.iter(|| fast_non_dominated_sort(objs).expect("sort failed"));
        });
        group.bench_with_input(BenchmarkId::new("pareto_ranks_2d", n), &objs2, |b, objs| {
            b.iter(|| pareto_ranks(objs).expect("ranks failed"));
        });
        let reference = nadir_reference_point(&objs2, 1.0).expect("reference");
        group.bench_with_input(
            BenchmarkId::new("hypervolume_2d", n),
            &(objs2.clone(), reference),
            |b, (objs, reference)| {
                b.iter(|| hypervolume(objs, reference).expect("hv failed"));
            },
        );
    }
    // the 3-objective kernel of Fig. 9
    let objs3 = fixture_objectives(64, 3);
    let reference3 = nadir_reference_point(&objs3, 1.0).expect("reference");
    group.bench_function("hypervolume_3d_64", |b| {
        b.iter(|| hypervolume(&objs3, &reference3).expect("hv failed"));
    });
    group.finish();
}

criterion_group!(benches, bench_moo);
criterion_main!(benches);
