//! NSGA-II fast non-dominated sorting and crowding distance.

use crate::dominance::dominates;
use crate::{validate_points, Result};
use std::borrow::Borrow;

/// Partitions `points` into Pareto fronts (indices), best front first.
///
/// This is the NSGA-II fast non-dominated sort: `F_1` contains all
/// non-dominated points, `F_2` the points only dominated by `F_1`, and so
/// on — the layering the HW-PR-NAS surrogate is trained to reproduce.
///
/// # Errors
///
/// Returns [`crate::MooError`] when the set is empty, dimensions are
/// inconsistent, or values are non-finite.
///
/// Accepts any slice whose elements borrow as objective vectors
/// (`Vec<f64>`, `Arc<Vec<f64>>`, `&Vec<f64>`), so shared fitness caches
/// can be sorted without deep-copying their points.
pub fn fast_non_dominated_sort<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<Vec<usize>>> {
    validate_points(points)?;
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(points[i].borrow(), points[j].borrow()) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if dominates(points[j].borrow(), points[i].borrow()) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    Ok(fronts)
}

/// The Pareto rank (0-based front index) of every point.
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_ranks<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    let fronts = fast_non_dominated_sort(points)?;
    let mut ranks = vec![0usize; points.len()];
    for (k, front) in fronts.iter().enumerate() {
        for &i in front {
            ranks[i] = k;
        }
    }
    Ok(ranks)
}

/// Indices of the non-dominated (first-front) points.
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_front<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    Ok(fast_non_dominated_sort(points)?.remove(0))
}

/// NSGA-II crowding distance of each point *within one front*.
///
/// Boundary points get `f64::INFINITY`; interior points get the sum of
/// normalised neighbour gaps per objective. Used to break ties when
/// truncating a front to the population size.
///
/// # Errors
///
/// Returns [`crate::MooError`] for empty/inconsistent inputs.
pub fn crowding_distance<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<f64>> {
    let dim = validate_points(points)?;
    let n = points.len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return Ok(vec![f64::INFINITY; n]);
    }
    let at = |i: usize, d: usize| points[i].borrow()[d];
    for d in 0..dim {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| at(i, d).total_cmp(&at(j, d)));
        let span = at(order[n - 1], d) - at(order[0], d);
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        if span <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let gap = (at(order[w + 1], d) - at(order[w - 1], d)) / span;
            distance[order[w]] += gap;
        }
    }
    Ok(distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0], // front 0
            vec![2.0, 3.0], // front 0
            vec![4.0, 1.0], // front 0
            vec![3.0, 4.0], // front 1 (dominated by [2,3])
            vec![5.0, 5.0], // front 2 (dominated by [3,4])
            vec![2.0, 3.0], // duplicate of front-0 point: same front
        ]
    }

    #[test]
    fn sorts_known_layout() {
        let fronts = fast_non_dominated_sort(&sample()).unwrap();
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 1, 2, 5]);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn ranks_align_with_fronts() {
        let ranks = pareto_ranks(&sample()).unwrap();
        assert_eq!(ranks, vec![0, 0, 0, 1, 2, 0]);
    }

    #[test]
    fn pareto_front_returns_first_layer() {
        let mut front = pareto_front(&sample()).unwrap();
        front.sort_unstable();
        assert_eq!(front, vec![0, 1, 2, 5]);
    }

    #[test]
    fn single_point_is_front_zero() {
        let fronts = fast_non_dominated_sort(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn totally_ordered_chain_gives_singleton_fronts() {
        let chain: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, i as f64]).collect();
        let fronts = fast_non_dominated_sort(&chain).unwrap();
        assert_eq!(fronts.len(), 5);
        for (k, f) in fronts.iter().enumerate() {
            assert_eq!(f, &vec![k]);
        }
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let front = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![5.0, 1.0],
        ];
        let d = crowding_distance(&front).unwrap();
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let d = crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn crowding_constant_objective_is_handled() {
        let front = vec![vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]];
        let d = crowding_distance(&front).unwrap();
        // middle point has finite distance from the varying objective only
        assert!(d[1].is_finite());
    }

    #[test]
    fn errors_propagate() {
        assert!(fast_non_dominated_sort::<Vec<f64>>(&[]).is_err());
        assert!(pareto_ranks(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(crowding_distance(&[vec![f64::NAN]]).is_err());
    }
}
