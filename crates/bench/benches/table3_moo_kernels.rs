//! Benchmarks behind Table III and Fig. 6: the multi-objective kernels —
//! fast non-dominated sorting, Pareto ranking and hypervolume — at the
//! population sizes the MOEA uses, plus the PR-5 head-to-heads: the
//! frozen `hwpr_moo::reference` implementations against the
//! workspace-backed kernels (`*_ref` vs `*_ws` rows, N ∈ {256, 1024,
//! 4096}) and the per-generation incremental-hypervolume scenario the
//! search telemetry runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_bench::fixture_objectives;
use hwpr_moo::{
    fast_non_dominated_sort, hypervolume, nadir_reference_point, pareto_ranks, reference, Fronts,
    IncrementalHv2, MooWorkspace,
};

fn bench_moo(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_moo_kernels");
    for &n in &[150usize, 300] {
        let objs2 = fixture_objectives(n, 2);
        group.bench_with_input(BenchmarkId::new("nds_2d", n), &objs2, |b, objs| {
            b.iter(|| fast_non_dominated_sort(objs).expect("sort failed"));
        });
        group.bench_with_input(BenchmarkId::new("pareto_ranks_2d", n), &objs2, |b, objs| {
            b.iter(|| pareto_ranks(objs).expect("ranks failed"));
        });
        let reference_pt = nadir_reference_point(&objs2, 1.0).expect("reference");
        group.bench_with_input(
            BenchmarkId::new("hypervolume_2d", n),
            &(objs2.clone(), reference_pt),
            |b, (objs, reference_pt)| {
                b.iter(|| hypervolume(objs, reference_pt).expect("hv failed"));
            },
        );
    }
    // the 3-objective kernel of Fig. 9
    let objs3 = fixture_objectives(64, 3);
    let reference3 = nadir_reference_point(&objs3, 1.0).expect("reference");
    group.bench_function("hypervolume_3d_64", |b| {
        b.iter(|| hypervolume(&objs3, &reference3).expect("hv failed"));
    });

    // reference vs warm workspace, 2-D: O(N^2) dominance counting against
    // the sweep-sort layering
    group.sample_size(30);
    for &n in &[256usize, 1024, 4096] {
        let objs2 = fixture_objectives(n, 2);
        let reference_pt = nadir_reference_point(&objs2, 1.0).expect("reference");
        group.bench_with_input(BenchmarkId::new("nds_2d_ref", n), &objs2, |b, objs| {
            b.iter(|| reference::fast_non_dominated_sort(objs).expect("sort failed"));
        });
        group.bench_with_input(BenchmarkId::new("nds_2d_ws", n), &objs2, |b, objs| {
            let mut ws = MooWorkspace::new();
            let mut fronts = Fronts::new();
            b.iter(|| {
                ws.fast_non_dominated_sort_into(objs, &mut fronts)
                    .expect("sort failed");
                fronts.len()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("hv_2d_ref", n),
            &(objs2.clone(), reference_pt.clone()),
            |b, (objs, reference_pt)| {
                b.iter(|| reference::hypervolume(objs, reference_pt).expect("hv failed"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hv_2d_ws", n),
            &(objs2, reference_pt),
            |b, (objs, reference_pt)| {
                let mut ws = MooWorkspace::new();
                b.iter(|| ws.hypervolume(objs, reference_pt).expect("hv failed"));
            },
        );
    }
    // reference vs warm workspace, 3-D (CSR + pooled WFG path)
    let objs3 = fixture_objectives(1024, 3);
    let reference3 = nadir_reference_point(&objs3, 1.0).expect("reference");
    group.bench_function("nds_3d_ref/1024", |b| {
        b.iter(|| reference::fast_non_dominated_sort(&objs3).expect("sort failed"));
    });
    group.bench_function("nds_3d_ws/1024", |b| {
        let mut ws = MooWorkspace::new();
        let mut fronts = Fronts::new();
        b.iter(|| {
            ws.fast_non_dominated_sort_into(&objs3, &mut fronts)
                .expect("sort failed");
            fronts.len()
        });
    });
    group.bench_function("hv_3d_ref/1024", |b| {
        b.iter(|| reference::hypervolume(&objs3, &reference3).expect("hv failed"));
    });
    group.bench_function("hv_3d_ws/1024", |b| {
        let mut ws = MooWorkspace::new();
        b.iter(|| ws.hypervolume(&objs3, &reference3).expect("hv failed"));
    });

    // the telemetry scenario: per-generation hypervolume of a slowly
    // improving 2-D front. `batch` recomputes from scratch each
    // generation (validate + non-dominated extraction + sort + sweep);
    // `incremental` folds the generation into a warm IncrementalHv2
    // archive and reads the maintained value — the elitist steady state,
    // where nearly every insert is an O(log N) rejection.
    let generations = front_evolution(30, 256);
    let hv_reference = [110.0f64, 110.0];
    group.bench_function("hv2_per_gen_batch", |b| {
        let mut g = 0usize;
        b.iter(|| {
            let hv = reference::hypervolume(&generations[g], &hv_reference).expect("hv failed");
            g = (g + 1) % generations.len();
            hv
        });
    });
    group.bench_function("hv2_per_gen_incremental", |b| {
        let mut archive = IncrementalHv2::new(&hv_reference).expect("finite reference");
        // warm: the archive converges to the best front ever seen
        for generation in &generations {
            for p in generation {
                archive.insert(p[0], p[1]).expect("bounded point");
            }
        }
        let mut g = 0usize;
        b.iter(|| {
            for p in &generations[g] {
                archive.insert(p[0], p[1]).expect("bounded point");
            }
            g = (g + 1) % generations.len();
            archive.hypervolume()
        });
    });
    group.finish();
}

/// A deterministic 30-generation front evolution: each generation is a
/// near-Pareto point cloud on a staircase that contracts toward the
/// origin, so per-generation fronts are large (like a converged elitist
/// population) and later generations dominate earlier ones.
fn front_evolution(generations: usize, per_gen: usize) -> Vec<Vec<Vec<f64>>> {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f64) / (1u64 << 24) as f64
    };
    (0..generations)
        .map(|g| {
            let decay = 0.98f64.powi(g as i32);
            (0..per_gen)
                .map(|_| {
                    let x = 1.0 + 99.0 * next();
                    let y = (101.0 - x) * decay + next();
                    vec![x, y]
                })
                .collect()
        })
        .collect()
}

criterion_group!(benches, bench_moo);
criterion_main!(benches);
