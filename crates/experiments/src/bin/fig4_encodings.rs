//! Regenerates Figure 4 (encoding-scheme ablation).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig4::run(&harness);
    hwpr_experiments::write_report("fig4_encodings", &report);
}
