//! Regenerates Table I (MLP/XGBoost/LGBoost regressor comparison).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::table1::run(&harness);
    hwpr_experiments::write_report("table1_regressors", &report);
}
