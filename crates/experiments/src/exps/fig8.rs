//! Figure 8: the least-latency Pareto-front architectures found for the
//! Edge GPU and the Pixel 3 (qualitative comparison).

use crate::{true_objectives, Harness};
use hwpr_hwmodel::{latency_ms, Platform};
use hwpr_nasbench::profile::profile;
use hwpr_nasbench::{Architecture, Dataset, OpKind};
use std::fmt::Write as _;

/// Renders a human-readable description of an architecture.
pub fn describe(arch: &Architecture, dataset: Dataset) -> String {
    let net = profile(arch, dataset);
    let dw = net
        .ops
        .iter()
        .filter(|o| o.kind == OpKind::DepthwiseConv)
        .count();
    let convs = net.conv_count();
    let mut out = String::new();
    let _ = writeln!(out, "- space: {}", arch.space());
    let _ = writeln!(out, "- encoding: `{}`", arch.to_arch_string());
    let _ = writeln!(
        out,
        "- {:.1} MFLOPs, {:.2} M params, {} convolutions ({} depthwise), depth {}",
        net.total_flops() / 1e6,
        net.total_params() / 1e6,
        convs,
        dw,
        net.effective_depth(),
    );
    let _ = writeln!(
        out,
        "- latency: {:.3} ms on Edge GPU, {:.3} ms on Pixel 3",
        latency_ms(arch, dataset, Platform::EdgeGpu),
        latency_ms(arch, dataset, Platform::Pixel3),
    );
    out
}

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 8 — least-latency front architectures (Edge GPU vs Pixel 3)\n"
    );
    for platform in [Platform::EdgeGpu, Platform::Pixel3] {
        let front = super::table4::front_members(h, platform);
        let oracle = h.measured(dataset, platform);
        let objs = true_objectives(&front, &oracle);
        let fastest = objs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a[1].total_cmp(&b[1]))
            .map(|(i, _)| i)
            .expect("front is non-empty");
        let _ = writeln!(out, "## {platform}\n");
        let _ = writeln!(
            out,
            "Least-latency front member (error {:.2} %, latency {:.3} ms):\n",
            objs[fastest][0], objs[fastest][1]
        );
        out.push_str(&describe(&front[fastest], dataset));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Paper's shape: the Pixel 3 pick is an FBNet depthwise architecture \
         (fast on mobile CPUs without accuracy collapse); the Edge GPU pick \
         is a bigger NAS-Bench-201 model with standard convolutions."
    );
    out
}
