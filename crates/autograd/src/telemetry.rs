//! Tape instrumentation: backward-pass timing and arena health gauges.
//!
//! Hooks are gated on [`hwpr_obs::enabled`] before any clock read or
//! metric lookup, so a disabled backward pass pays one relaxed atomic load
//! and allocates nothing.

use hwpr_obs::metrics::{registry, Gauge, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct TapeMetrics {
    /// "autograd.backward.us": wall time per backward pass.
    backward_us: Arc<Histogram>,
    /// "autograd.tape.nodes": node count of the most recent tape.
    nodes: Arc<Gauge>,
    /// "autograd.pool.reuse_ratio": fraction of pooled takes serviced
    /// without heap traffic (1.0 once a fixed-shape loop is warm).
    reuse_ratio: Arc<Gauge>,
}

fn metrics() -> &'static TapeMetrics {
    static METRICS: OnceLock<TapeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TapeMetrics {
        backward_us: registry().histogram(
            "autograd.backward.us",
            &Histogram::exponential_bounds(10.0, 4.0, 10),
        ),
        nodes: registry().gauge("autograd.tape.nodes"),
        reuse_ratio: registry().gauge("autograd.pool.reuse_ratio"),
    })
}

/// Captures the backward-pass start time, or `None` with telemetry off.
pub(crate) fn backward_start() -> Option<Instant> {
    hwpr_obs::enabled().then(Instant::now)
}

/// Records one completed backward pass (timing plus tape/arena gauges).
#[cold]
pub(crate) fn backward_done(start: Instant, nodes: usize, pool_reuse_ratio: f64) {
    let metrics = metrics();
    metrics
        .backward_us
        .observe(start.elapsed().as_secs_f64() * 1e6);
    metrics.nodes.set(nodes as f64);
    metrics.reuse_ratio.set(pool_reuse_ratio);
}
