//! Quickstart: materialise a synthetic benchmark slice, train the
//! HW-PR-NAS surrogate, and run the MOEA of Algorithm 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hw_pr_nas::core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::moo::pareto_front;
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::search::{HwPrNasEvaluator, Moea, MoeaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Materialise a slice of the synthetic NAS-Bench-201 table
    //    (the stand-in for the paper's tabular benchmark lookups).
    println!("generating benchmark table ...");
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(400),
        seed: 7,
    });
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let data = SurrogateDataset::from_simbench(&bench, dataset, platform)?;

    // 2. Train the Pareto rank-preserving surrogate (§III).
    println!("training HW-PR-NAS on {} architectures ...", data.len());
    let (model, report) = HwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::fast())?;
    println!(
        "trained in {} epochs; validation rank tau = {:.3}",
        report.epochs_run, report.val_rank_tau
    );

    // 3. Search with the single fused surrogate call.
    println!("running the MOEA ...");
    let moea = Moea::new(MoeaConfig {
        population: 32,
        generations: 20,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })?;
    let mut evaluator = HwPrNasEvaluator::new(model, platform);
    let result = moea.run(&mut evaluator)?;
    println!(
        "search finished: {} evaluations, {} surrogate calls, {:.1} ms wall",
        result.evaluations,
        result.surrogate_calls,
        result.wall_time.as_secs_f64() * 1e3
    );

    // 4. Score the final population with the oracle and print its front.
    let oracle = hw_pr_nas::search::MeasuredEvaluator::for_bench(&bench, dataset, platform);
    let objectives: Vec<Vec<f64>> = result
        .population
        .iter()
        .map(|a| oracle.true_objectives(a))
        .collect();
    let front = pareto_front(&objectives)?;
    println!("\nPareto front ({} architectures):", front.len());
    let mut rows: Vec<(f64, f64, String)> = front
        .iter()
        .map(|&i| {
            (
                objectives[i][1],
                100.0 - objectives[i][0],
                result.population[i].to_arch_string(),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (latency, accuracy, arch) in rows {
        println!("  {accuracy:6.2} % @ {latency:7.3} ms  {arch}");
    }
    Ok(())
}
