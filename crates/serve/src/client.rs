//! A blocking, pipelining-capable client for the serving protocol.
//!
//! [`ServeClient`] reuses one request buffer and one frame buffer, so a
//! steady-state client allocates nothing per request. The split
//! `send_predict` / `recv_scores` API lets a load generator keep many
//! requests in flight on one connection (the server replies in
//! completion order, so match responses by the returned request id).

use crate::protocol::{self, PredictKind, MAX_FRAME, STATUS_ERROR, STATUS_OK, STATUS_OVERLOADED};
use crate::{Result, ServeError};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::Architecture;
use std::net::{TcpStream, ToSocketAddrs};

/// A connection to a running [`crate::Server`].
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    payload: Vec<u8>,
    frame: Vec<u8>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a server at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            payload: Vec::new(),
            frame: Vec::new(),
            next_id: 1,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends a predict request without waiting for the response; returns
    /// the request id to match against a later `recv_*` call. Use this
    /// to pipeline many requests on one connection.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_predict(
        &mut self,
        kind: PredictKind,
        model: &str,
        platform: Platform,
        archs: &[Architecture],
    ) -> Result<u64> {
        let id = self.fresh_id();
        protocol::encode_predict(&mut self.payload, kind, id, model, platform.name(), archs);
        protocol::write_frame(&mut self.stream, &self.payload)?;
        Ok(id)
    }

    /// Reads the next response frame, returning its `(status-checked)`
    /// body in `self.frame` space.
    fn recv_ok_body(&mut self) -> Result<(u64, usize)> {
        if !protocol::read_frame(&mut self.stream, &mut self.frame, MAX_FRAME)? {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let head = protocol::decode_response_head(&self.frame).map_err(ServeError::Protocol)?;
        let body_at = self.frame.len() - head.body.len();
        match head.status {
            STATUS_OK => Ok((head.request_id, body_at)),
            STATUS_OVERLOADED => Err(ServeError::Overloaded),
            STATUS_ERROR => Err(ServeError::Remote(protocol::decode_error_message(
                head.body,
            ))),
            other => Err(ServeError::Protocol(format!(
                "unknown response status {other}"
            ))),
        }
    }

    /// Receives one scores response, appending to `out`. Returns the
    /// request id the response answers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the server shed the request,
    /// [`ServeError::Remote`] for request-level errors, and
    /// [`ServeError::Protocol`]/[`ServeError::Io`] for transport faults.
    pub fn recv_scores(&mut self, out: &mut Vec<f64>) -> Result<u64> {
        let (id, body_at) = self.recv_ok_body()?;
        protocol::decode_scores(&self.frame[body_at..], out).map_err(ServeError::Protocol)?;
        Ok(id)
    }

    /// Receives one objectives response, appending to `out`. Returns the
    /// request id the response answers.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recv_scores`].
    pub fn recv_objectives(&mut self, out: &mut Vec<(f64, f64)>) -> Result<u64> {
        let (id, body_at) = self.recv_ok_body()?;
        protocol::decode_objectives(&self.frame[body_at..], out).map_err(ServeError::Protocol)?;
        Ok(id)
    }

    /// Round-trip convenience: predict Pareto scores for `archs`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recv_scores`].
    pub fn predict_scores(
        &mut self,
        model: &str,
        platform: Platform,
        archs: &[Architecture],
    ) -> Result<Vec<f64>> {
        let sent = self.send_predict(PredictKind::Scores, model, platform, archs)?;
        let mut out = Vec::with_capacity(archs.len());
        let got = self.recv_scores(&mut out)?;
        debug_assert_eq!(sent, got, "unpipelined round trip must match ids");
        Ok(out)
    }

    /// Round-trip convenience: predict `(accuracy %, latency ms)` pairs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recv_scores`].
    pub fn predict_objectives(
        &mut self,
        model: &str,
        platform: Platform,
        archs: &[Architecture],
    ) -> Result<Vec<(f64, f64)>> {
        let sent = self.send_predict(PredictKind::Objectives, model, platform, archs)?;
        let mut out = Vec::with_capacity(archs.len());
        let got = self.recv_objectives(&mut out)?;
        debug_assert_eq!(sent, got, "unpipelined round trip must match ids");
        Ok(out)
    }

    /// Lists the server's published models as `(name, version)` pairs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recv_scores`].
    pub fn list_models(&mut self) -> Result<Vec<(String, u32)>> {
        let id = self.fresh_id();
        protocol::encode_list_models(&mut self.payload, id);
        protocol::write_frame(&mut self.stream, &self.payload)?;
        let (_, body_at) = self.recv_ok_body()?;
        protocol::decode_model_list(&self.frame[body_at..]).map_err(ServeError::Protocol)
    }

    /// Sends a raw pre-encoded payload frame (robustness tests poke the
    /// server with malformed frames through this).
    #[doc(hidden)]
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<()> {
        protocol::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Receives one raw response, returning `(status, request_id,
    /// message-or-empty)`. Robustness-test helper.
    #[doc(hidden)]
    pub fn recv_raw(&mut self) -> Result<(u8, u64, String)> {
        if !protocol::read_frame(&mut self.stream, &mut self.frame, MAX_FRAME)? {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let head = protocol::decode_response_head(&self.frame).map_err(ServeError::Protocol)?;
        let message = if head.status == STATUS_OK {
            String::new()
        } else {
            protocol::decode_error_message(head.body)
        };
        Ok((head.status, head.request_id, message))
    }
}
