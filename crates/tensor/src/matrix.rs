//! The dense row-major matrix type.

use crate::shape::ShapeError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the single storage type used throughout the reproduction:
/// batches of architecture encodings are `[batch, features]` matrices,
/// parameters are `[in, out]` matrices, and vectors are `[n, 1]` or
/// `[1, n]` matrices.
///
/// # Examples
///
/// ```
/// use hwpr_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use hwpr_tensor::Matrix;
    /// let z = Matrix::zeros(2, 2);
    /// assert_eq!(z.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hwpr_tensor::Matrix;
    /// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok::<(), hwpr_tensor::ShapeError>(())
    /// ```
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix (`1 x n`) from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a single-column matrix (`n x 1`) from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Mutable borrow of rows `start..start + count` as one contiguous
    /// slice of `count * cols` elements (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the last row.
    pub fn rows_mut(&mut self, start: usize, count: usize) -> &mut [f32] {
        assert!(start + count <= self.rows, "row range out of bounds");
        let c = self.cols;
        &mut self.data[start * c..(start + count) * c]
    }

    /// Column `c` copied into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing the rows selected by `indices`
    /// (duplicates allowed), in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns the submatrix of rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.column(2), vec![3., 6.]);
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn index_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 7.0;
        assert_eq!(m[(0, 1)], 7.0);
        m.set(1, 0, 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn select_rows_duplicates() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0, 4.0]);
        assert_eq!(s.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn slice_rows_bounds() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.column(0), vec![2.0, 3.0]);
        assert_eq!(m.slice_rows(1, 1).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row index out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 4.25]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows, vec![m.row(0), m.row(1)]);
    }
}
