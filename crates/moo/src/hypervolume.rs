//! Exact hypervolume computation (minimization convention).
//!
//! The free functions here run on a fresh [`MooWorkspace`] per call;
//! hot paths hold a long-lived workspace (or an
//! [`crate::IncrementalHv2`] archive) instead.

use crate::workspace::MooWorkspace;
use crate::{validate_points, MooError, Result};
use std::borrow::Borrow;

/// The hypervolume dominated by `points` with respect to `reference`
/// (every objective minimised; the reference must be weakly worse than
/// every point in every objective).
///
/// Uses an exact sweep for 1-D/2-D and the WFG exclusive-hypervolume
/// recursion for three or more objectives — the same quantity pymoo
/// computes for the paper's Table III. Input is validated exactly once;
/// the internal first-front extraction is unchecked.
///
/// # Errors
///
/// Returns [`MooError`] for empty/inconsistent input, a reference point of
/// the wrong dimension, or a reference that does not bound the points.
///
/// # Examples
///
/// ```
/// // a single point at (1, 1) with reference (3, 3) dominates a 2x2 box
/// let hv = hwpr_moo::hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]).unwrap();
/// assert_eq!(hv, 4.0);
/// ```
pub fn hypervolume<P: Borrow<Vec<f64>>>(points: &[P], reference: &[f64]) -> Result<f64> {
    let mut ws = MooWorkspace::new();
    ws.hypervolume(points, reference)
}

/// Hypervolume of `approximation` normalised by the hypervolume of
/// `true_front` under the same reference point — the paper's quality
/// metric for Pareto front approximations (0 ≤ value ≤ 1 when the true
/// front is optimal).
///
/// # Errors
///
/// Propagates [`MooError`] from either hypervolume computation, and
/// returns [`MooError::EmptySet`] if the true front has zero hypervolume.
pub fn normalized_hypervolume<P: Borrow<Vec<f64>>, Q: Borrow<Vec<f64>>>(
    approximation: &[P],
    true_front: &[Q],
    reference: &[f64],
) -> Result<f64> {
    let mut ws = MooWorkspace::new();
    let denom = ws.hypervolume(true_front, reference)?;
    if denom <= 0.0 {
        return Err(MooError::EmptySet);
    }
    Ok(ws.hypervolume(approximation, reference)? / denom)
}

/// The reference point the paper uses: the coordinate-wise worst value
/// over `points` ("the furthest point from the Pareto front"), pushed out
/// by `margin` in every objective.
///
/// # Errors
///
/// Returns [`MooError`] for empty or inconsistent point sets.
pub fn nadir_reference_point<P: Borrow<Vec<f64>>>(points: &[P], margin: f64) -> Result<Vec<f64>> {
    let dim = validate_points(points)?;
    let mut reference = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for (r, &v) in reference.iter_mut().zip(p.borrow()) {
            *r = r.max(v);
        }
    }
    for r in &mut reference {
        *r += margin;
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::weakly_dominates;

    #[test]
    fn two_d_staircase() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let hv = hypervolume(&front, &[4.0, 4.0]).unwrap();
        // boxes: (4-1)(4-3)=3 + (4-2)(3-2)=2 + (4-3)(2-1)=1
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0]];
        let with_dominated = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 3.5]];
        let r = [5.0, 5.0];
        assert_eq!(
            hypervolume(&front, &r).unwrap(),
            hypervolume(&with_dominated, &r).unwrap()
        );
    }

    #[test]
    fn duplicate_points_do_not_double_count() {
        let front = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(hypervolume(&front, &[2.0, 2.0]).unwrap(), 1.0);
    }

    #[test]
    fn one_dimensional() {
        let hv = hypervolume(&[vec![2.0], vec![5.0]], &[10.0]).unwrap();
        assert_eq!(hv, 8.0);
    }

    #[test]
    fn three_d_single_point() {
        let hv = hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]).unwrap();
        assert_eq!(hv, 1.0 * 2.0 * 3.0);
    }

    #[test]
    fn three_d_union_of_two_boxes() {
        // boxes [0,2]^3 and [1,3]x[1,3]x[0,3]... compute via inclusion-exclusion
        let a = vec![1.0, 1.0, 1.0]; // box to (4,4,4): 27
        let b = vec![2.0, 2.0, 0.0]; // box: 2*2*4 = 16, overlap with a: 2*2*3 = 12
        let hv = hypervolume(&[a, b], &[4.0, 4.0, 4.0]).unwrap();
        assert!((hv - (27.0 + 16.0 - 12.0)).abs() < 1e-9, "hv = {hv}");
    }

    #[test]
    fn three_d_matches_monte_carlo() {
        let front = vec![
            vec![0.2, 0.7, 0.5],
            vec![0.5, 0.2, 0.8],
            vec![0.8, 0.5, 0.1],
            vec![0.4, 0.4, 0.4],
        ];
        let reference = [1.0, 1.0, 1.0];
        let exact = hypervolume(&front, &reference).unwrap();
        // deterministic grid estimate
        let n = 64;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let q = [
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    ];
                    if front.iter().any(|p| weakly_dominates(p, &q)) {
                        hits += 1;
                    }
                }
            }
        }
        let estimate = hits as f64 / (n * n * n) as f64;
        assert!(
            (exact - estimate).abs() < 0.02,
            "exact {exact} vs grid {estimate}"
        );
    }

    #[test]
    fn rejects_bad_reference() {
        let front = vec![vec![1.0, 1.0]];
        assert!(matches!(
            hypervolume(&front, &[0.5, 2.0]).unwrap_err(),
            MooError::ReferenceNotDominating
        ));
        assert!(matches!(
            hypervolume(&front, &[1.0]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        assert!(hypervolume(&front, &[f64::INFINITY, 2.0]).is_err());
    }

    #[test]
    fn normalized_hv_of_true_front_is_one() {
        let truth = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let reference = nadir_reference_point(&truth, 1.0).unwrap();
        let nhv = normalized_hypervolume(&truth, &truth, &reference).unwrap();
        assert!((nhv - 1.0).abs() < 1e-12);
        // a worse approximation scores below one
        let approx = vec![vec![2.0, 3.0], vec![3.0, 2.0]];
        let nhv = normalized_hypervolume(&approx, &truth, &reference).unwrap();
        assert!(nhv < 1.0);
    }

    #[test]
    fn nadir_reference_is_worst_plus_margin() {
        let pts = vec![vec![1.0, 9.0], vec![5.0, 2.0]];
        assert_eq!(nadir_reference_point(&pts, 1.0).unwrap(), vec![6.0, 10.0]);
        assert!(nadir_reference_point::<Vec<f64>>(&[], 1.0).is_err());
    }
}
