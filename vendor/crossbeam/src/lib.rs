//! Offline subset of `crossbeam` (see `vendor/README.md`): `scope` /
//! `Scope::spawn` / `ScopedJoinHandle::join`, implemented over
//! `std::thread::scope`. Matches the crossbeam calling convention —
//! `scope(|s| ...)` returns `thread::Result<R>`, spawn closures take the
//! scope handle argument, and `join` returns `thread::Result<T>` per thread.

pub mod thread {
    use std::thread as std_thread;

    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Transparent wrapper over `std::thread::Scope` so spawn closures can
    /// receive a `&Scope` argument (crossbeam's signature) that lives as
    /// long as the underlying std scope — through all implicit joins.
    #[repr(transparent)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: std_thread::Scope<'scope, 'env>,
    }

    fn wrap<'a, 'scope, 'env>(s: &'a std_thread::Scope<'scope, 'env>) -> &'a Scope<'scope, 'env> {
        // Sound: Scope is repr(transparent) over std's Scope.
        unsafe { &*(s as *const std_thread::Scope<'scope, 'env> as *const Scope<'scope, 'env>) }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this: &'scope Scope<'scope, 'env> = self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(this)),
            }
        }
    }

    /// Run `f` with a scope handle; all threads spawned on it are joined
    /// before `scope` returns. A panic in a spawned thread surfaces as
    /// `Err(payload)` here (after all threads have been joined by std),
    /// rather than unwinding through the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(wrap(s)))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panic_in_worker_is_captured() {
        let result = crate::scope(|s| {
            s.spawn(|_| panic!("worker boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn borrows_from_enclosing_stack() {
        let mut out = vec![0u32; 8];
        crate::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 10);
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let result = crate::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
