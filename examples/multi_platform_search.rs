//! Multi-platform latency prediction (§III-E): train one HW-PR-NAS with a
//! bank of per-platform latency heads, then search for each target
//! platform by switching the head — no retraining.
//!
//! ```text
//! cargo run --release --example multi_platform_search
//! ```

use hw_pr_nas::core::{HwPrNas, ModelConfig, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::moo::pareto_front;
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::search::{MeasuredEvaluator, Moea, MoeaConfig, ScoreEvaluator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(300),
        seed: 21,
    });
    let dataset = Dataset::Cifar10;
    // the paper's correlated family (§III-E) plus the odd FPGA out
    let platforms = [
        Platform::RaspberryPi4,
        Platform::Pixel3,
        Platform::FpgaZcu102,
    ];

    println!(
        "training one model with {} latency heads ...",
        platforms.len()
    );
    let (model, report) = HwPrNas::fit_multi(
        bench.entries(),
        dataset,
        &platforms,
        &ModelConfig::fast(),
        &TrainConfig::fast(),
    )?;
    println!(
        "trained {} parameters in {} epochs",
        model.parameter_count(),
        report.epochs_run
    );

    // HwPrNas is not Clone (it owns caches); share it across the three
    // platform-specific evaluators instead
    let model = std::sync::Arc::new(model);
    for platform in platforms {
        let scores_model = std::sync::Arc::clone(&model);
        let mut evaluator = ScoreEvaluator::from_fn(
            format!("HW-PR-NAS @ {platform}"),
            Box::new(move |archs| {
                scores_model
                    .predict_scores(archs, platform)
                    .map_err(|e| hw_pr_nas::search::SearchError::Surrogate(e.to_string()))
            }),
        );
        let moea = Moea::new(MoeaConfig {
            population: 24,
            generations: 12,
            ..MoeaConfig::small(SearchSpaceId::NasBench201)
        })?;
        let result = moea.run(&mut evaluator)?;
        let oracle = MeasuredEvaluator::for_bench(&bench, dataset, platform);
        let objectives: Vec<Vec<f64>> = result
            .population
            .iter()
            .map(|a| oracle.true_objectives(a))
            .collect();
        let front = pareto_front(&objectives)?;
        let best_latency = front
            .iter()
            .map(|&i| objectives[i][1])
            .fold(f64::INFINITY, f64::min);
        println!(
            "{platform:>14}: front of {} archs, fastest {best_latency:.3} ms",
            front.len()
        );
    }
    Ok(())
}
