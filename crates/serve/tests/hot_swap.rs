//! Hot-swap semantics under load: publishing v2 while v1 requests are in
//! flight must (a) let every in-flight v1 request finish on v1 weights,
//! (b) route subsequent requests to v2, and (c) produce no errors — each
//! response is bit-identical to one of the two engines' direct output,
//! and the tail of the stream is all v2.

use hwpr_core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_serve::{ModelRegistry, ServeClient, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn trained(seed: u64) -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(40),
        seed,
    });
    let data =
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    model.freeze_with(16, Precision::F32);
    Arc::new(model)
}

fn probe(n: usize) -> Vec<Architecture> {
    (0..n as u64)
        .map(|i| Architecture::nb201_from_index(i * 37 % 15625).unwrap())
        .collect()
}

fn direct_bits(nas: &Arc<HwPrNas>, archs: &[Architecture]) -> Vec<u64> {
    let frozen = nas.frozen();
    frozen
        .predict_scores(nas.encoding_cache(), archs, 0)
        .unwrap()
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

#[test]
fn inflight_requests_finish_on_old_weights_and_later_ones_see_new() {
    let v1 = trained(1);
    let v2 = trained(2);
    let archs = probe(12);
    let v1_bits = direct_bits(&v1, &archs);
    let v2_bits = direct_bits(&v2, &archs);
    assert_ne!(v1_bits, v2_bits, "fixtures must be distinguishable");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&v1));
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            batch_deadline: Duration::from_micros(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let rounds = 120;
    let client_thread = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).unwrap();
        let mut responses = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let scores = client
                .predict_scores("default", Platform::EdgeGpu, &archs)
                .expect("no request may fail across the swap");
            responses.push(scores.iter().map(|s| s.to_bits()).collect::<Vec<u64>>());
        }
        responses
    });

    // let some v1 traffic through, then hot-swap mid-stream
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(registry.publish("default", Arc::clone(&v2)), 2);

    let responses = client_thread.join().unwrap();
    assert_eq!(responses.len(), rounds);
    // every response came off exactly one engine — never a torn mix
    let mut v2_seen = false;
    for (i, bits) in responses.iter().enumerate() {
        if bits == &v2_bits {
            v2_seen = true;
        } else {
            assert_eq!(bits, &v1_bits, "response {i} matches neither engine");
            assert!(!v2_seen, "response {i} regressed from v2 back to v1");
        }
    }
    assert!(v2_seen, "the swap never became visible");
    assert_eq!(responses.last().unwrap(), &v2_bits);
    assert_eq!(registry.get("default").unwrap().version(), 2);
}

#[test]
fn saving_a_watched_path_republishes_the_model() {
    let v1 = trained(3);
    let v2 = trained(4);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&v1));

    let dir = std::env::temp_dir().join(format!("hwpr-serve-republish-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let watched = dir.join("default.json");
    let elsewhere = dir.join("other.json");

    let watch = registry.republish_on_save("default", &watched);
    // a save to some other path must not republish
    v2.save(&elsewhere).unwrap();
    assert_eq!(registry.get("default").unwrap().version(), 1);
    // a save to the watched path hot-swaps
    v2.save(&watched).unwrap();
    let served = registry.get("default").unwrap();
    assert_eq!(served.version(), 2);
    // the republished model is the reloaded v2, not v1: compare against
    // an independently loaded copy (same params, same compile path)
    let archs = probe(8);
    let reloaded_bits: Vec<u64> = served
        .frozen()
        .predict_scores(served.cache(), &archs, 0)
        .unwrap()
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let reference = Arc::new(HwPrNas::load(&watched).unwrap());
    assert_eq!(reloaded_bits, direct_bits(&reference, &archs));
    assert_ne!(reloaded_bits, direct_bits(&v1, &archs));

    // dropping the guard disarms the watch
    drop(watch);
    v1.save(&watched).unwrap();
    assert_eq!(registry.get("default").unwrap().version(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
