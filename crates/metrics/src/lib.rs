//! Ranking-correlation and regression metrics used throughout the
//! HW-PR-NAS evaluation: Kendall τ (the paper's predictor-quality metric,
//! Fig. 4 and Table I), Spearman ρ, Pearson r, RMSE/MAE and mean ±
//! standard-error summaries (Table III).
//!
//! # Examples
//!
//! ```
//! let pred = [1.0, 2.0, 3.0, 4.0];
//! let truth = [10.0, 20.0, 30.0, 40.0];
//! assert_eq!(hwpr_metrics::kendall_tau(&pred, &truth).unwrap(), 1.0);
//! ```

#![warn(missing_docs)]
mod correlation;
mod regression;
mod summary;

pub use correlation::{kendall_tau, pearson, spearman};
pub use regression::{mae, rmse};
pub use summary::{mean, std_dev, std_error, MeanStdError};

use std::error::Error;
use std::fmt;

/// Error returned when metric inputs are unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The two input slices have different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input is too short for the metric (fewer than 2 samples).
    TooFewSamples {
        /// Number of samples provided.
        len: usize,
    },
    /// The metric is undefined because an input is constant (zero variance).
    ZeroVariance,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::LengthMismatch { left, right } => {
                write!(f, "input lengths differ: {left} vs {right}")
            }
            MetricError::TooFewSamples { len } => {
                write!(f, "metric needs at least 2 samples, got {len}")
            }
            MetricError::ZeroVariance => write!(f, "metric undefined for constant input"),
        }
    }
}

impl Error for MetricError {}

/// Convenience alias for fallible metric computations.
pub type Result<T> = std::result::Result<T, MetricError>;

pub(crate) fn check_pair(a: &[f32], b: &[f32]) -> Result<()> {
    if a.len() != b.len() {
        return Err(MetricError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() < 2 {
        return Err(MetricError::TooFewSamples { len: a.len() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(MetricError::LengthMismatch { left: 1, right: 2 }
            .to_string()
            .contains("1 vs 2"));
        assert!(MetricError::TooFewSamples { len: 0 }
            .to_string()
            .contains('0'));
        assert!(!MetricError::ZeroVariance.to_string().is_empty());
    }

    #[test]
    fn check_pair_rules() {
        assert!(check_pair(&[1.0], &[1.0, 2.0]).is_err());
        assert!(check_pair(&[1.0], &[1.0]).is_err());
        assert!(check_pair(&[1.0, 2.0], &[3.0, 4.0]).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
        (2usize..30).prop_flat_map(|n| {
            (
                proptest::collection::vec(-100.0f32..100.0, n),
                proptest::collection::vec(-100.0f32..100.0, n),
            )
        })
    }

    proptest! {
        #[test]
        fn kendall_tau_in_range((a, b) in vec_pair()) {
            if let Ok(t) = kendall_tau(&a, &b) {
                prop_assert!((-1.0..=1.0).contains(&(t as f32)), "tau {t}");
            }
        }

        #[test]
        fn kendall_tau_self_is_one(a in proptest::collection::vec(-100.0f32..100.0, 2..30)) {
            // de-duplicate to avoid ties making tau-b < 1
            let mut uniq = a.clone();
            uniq.sort_by(f32::total_cmp);
            uniq.dedup();
            if uniq.len() >= 2 {
                let t = kendall_tau(&uniq, &uniq).unwrap();
                prop_assert!((t - 1.0).abs() < 1e-6);
            }
        }

        #[test]
        fn kendall_tau_antisymmetric((a, b) in vec_pair()) {
            let neg: Vec<f32> = b.iter().map(|x| -x).collect();
            if let (Ok(t1), Ok(t2)) = (kendall_tau(&a, &b), kendall_tau(&a, &neg)) {
                prop_assert!((t1 + t2).abs() < 1e-5, "{t1} vs {t2}");
            }
        }

        #[test]
        fn spearman_in_range((a, b) in vec_pair()) {
            if let Ok(r) = spearman(&a, &b) {
                prop_assert!((-1.0001..=1.0001).contains(&r));
            }
        }

        #[test]
        fn rmse_upper_bounds_mae((a, b) in vec_pair()) {
            let r = rmse(&a, &b).unwrap();
            let m = mae(&a, &b).unwrap();
            prop_assert!(r + 1e-4 >= m, "rmse {r} < mae {m}");
        }
    }
}
