//! Multi-layer perceptron with configurable activation and dropout.

use crate::layers::{Dropout, LayerRng, Linear};
use crate::params::{Binder, Params};
use crate::{NnError, Result};
use hwpr_autograd::{Act, Var};
use hwpr_tensor::Init;

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit (default).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Configuration for [`Mlp::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a single affine map).
    pub hidden: Vec<usize>,
    /// Output dimension.
    pub output_dim: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// Dropout probability applied after each hidden activation.
    pub dropout: f32,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl MlpConfig {
    /// Convenience constructor with ReLU and no dropout.
    pub fn new(input_dim: usize, hidden: Vec<usize>, output_dim: usize, seed: u64) -> Self {
        Self {
            input_dim,
            hidden,
            output_dim,
            activation: Activation::Relu,
            dropout: 0.0,
            seed,
        }
    }
}

/// Fully-connected feed-forward network; the regressor head used by both
/// HW-PR-NAS predictors and the scalable variant.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    dropout: Dropout,
}

impl Mlp {
    /// Builds an MLP per `config`, registering parameters in `params`.
    ///
    /// # Errors
    ///
    /// Returns a config error when any dimension is zero.
    pub fn new(params: &mut Params, name: &str, config: &MlpConfig) -> Result<Self> {
        if config.input_dim == 0 || config.output_dim == 0 || config.hidden.contains(&0) {
            return Err(NnError::Config(format!(
                "MLP dimensions must be nonzero: {config:?}"
            )));
        }
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.output_dim);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let init = match config.activation {
                    Activation::Relu => Init::He,
                    _ => Init::Xavier,
                };
                Linear::new(
                    params,
                    &format!("{name}.fc{i}"),
                    w[0],
                    w[1],
                    init,
                    config.seed.wrapping_add(i as u64),
                    true,
                )
            })
            .collect();
        Ok(Self {
            layers,
            activation: config.activation,
            dropout: Dropout::new(config.dropout),
        })
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Applies the network to `x` (`[batch, input_dim]`). The final layer
    /// is linear (no activation), as appropriate for regression/scoring.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from mismatched inputs.
    pub fn forward(&self, binder: &mut Binder<'_, '_>, x: Var, rng: &mut LayerRng) -> Result<Var> {
        let mut h = x;
        let last = self.layers.len() - 1;
        let act = match self.activation {
            Activation::Relu => Act::Relu,
            Activation::Tanh => Act::Tanh,
            Activation::Sigmoid => Act::Sigmoid,
        };
        for (i, layer) in self.layers.iter().enumerate() {
            if i < last {
                // hidden layers fuse GEMM + bias + activation into one node
                h = layer.forward_act(binder, h, act)?;
                h = self.dropout.forward(binder, h, rng)?;
            } else {
                h = layer.forward(binder, h)?;
            }
        }
        Ok(h)
    }

    /// Compiles the network for tape-free inference: every layer's weight
    /// panel is packed once and dropout is statically elided (it is already
    /// the identity at inference).
    pub fn freeze(&self, params: &Params) -> crate::infer::FrozenMlp {
        self.freeze_with(params, hwpr_tensor::Precision::F32)
    }

    /// [`Mlp::freeze`] with every layer's weight panel stored at
    /// `precision` (scalar output heads are exempted from int8).
    pub fn freeze_with(
        &self,
        params: &Params,
        precision: hwpr_tensor::Precision,
    ) -> crate::infer::FrozenMlp {
        let act = match self.activation {
            Activation::Relu => Act::Relu,
            Activation::Tanh => Act::Tanh,
            Activation::Sigmoid => Act::Sigmoid,
        };
        crate::infer::FrozenMlp::from_parts(
            self.layers
                .iter()
                .map(|l| l.freeze_with(params, precision))
                .collect(),
            act,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;
    use hwpr_tensor::Matrix;
    use rand_chacha::rand_core::SeedableRng;

    fn rng() -> LayerRng {
        LayerRng::seed_from_u64(0)
    }

    #[test]
    fn builds_and_runs() {
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", &MlpConfig::new(4, vec![8, 8], 1, 7)).unwrap();
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.output_dim(), 1);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(5, 4));
        let y = mlp.forward(&mut binder, x, &mut rng()).unwrap();
        assert_eq!(tape.value(y).shape(), (5, 1));
    }

    #[test]
    fn rejects_zero_dims() {
        let mut params = Params::new();
        assert!(Mlp::new(&mut params, "m", &MlpConfig::new(0, vec![], 1, 0)).is_err());
        assert!(Mlp::new(&mut params, "m", &MlpConfig::new(2, vec![0], 1, 0)).is_err());
    }

    #[test]
    fn no_hidden_layer_is_affine() {
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", &MlpConfig::new(2, vec![], 3, 1)).unwrap();
        assert_eq!(mlp.depth(), 1);
    }

    #[test]
    fn activations_differ() {
        let run = |act: Activation| {
            let mut params = Params::new();
            let mut cfg = MlpConfig::new(3, vec![4], 2, 9);
            cfg.activation = act;
            let mlp = Mlp::new(&mut params, "m", &cfg).unwrap();
            let mut tape = Tape::new();
            let mut binder = Binder::new(&mut tape, &params);
            let x = binder.input(Matrix::filled(1, 3, 0.5));
            let y = mlp.forward(&mut binder, x, &mut rng()).unwrap();
            tape.value(y).clone()
        };
        let relu = run(Activation::Relu);
        let tanh = run(Activation::Tanh);
        assert_ne!(relu, tanh);
    }

    #[test]
    fn gradients_reach_all_layers() {
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", &MlpConfig::new(3, vec![4, 4], 1, 2)).unwrap();
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let x = binder.input(Matrix::ones(6, 3));
        let y = mlp.forward(&mut binder, x, &mut rng()).unwrap();
        let loss = binder.tape().mean_all(y);
        let grads = binder.finish(loss).unwrap();
        // 3 layers x (w, b)
        assert_eq!(grads.iter().filter(|g| g.is_some()).count(), 6);
    }
}
