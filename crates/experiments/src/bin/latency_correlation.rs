//! Regenerates the §III-E cross-platform latency correlation study.
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::latency_corr::run(&harness);
    hwpr_experiments::write_report("latency_correlation", &report);
}
