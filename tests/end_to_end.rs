//! Cross-crate integration: benchmark table → surrogate training → MOEA →
//! hypervolume, exercised through the facade crate's public API.

use hw_pr_nas::core::baselines::SurrogatePair;
use hw_pr_nas::core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::moo::{hypervolume, nadir_reference_point, pareto_front};
use hw_pr_nas::nasbench::{Architecture, Dataset, SearchSpaceId};
use hw_pr_nas::search::{
    random_search, HwPrNasEvaluator, MeasuredEvaluator, Moea, MoeaConfig, PairEvaluator,
    RandomSearchConfig, ScoreEvaluator,
};

fn bench(n: usize, seed: u64) -> SimBench {
    SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed,
    })
}

fn small_moea() -> Moea {
    Moea::new(MoeaConfig {
        population: 16,
        generations: 10,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })
    .expect("valid config")
}

fn population_hv(pop: &[Architecture], oracle: &MeasuredEvaluator, reference: &[f64]) -> f64 {
    let objs: Vec<Vec<f64>> = pop.iter().map(|a| oracle.true_objectives(a)).collect();
    let front: Vec<Vec<f64>> = pareto_front(&objs)
        .unwrap()
        .into_iter()
        .map(|i| objs[i].clone())
        .collect();
    hypervolume(&front, reference).unwrap()
}

#[test]
fn surrogate_guided_search_beats_unguided_sampling() {
    let b = bench(420, 42);
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let data = SurrogateDataset::from_simbench(&b, dataset, platform).unwrap();
    let mut cfg = TrainConfig::tiny();
    cfg.epochs = 16;
    cfg.fusion_finetune_epochs = 8;
    let (model, report) = HwPrNas::fit(&data, &ModelConfig::tiny(), &cfg).unwrap();
    assert!(report.val_rank_tau > 0.25, "tau {}", report.val_rank_tau);

    let mut hwpr_eval = HwPrNasEvaluator::new(model, platform);
    let moea_result = small_moea().run(&mut hwpr_eval).unwrap();

    // unguided baseline: keep an arbitrary subset of the same number of
    // uniform samples (scores constant => arbitrary selection)
    let mut flat = ScoreEvaluator::from_fn("flat", Box::new(|archs| Ok(vec![0.0; archs.len()])));
    let random_result = random_search(
        &RandomSearchConfig {
            samples: moea_result.evaluations,
            keep: 16,
            spaces: vec![SearchSpaceId::NasBench201],
            budget: None,
            seed: 3,
        },
        &mut flat,
    )
    .unwrap();

    let oracle = MeasuredEvaluator::for_bench(&b, dataset, platform);
    let mut all: Vec<Vec<f64>> = Vec::new();
    for pop in [&moea_result.population, &random_result.population] {
        all.extend(pop.iter().map(|a| oracle.true_objectives(a)));
    }
    let reference = nadir_reference_point(&all, 1.0).unwrap();
    let hv_moea = population_hv(&moea_result.population, &oracle, &reference);
    let hv_random = population_hv(&random_result.population, &oracle, &reference);
    assert!(
        hv_moea > hv_random * 0.95,
        "surrogate-guided search should not lose badly: {hv_moea} vs {hv_random}"
    );
}

#[test]
fn pair_surrogates_drive_the_same_search_loop() {
    let b = bench(160, 7);
    let data = SurrogateDataset::from_simbench(&b, Dataset::Cifar100, Platform::Pixel3).unwrap();
    let (pair, _) =
        SurrogatePair::brp_nas(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    let mut eval = PairEvaluator::new(pair);
    let result = small_moea().run(&mut eval).unwrap();
    assert_eq!(result.population.len(), 16);
    assert_eq!(result.surrogate_calls, result.evaluations * 2);
}

#[test]
fn measured_search_charges_simulated_time() {
    let b = bench(60, 1);
    let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::Eyeriss);
    let result = small_moea().run(&mut eval).unwrap();
    assert!(result.simulated_time.as_secs_f64() > 0.0);
    // caching: repeat architectures are not re-measured, so the charged
    // time is at most evaluations * cost
    assert!(
        result.simulated_time.as_secs_f64()
            <= result.evaluations as f64 * MeasuredEvaluator::DEFAULT_SECONDS_PER_EVAL + 1e-6
    );
}

#[test]
fn search_results_are_reproducible_across_processes_logic() {
    // the same seeds must give identical populations (pure functions of
    // the seed + data)
    let b = bench(140, 9);
    let data = SurrogateDataset::from_simbench(&b, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let run = || {
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let mut eval = HwPrNasEvaluator::new(model, Platform::EdgeGpu);
        small_moea().run(&mut eval).unwrap().population
    };
    assert_eq!(run(), run());
}

#[test]
fn mixed_space_end_to_end() {
    let nb = bench(90, 5);
    let fb = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::FBNet,
        sample_size: Some(60),
        seed: 5,
    });
    let mut entries = nb.entries().to_vec();
    entries.extend_from_slice(fb.entries());
    let data =
        SurrogateDataset::from_entries(&entries, Dataset::Cifar10, Platform::Pixel3).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    let moea = Moea::new(MoeaConfig {
        population: 12,
        generations: 5,
        spaces: vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet],
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })
    .unwrap();
    let mut eval = HwPrNasEvaluator::new(model, Platform::Pixel3);
    let result = moea.run(&mut eval).unwrap();
    assert_eq!(result.population.len(), 12);
}
