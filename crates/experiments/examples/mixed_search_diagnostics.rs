//! Dev diagnostic: space proportions through a mixed-space MOEA run.
use hwpr_core::nb201_fraction;
use hwpr_experiments::{Harness, Scale};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_search::{HwPrNasEvaluator, Moea};

fn main() {
    let h = Harness::with_scale(Scale::Fast);
    for platform in [
        Platform::EdgeGpu,
        Platform::EdgeTpu,
        Platform::FpgaZc706,
        Platform::Pixel3,
    ] {
        let data = h.mixed_dataset(Dataset::Cifar10, platform);
        let model = h.train_hw_pr_nas(&data, 2000);
        let cfg = h
            .scale
            .moea_config(vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet])
            .with_seed(2000);
        let moea = Moea::new(cfg).unwrap();
        let mut eval = HwPrNasEvaluator::new(model, platform);
        let result = moea.run(&mut eval).unwrap();
        println!(
            "{platform:>12}: final population NB201 {:.0}%",
            nb201_fraction(&result.population) * 100.0
        );
    }
}
