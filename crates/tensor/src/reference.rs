//! Naive GEMM loop nests kept as the ground truth for the blocked kernels
//! in [`crate::gemm`]. Differential proptests assert the blocked paths
//! match these within float tolerance, and the `matmul_kernels` criterion
//! bench measures the speedup. These are the original `Matrix::matmul*`
//! implementations, unchanged.
//!
//! The rational-divide activations retired from [`crate::fastmath`]
//! ([`rational_tanh`], [`rational_sigmoid`]) live here for the same
//! reason: they are the exactly-divided form the division-free kernels
//! are pinned against, and the `activation_kernels` bench measures what
//! dropping the divide buys.

use crate::matrix::Matrix;
use crate::shape::ShapeError;
use crate::Result;

/// Naive `a @ b` (i-k-j loop order with a zero-skip branch).
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let av = a.as_slice();
    let bv = b.as_slice();
    let cv = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let crow = &mut cv[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for (c, &b) in crow.iter_mut().zip(brow) {
                *c += aik * b;
            }
        }
    }
    Ok(out)
}

/// Naive `a^T @ b` without materialising the transpose.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(ShapeError::new("matmul_tn", a.shape(), b.shape()));
    }
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let av = a.as_slice();
    let bv = b.as_slice();
    let cv = out.as_mut_slice();
    for kk in 0..k {
        let arow = &av[kk * m..(kk + 1) * m];
        let brow = &bv[kk * n..(kk + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (c, &b) in crow.iter_mut().zip(brow) {
                *c += aval * b;
            }
        }
    }
    Ok(out)
}

/// Naive `a @ b^T` without materialising the transpose.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_nt", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0.0;
            for kk in 0..k {
                acc += arow[kk] * brow[kk];
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

/// The PR 2 `fast_tanh`: the same clamped degree-13/6 minimax rational
/// as [`crate::fast_tanh`], but with the quotient computed by an exactly
/// rounded `p / q` divide. Kept as the ground truth the division-free
/// form is differenced against (the two agree to a few ULPs; the unit
/// tests in [`crate::fastmath`] pin the gap).
#[inline]
pub fn rational_tanh(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_31;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619e-4;
    p = p * x2 + 4.893_524_6e-3;
    p *= x;
    let mut q = 1.198_258_4e-6;
    q = q * x2 + 1.185_347_1e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525e-3;
    p / q
}

/// The rational-divide sigmoid, via the same exact tanh identity as
/// [`crate::fast_sigmoid`].
#[inline]
pub fn rational_sigmoid(x: f32) -> f32 {
    0.5 + 0.5 * rational_tanh(0.5 * x)
}
