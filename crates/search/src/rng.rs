//! SplitMix64: the island-model RNG.
//!
//! Each island owns an independent stream derived from the run seed and
//! its island id ([`SplitMix64::stream`]), so an island's trajectory
//! within an epoch depends only on its own state — the property that
//! makes results independent of how islands are packed onto executor
//! lanes. The entire generator state is one `u64`, so checkpoints
//! persist it exactly ([`SplitMix64::state`] /
//! [`SplitMix64::from_state`]) — unlike the block-cipher generators,
//! whose buffered internal state has no stable serial form.

use rand::RngCore;

/// Weyl-sequence increment (the golden-ratio constant of splitmix64).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 generator of Steele, Lea & Flood: a Weyl sequence
/// finalised by a 64-bit avalanche mix. Passes BigCrush; one `u64` of
/// state; every step is a handful of arithmetic ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Stream `stream` of the run seeded by `seed`: the seed is avalanched
    /// together with the stream index so neighbouring islands start at
    /// statistically unrelated points of the sequence space.
    pub fn stream(seed: u64, stream: u64) -> Self {
        Self {
            state: mix(seed ^ mix(stream.wrapping_add(1).wrapping_mul(GAMMA))),
        }
    }

    /// The current state word — everything a checkpoint needs.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a generator from a checkpointed [`Self::state`].
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

/// The splitmix64 avalanche finaliser.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_reference_vectors() {
        // the published seed-0 sequence of Vigna's splitmix64.c
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        // determinism is the real contract: same seed, same sequence
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut s0 = SplitMix64::stream(7, 0);
        let mut s1 = SplitMix64::stream(7, 1);
        assert_ne!(s0.state(), s1.state());
        let first0 = s0.next_u64();
        assert_ne!(first0, s1.next_u64());
        // re-deriving the stream replays it
        let mut again = SplitMix64::stream(7, 0);
        assert_eq!(again.next_u64(), first0);
    }

    #[test]
    fn state_round_trips_mid_sequence() {
        let mut rng = SplitMix64::stream(99, 3);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = SplitMix64::from_state(rng.state());
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn drives_the_rand_facade() {
        let mut rng = SplitMix64::new(5);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let i = rng.gen_range(0..10usize);
        assert!(i < 10);
        let _ = rng.gen_bool(0.5);
    }
}
