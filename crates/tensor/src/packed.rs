//! Pre-packed GEMM operands.
//!
//! The blocked driver in [`crate::gemm`] packs its `B` operand into
//! cache-friendly panels on every call. When the same `B` feeds several
//! GEMMs before it changes — an LSTM weight multiplied once per sequence
//! step, forward and backward — that packing is pure repeated work.
//! [`PackedWeight`] materialises the packed panels once; the
//! `matmul_prepacked*` entry points then consume them directly.
//!
//! Packing order matches the driver exactly, so f32 prepacked products are
//! bit-identical to their unpacked counterparts. The backing buffer is
//! reused across [`PackedWeight::pack`] calls (capacity is retained),
//! keeping repacking allocation-free in steady state.
//!
//! Panels can also be stored at reduced precision ([`Precision::F16`],
//! [`Precision::Int8`], see [`crate::quant`]) via
//! [`PackedWeight::pack_with`] — chosen once at freeze time by the
//! inference engine, transparent to [`Matrix::matmul_prepacked_into`].

use crate::gemm::{self, Layout};
use crate::matrix::Matrix;
use crate::quant::{self, Int8Panels, Precision};
use crate::shape::ShapeError;
use crate::static_gemm::{self, StaticKernelFn};
use crate::Result;

/// Precision-specific panel storage.
#[derive(Debug)]
enum Panels {
    /// Driver-order f32 panels (bit-identical to the unpacked GEMM).
    F32(Vec<f32>),
    /// Driver-order binary16 panels (f32 accumulate).
    F16(Vec<u16>),
    /// Per-output-channel int8 strips (exact i32 accumulate).
    Int8(Int8Panels),
}

impl Default for Panels {
    fn default() -> Self {
        Panels::F32(Vec::new())
    }
}

/// A `k x n` GEMM `B` operand packed into the driver's panel layout.
#[derive(Debug, Default)]
pub struct PackedWeight {
    k: usize,
    n: usize,
    panels: Panels,
    /// Monomorphized fixed-shape kernel resolved at
    /// [`PackedWeight::pack_for_inference`] time, `None` on the dynamic
    /// (training) packing paths and for shapes outside the registry.
    static_kernel: Option<StaticKernelFn>,
}

impl PackedWeight {
    /// An empty pack; fill it with [`PackedWeight::pack`] or
    /// [`PackedWeight::pack_transposed`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs `b` as the `B` operand of `A @ B` at full precision.
    pub fn pack(&mut self, b: &Matrix) {
        self.pack_with(b, Precision::F32);
    }

    /// Packs `b` as the `B` operand of `A @ B`, storing the panels at
    /// `precision`. Existing buffers of the same precision retain their
    /// capacity across repacks.
    pub fn pack_with(&mut self, b: &Matrix, precision: Precision) {
        let (k, n) = b.shape();
        self.k = k;
        self.n = n;
        self.static_kernel = None;
        match precision {
            Precision::F32 => {
                let data = match &mut self.panels {
                    Panels::F32(data) => data,
                    other => {
                        *other = Panels::F32(Vec::new());
                        let Panels::F32(data) = other else {
                            unreachable!()
                        };
                        data
                    }
                };
                gemm::pack_b_full(b.as_slice(), Layout::RowMajor, (k, n), data);
            }
            Precision::F16 => {
                // pack in driver order at f32, then narrow lane for lane
                let mut f32_panels = Vec::new();
                gemm::pack_b_full(b.as_slice(), Layout::RowMajor, (k, n), &mut f32_panels);
                let halfs = match &mut self.panels {
                    Panels::F16(halfs) => halfs,
                    other => {
                        *other = Panels::F16(Vec::new());
                        let Panels::F16(halfs) = other else {
                            unreachable!()
                        };
                        halfs
                    }
                };
                quant::encode_half_panels(&f32_panels, halfs);
            }
            Precision::Int8 => {
                crate::telemetry::note_pack();
                let panels = match &mut self.panels {
                    Panels::Int8(panels) => panels,
                    other => {
                        *other = Panels::Int8(Int8Panels::default());
                        let Panels::Int8(panels) = other else {
                            unreachable!()
                        };
                        panels
                    }
                };
                panels.pack(b.as_slice(), (k, n));
            }
        }
    }

    /// [`PackedWeight::pack_with`] plus static-shape kernel resolution:
    /// when the panels are f32 and `(k, n)` is in the fixed-shape
    /// registry ([`crate::STATIC_SHAPES`]), subsequent
    /// [`Matrix::matmul_prepacked_into`] calls dispatch to the
    /// monomorphized kernel instead of the blocked driver. Results are
    /// bit-identical either way; the frozen inference engine calls this
    /// at `freeze()` time, while the training paths keep the plain
    /// dynamic packs (so repacking per optimiser step never pays the
    /// lookup).
    pub fn pack_for_inference(&mut self, b: &Matrix, precision: Precision) {
        self.pack_with(b, precision);
        if precision == Precision::F32 {
            self.static_kernel = static_gemm::lookup(self.k, self.n);
            if self.static_kernel.is_some() {
                crate::telemetry::note_static_pack();
            }
        }
    }

    /// Whether [`Matrix::matmul_prepacked_into`] will dispatch to a
    /// monomorphized fixed-shape kernel for this pack.
    pub fn has_static_kernel(&self) -> bool {
        self.static_kernel.is_some()
    }

    /// Packs `b`'s transpose as the `B` operand of `A @ B^T` — the
    /// prepacked counterpart of [`Matrix::matmul_nt_into`]'s `rhs`.
    /// Always full precision (this form feeds the training path).
    pub fn pack_transposed(&mut self, b: &Matrix) {
        let (n, k) = b.shape();
        self.k = k;
        self.n = n;
        self.static_kernel = None;
        let data = match &mut self.panels {
            Panels::F32(data) => data,
            other => {
                *other = Panels::F32(Vec::new());
                let Panels::F32(data) = other else {
                    unreachable!()
                };
                data
            }
        };
        gemm::pack_b_full(b.as_slice(), Layout::Transposed, (k, n), data);
    }

    /// Logical shape `(k, n)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// The storage precision the panels were packed at.
    pub fn precision(&self) -> Precision {
        match &self.panels {
            Panels::F32(_) => Precision::F32,
            Panels::F16(_) => Precision::F16,
            Panels::Int8(_) => Precision::Int8,
        }
    }
}

impl Matrix {
    /// Matrix product `self @ b` against a pre-packed `b`, written into
    /// `out` (overwritten; no zeroing required beforehand). With f32
    /// panels this is bit-identical to [`Matrix::matmul_into`] with the
    /// unpacked operand; reduced-precision panels dispatch to the
    /// quantised drivers in [`crate::quant`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != b.k` or `out` is not
    /// `self.rows() x b.n`.
    pub fn matmul_prepacked_into(&self, b: &PackedWeight, out: &mut Matrix) -> Result<()> {
        let (m, k) = self.shape();
        let (bk, n) = b.shape();
        if k != bk {
            return Err(ShapeError::new(
                "matmul_prepacked_into",
                self.shape(),
                (bk, n),
            ));
        }
        if out.shape() != (m, n) {
            return Err(ShapeError::new(
                "matmul_prepacked_into",
                (m, n),
                out.shape(),
            ));
        }
        match &b.panels {
            Panels::F32(data) => {
                if let Some(kernel) = b.static_kernel {
                    crate::telemetry::note_static_gemm((m, n, k));
                    kernel(self.as_slice(), m, data, out.as_mut_slice());
                } else {
                    gemm::gemm_prepacked(
                        (m, n, k),
                        self.as_slice(),
                        Layout::RowMajor,
                        data,
                        out.as_mut_slice(),
                    );
                }
            }
            Panels::F16(halfs) => {
                quant::gemm_prepacked_f16((m, n, k), self.as_slice(), halfs, out.as_mut_slice())
            }
            Panels::Int8(panels) => {
                quant::gemm_prepacked_i8((m, n, k), self.as_slice(), panels, out.as_mut_slice())
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i * 13 + salt * 7) % 19) as f32 - 9.0) * 0.11)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn prepacked_matches_matmul_bit_identically() {
        // sizes straddle the KC/NC/MC block boundaries
        for &(m, k, n) in &[(3, 5, 7), (128, 273, 900), (64, 300, 520), (1, 257, 513)] {
            let a = det(m, k, 1);
            let b = det(k, n, 2);
            let mut pw = PackedWeight::new();
            pw.pack(&b);
            assert_eq!(pw.precision(), Precision::F32);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let expect = a.matmul(&b).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_overwrites_dirty_output() {
        let a = det(9, 11, 1);
        let b = det(11, 6, 2);
        let mut pw = PackedWeight::new();
        pw.pack(&b);
        let mut dirty = Matrix::from_vec(9, 6, vec![7.5; 54]).unwrap();
        a.matmul_prepacked_into(&pw, &mut dirty).unwrap();
        let expect = a.matmul(&b).unwrap();
        assert_eq!(dirty.as_slice(), expect.as_slice());
    }

    #[test]
    fn prepacked_transposed_matches_matmul_nt() {
        for &(m, k, n) in &[(4, 6, 3), (128, 900, 273), (33, 511, 129)] {
            let a = det(m, k, 3);
            let b = det(n, k, 4); // logical B = b^T
            let mut pw = PackedWeight::new();
            pw.pack_transposed(&b);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let mut expect = Matrix::zeros(m, n);
            a.matmul_nt_into(&b, &mut expect).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn f16_panels_match_a_half_rounded_reference() {
        // the f16 product must equal the f32 product against a weight
        // whose every entry was rounded through binary16
        for &(m, k, n) in &[(5, 7, 9), (33, 48, 20), (64, 300, 520)] {
            let a = det(m, k, 5);
            let b = det(k, n, 6);
            let rounded = Matrix::from_vec(
                k,
                n,
                b.as_slice()
                    .iter()
                    .map(|&v| crate::quant::half_to_f32(crate::quant::f32_to_half(v)))
                    .collect(),
            )
            .unwrap();
            let mut pw = PackedWeight::new();
            pw.pack_with(&b, Precision::F16);
            assert_eq!(pw.precision(), Precision::F16);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let mut expect = Matrix::zeros(m, n);
            let mut ref_pack = PackedWeight::new();
            ref_pack.pack(&rounded);
            a.matmul_prepacked_into(&ref_pack, &mut expect).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn int8_panels_approximate_the_f32_product() {
        for &(m, k, n) in &[(5, 8, 9), (33, 48, 20), (17, 29, 16)] {
            let a = det(m, k, 7);
            let b = det(k, n, 8);
            let mut pw = PackedWeight::new();
            pw.pack_with(&b, Precision::Int8);
            assert_eq!(pw.precision(), Precision::Int8);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let expect = a.matmul(&b).unwrap();
            // two 1/127 quantisation grids; error is bounded by the
            // product of the row/column maxima times ~2/127
            for (i, (&got, &want)) in out.as_slice().iter().zip(expect.as_slice()).enumerate() {
                let r = i / n;
                let amax = a.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let tol = 2.5 / 127.0 * amax * (k as f32).sqrt() * 2.0 + 1e-5;
                assert!(
                    (got - want).abs() <= tol,
                    "{m}x{k}x{n} [{i}]: {got} vs {want} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn int8_rows_are_batch_split_invariant() {
        // quantisation is per activation row, so any split of the batch
        // must reproduce the same output bits
        let a = det(12, 20, 9);
        let b = det(20, 10, 10);
        let mut pw = PackedWeight::new();
        pw.pack_with(&b, Precision::Int8);
        let mut full = Matrix::zeros(12, 10);
        a.matmul_prepacked_into(&pw, &mut full).unwrap();
        for split in [1usize, 5, 7] {
            let top = a.slice_rows(0, split);
            let bottom = a.slice_rows(split, 12);
            let mut out_top = Matrix::zeros(split, 10);
            let mut out_bottom = Matrix::zeros(12 - split, 10);
            top.matmul_prepacked_into(&pw, &mut out_top).unwrap();
            bottom.matmul_prepacked_into(&pw, &mut out_bottom).unwrap();
            let joined: Vec<f32> = out_top
                .as_slice()
                .iter()
                .chain(out_bottom.as_slice())
                .copied()
                .collect();
            assert_eq!(joined, full.as_slice(), "split at {split}");
        }
    }

    #[test]
    fn inference_pack_binds_and_matches_the_dynamic_path() {
        // (20, 48) is in the fixed-shape registry: the inference pack
        // must resolve the monomorphized kernel and produce the same
        // bits as the dynamic driver
        let b = det(20, 48, 11);
        let mut fast = PackedWeight::new();
        fast.pack_for_inference(&b, Precision::F32);
        assert!(fast.has_static_kernel());
        let mut dynamic = PackedWeight::new();
        dynamic.pack(&b);
        assert!(!dynamic.has_static_kernel());
        for m in [1usize, 8, 13, 64] {
            let a = det(m, 20, m);
            let mut got = Matrix::zeros(m, 48);
            let mut expect = Matrix::zeros(m, 48);
            a.matmul_prepacked_into(&fast, &mut got).unwrap();
            a.matmul_prepacked_into(&dynamic, &mut expect).unwrap();
            assert_eq!(got.as_slice(), expect.as_slice(), "m = {m}");
        }
    }

    #[test]
    fn inference_pack_falls_back_off_registry() {
        // unlisted shape: stays on the dynamic driver
        let b = det(19, 47, 12);
        let mut pw = PackedWeight::new();
        pw.pack_for_inference(&b, Precision::F32);
        assert!(!pw.has_static_kernel());
        // reduced precision never binds a static kernel (quantised
        // drivers have their own epilogues)
        let mut half = PackedWeight::new();
        half.pack_for_inference(&det(20, 48, 13), Precision::F16);
        assert!(!half.has_static_kernel());
        // and a dynamic repack drops a previously bound kernel
        let mut repacked = PackedWeight::new();
        repacked.pack_for_inference(&det(20, 48, 14), Precision::F32);
        assert!(repacked.has_static_kernel());
        repacked.pack(&det(20, 48, 15));
        assert!(!repacked.has_static_kernel());
    }

    #[test]
    fn repacking_reuses_capacity() {
        let mut pw = PackedWeight::new();
        pw.pack(&det(300, 600, 5));
        let Panels::F32(data) = &pw.panels else {
            panic!("expected f32 panels")
        };
        let cap = data.capacity();
        pw.pack(&det(300, 600, 6));
        let Panels::F32(data) = &pw.panels else {
            panic!("expected f32 panels")
        };
        assert_eq!(data.capacity(), cap);
    }

    #[test]
    fn prepacked_rejects_bad_shapes() {
        let a = det(4, 5, 1);
        let mut pw = PackedWeight::new();
        pw.pack(&det(6, 3, 2));
        let mut out = Matrix::zeros(4, 3);
        assert!(a.matmul_prepacked_into(&pw, &mut out).is_err());
    }
}
