//! [`ParetoArchive`]: a global non-dominated archive with ordered,
//! shard-independent merges.
//!
//! The island-model search maintains one global elite archive fed by many
//! per-island fronts. The archive keeps a mutually non-dominated point
//! set **sorted lexicographically by objectives** (ties impossible: an
//! exact duplicate is weakly dominated and rejected), so the archived
//! set — and its iteration order — depends only on *which* points were
//! ever offered, never on the chunking or interleaving of the offers.
//! That is the property that makes the island merge deterministic across
//! executor counts: merging per-island fronts island-by-island produces
//! a front set-identical to pushing the whole union through one
//! [`crate::MooWorkspace`] sort (proven by a proptest differential).
//!
//! Each accepted point carries a caller-supplied `tag` (the island
//! search uses it to key back into an architecture store). Inserts are
//! O(N·M) scans — archives hold at most a few hundred elites, where the
//! scan is faster than maintaining the CSR machinery of the workspace.

use crate::{MooError, Result};

/// One archived elite: an objective vector plus the caller's tag.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// Minimisation objectives.
    pub objectives: Vec<f64>,
    /// Caller-supplied payload key (e.g. an architecture-store index).
    pub tag: u64,
}

/// A mutually non-dominated archive with insertion-order-independent
/// contents (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use hwpr_moo::ParetoArchive;
///
/// let mut archive = ParetoArchive::new();
/// assert!(archive.insert(&[1.0, 4.0], 0).unwrap());
/// assert!(archive.insert(&[4.0, 1.0], 1).unwrap());
/// assert!(!archive.insert(&[5.0, 5.0], 2).unwrap()); // dominated
/// assert!(archive.insert(&[0.5, 0.5], 3).unwrap()); // dominates both
/// assert_eq!(archive.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    /// Objective dimensionality, fixed by the first accepted point.
    dim: Option<usize>,
    /// Mutually non-dominated, sorted lexicographically by objectives.
    members: Vec<ArchiveEntry>,
    offered: u64,
    accepted: u64,
}

impl ParetoArchive {
    /// Creates an empty archive; the dimensionality is fixed by the
    /// first offered point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one point. Returns `true` when the archive changed: the
    /// point was not weakly dominated by (or equal to) a member, so it
    /// joined the front and every member it dominates was evicted.
    ///
    /// # Errors
    ///
    /// Returns [`MooError::NonFinite`] for non-finite coordinates,
    /// [`MooError::EmptySet`] for an empty vector and
    /// [`MooError::DimensionMismatch`] when the dimensionality differs
    /// from earlier offers.
    pub fn insert(&mut self, objectives: &[f64], tag: u64) -> Result<bool> {
        if objectives.is_empty() {
            return Err(MooError::EmptySet);
        }
        if objectives.iter().any(|v| !v.is_finite()) {
            return Err(MooError::NonFinite);
        }
        match self.dim {
            Some(dim) if dim != objectives.len() => {
                return Err(MooError::DimensionMismatch {
                    expected: dim,
                    found: objectives.len(),
                });
            }
            _ => self.dim = Some(objectives.len()),
        }
        self.offered += 1;
        if self
            .members
            .iter()
            .any(|m| weakly_dominates(&m.objectives, objectives))
        {
            return Ok(false);
        }
        self.accepted += 1;
        // evict everything the newcomer dominates (strictly: equals were
        // rejected above as weakly dominated)
        self.members
            .retain(|m| !weakly_dominates(objectives, &m.objectives));
        let pos = self
            .members
            .partition_point(|m| lex_less(&m.objectives, objectives));
        self.members.insert(
            pos,
            ArchiveEntry {
                objectives: objectives.to_vec(),
                tag,
            },
        );
        Ok(true)
    }

    /// Offers every `(point, tag)` pair of a front in order; returns how
    /// many were accepted. Offer order cannot change the final archive
    /// *set* — only which of two exactly-equal points' tags survives,
    /// which ordered island merges keep deterministic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::insert`]; earlier points of the batch
    /// stay merged when a later one is rejected.
    pub fn extend_from<'a, I>(&mut self, points: I) -> Result<usize>
    where
        I: IntoIterator<Item = (&'a [f64], u64)>,
    {
        let mut changed = 0;
        for (p, tag) in points {
            if self.insert(p, tag)? {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// The archived front, sorted lexicographically by objectives.
    pub fn members(&self) -> &[ArchiveEntry] {
        &self.members
    }

    /// Number of archived elites.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the archive holds no points.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total points offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers that changed the front.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Drops all members (capacity and counters are kept).
    pub fn clear(&mut self) {
        self.members.clear();
        self.dim = None;
    }
}

/// `a` weakly dominates `b`: no-worse everywhere (equal counts).
fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Strict lexicographic order over objective vectors (total over the
/// finite, equal-length vectors the archive holds).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_non_dominated_set() {
        let mut archive = ParetoArchive::new();
        assert!(archive.insert(&[2.0, 2.0], 0).unwrap());
        assert!(archive.insert(&[1.0, 3.0], 1).unwrap());
        assert!(!archive.insert(&[3.0, 3.0], 2).unwrap()); // dominated
        assert!(!archive.insert(&[2.0, 2.0], 3).unwrap()); // duplicate
        assert!(archive.insert(&[3.0, 1.0], 4).unwrap());
        assert_eq!(archive.len(), 3);
        // sorted lexicographically by objectives
        let objs: Vec<&[f64]> = archive
            .members()
            .iter()
            .map(|m| m.objectives.as_slice())
            .collect();
        assert_eq!(objs, vec![&[1.0, 3.0][..], &[2.0, 2.0], &[3.0, 1.0]]);
        assert_eq!(archive.offered(), 5);
        assert_eq!(archive.accepted(), 3);
    }

    #[test]
    fn dominating_insert_evicts_the_run() {
        let mut archive = ParetoArchive::new();
        for (i, p) in [[2.0, 8.0], [4.0, 6.0], [6.0, 4.0], [8.0, 2.0]]
            .iter()
            .enumerate()
        {
            assert!(archive.insert(p, i as u64).unwrap());
        }
        assert!(archive.insert(&[3.0, 3.0], 9).unwrap());
        let objs: Vec<&[f64]> = archive
            .members()
            .iter()
            .map(|m| m.objectives.as_slice())
            .collect();
        assert_eq!(objs, vec![&[2.0, 8.0][..], &[3.0, 3.0], &[8.0, 2.0]]);
        assert_eq!(archive.members()[1].tag, 9);
    }

    #[test]
    fn order_independent_contents() {
        let points: Vec<Vec<f64>> = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0],
            vec![1.0, 4.0], // duplicate
            vec![0.5, 4.5],
        ];
        let mut forward = ParetoArchive::new();
        for (i, p) in points.iter().enumerate() {
            forward.insert(p, i as u64).unwrap();
        }
        let mut backward = ParetoArchive::new();
        for (i, p) in points.iter().enumerate().rev() {
            backward.insert(p, i as u64).unwrap();
        }
        let f: Vec<&Vec<f64>> = forward.members().iter().map(|m| &m.objectives).collect();
        let b: Vec<&Vec<f64>> = backward.members().iter().map(|m| &m.objectives).collect();
        assert_eq!(f, b, "archive contents depend on offer order");
    }

    #[test]
    fn rejects_bad_points() {
        let mut archive = ParetoArchive::new();
        assert_eq!(archive.insert(&[], 0).unwrap_err(), MooError::EmptySet);
        assert_eq!(
            archive.insert(&[f64::NAN, 1.0], 0).unwrap_err(),
            MooError::NonFinite
        );
        archive.insert(&[1.0, 1.0], 0).unwrap();
        assert!(matches!(
            archive.insert(&[1.0], 1).unwrap_err(),
            MooError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        ));
        // clear unfixes the dimensionality
        archive.clear();
        assert!(archive.insert(&[1.0, 2.0, 3.0], 2).unwrap());
    }

    #[test]
    fn extend_counts_front_changes() {
        let mut archive = ParetoArchive::new();
        let pts = [vec![1.0, 3.0], vec![3.0, 1.0], vec![2.0, 4.0]];
        let n = archive
            .extend_from(
                pts.iter()
                    .enumerate()
                    .map(|(i, p)| (p.as_slice(), i as u64)),
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(archive.len(), 2);
    }
}
