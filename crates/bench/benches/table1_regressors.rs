//! Benchmarks behind Table I: fitting and querying the three regressor
//! families (MLP / XGBoost-style / LightGBM-style).

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::fixture_dataset;
use hwpr_core::encoders::EncoderChoice;
use hwpr_core::predictor::{Predictor, PredictorConfig, RegressorKind, TargetMetric};
use hwpr_core::{ModelConfig, TrainConfig};
use hwpr_gbdt::{Gbdt, GbdtConfig};

fn bench_regressors(c: &mut Criterion) {
    let data = fixture_dataset(192);
    let mut group = c.benchmark_group("table1_regressors");
    group.sample_size(10);

    group.bench_function("fit_xgboost_style", |b| {
        let rows: Vec<Vec<f32>> = data
            .samples()
            .iter()
            .map(|s| vec![s.latency_ms as f32, s.energy_mj as f32, s.accuracy as f32])
            .collect();
        let targets: Vec<f32> = data.samples().iter().map(|s| s.accuracy as f32).collect();
        let mut cfg = GbdtConfig::xgboost_preset(0);
        cfg.n_trees = 30;
        b.iter(|| Gbdt::fit(&rows, &targets, &cfg).expect("fit failed"));
    });

    group.bench_function("fit_lgboost_style", |b| {
        let rows: Vec<Vec<f32>> = data
            .samples()
            .iter()
            .map(|s| vec![s.latency_ms as f32, s.energy_mj as f32, s.accuracy as f32])
            .collect();
        let targets: Vec<f32> = data.samples().iter().map(|s| s.accuracy as f32).collect();
        let mut cfg = GbdtConfig::lgboost_preset(0);
        cfg.n_trees = 30;
        b.iter(|| Gbdt::fit(&rows, &targets, &cfg).expect("fit failed"));
    });

    group.bench_function("fit_mlp_predictor", |b| {
        let config = PredictorConfig {
            model: ModelConfig::tiny(),
            train: TrainConfig::tiny(),
            ..PredictorConfig::mlp(EncoderChoice::AF, TargetMetric::Accuracy)
        };
        b.iter(|| Predictor::fit(&data, &config).expect("fit failed"));
    });

    group.bench_function("predict_boosted_batch", |b| {
        let config = PredictorConfig::boosted(RegressorKind::XgBoost, TargetMetric::Latency);
        let (model, _) = Predictor::fit(&data, &config).expect("fit failed");
        let archs: Vec<_> = data.samples().iter().map(|s| s.arch.clone()).collect();
        b.iter(|| model.predict(&archs).expect("predict failed"));
    });

    group.finish();
}

criterion_group!(benches, bench_regressors);
criterion_main!(benches);
