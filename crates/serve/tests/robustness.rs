//! Failure-path coverage: malformed frames, hostile frame sizes, clients
//! vanishing mid-request, unknown models/platforms, and explicit
//! backpressure. The server must answer what it can answer, drop what it
//! must drop, and keep serving everyone else.

use hwpr_core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_serve::{
    protocol, ModelRegistry, PredictKind, ServeClient, ServeConfig, ServeError, Server,
};
use std::sync::Arc;
use std::time::Duration;

fn trained() -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(32),
        seed: 21,
    });
    let data =
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    model.freeze_with(8, Precision::F32);
    Arc::new(model)
}

fn probe(n: usize) -> Vec<Architecture> {
    (0..n as u64)
        .map(|i| Architecture::nb201_from_index(i * 13 % 15625).unwrap())
        .collect()
}

fn started(config: ServeConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", trained());
    Server::start(registry, config).unwrap()
}

#[test]
fn malformed_requests_get_error_replies_and_the_connection_survives() {
    let server = started(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // bad protocol version
    client.send_raw(&[99, 1, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    let (status, _, message) = client.recv_raw().unwrap();
    assert_eq!(status, protocol::STATUS_ERROR);
    assert!(message.contains("version"), "got: {message}");

    // truncated predict body
    client
        .send_raw(&[protocol::PROTOCOL_VERSION, 1, 7, 0, 0, 0, 0, 0, 0, 0])
        .unwrap();
    let (status, request_id, _) = client.recv_raw().unwrap();
    assert_eq!(status, protocol::STATUS_ERROR);
    assert_eq!(request_id, 7, "error must echo the request id");

    // unknown model / unknown platform are request-level errors
    let archs = probe(3);
    let err = client
        .predict_scores("ghost", Platform::EdgeGpu, &archs)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(ref m) if m.contains("ghost")),
        "{err}"
    );
    let err = client
        .predict_scores("default", Platform::RaspberryPi4, &archs)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(ref m) if m.contains("latency head")),
        "{err}"
    );

    // ...and the same connection still serves valid requests afterwards
    let scores = client
        .predict_scores("default", Platform::EdgeGpu, &archs)
        .unwrap();
    assert_eq!(scores.len(), archs.len());
}

#[test]
fn oversized_frames_drop_the_connection_but_not_the_server() {
    let server = started(ServeConfig::default());
    let mut hostile = ServeClient::connect(server.addr()).unwrap();
    let huge = vec![0u8; protocol::MAX_FRAME + 1];
    hostile.send_raw(&huge).unwrap();
    // the server must sever this connection rather than buffer the frame
    assert!(hostile.recv_raw().is_err());

    // fresh connections are unaffected
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let scores = client
        .predict_scores("default", Platform::EdgeGpu, &probe(4))
        .unwrap();
    assert_eq!(scores.len(), 4);
}

#[test]
fn client_disconnect_mid_request_does_not_poison_the_worker() {
    let server = started(ServeConfig {
        // hold the coalesce window open long enough that the client is
        // gone before its batch executes
        batch_deadline: Duration::from_millis(50),
        max_batch: 1024,
        ..ServeConfig::default()
    });
    {
        let mut doomed = ServeClient::connect(server.addr()).unwrap();
        doomed
            .send_predict(PredictKind::Scores, "default", Platform::EdgeGpu, &probe(5))
            .unwrap();
        // dropped here, with the request still queued
    }
    std::thread::sleep(Duration::from_millis(120));
    // the worker wrote into a dead socket, warned, and moved on
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let scores = client
        .predict_scores("default", Platform::EdgeGpu, &probe(6))
        .unwrap();
    assert_eq!(scores.len(), 6);
}

#[test]
fn full_queue_sheds_with_an_explicit_overloaded_response() {
    let server = started(ServeConfig {
        queue_cap: 1,
        max_batch: 4096,
        // nothing leaves the queue until the deadline, so the second
        // pipelined request must find it full
        batch_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let archs = probe(2);
    let first = client
        .send_predict(PredictKind::Scores, "default", Platform::EdgeGpu, &archs)
        .unwrap();
    let second = client
        .send_predict(PredictKind::Scores, "default", Platform::EdgeGpu, &archs)
        .unwrap();

    // the shed reply arrives first (the reader thread sends it inline)
    let (status, request_id, message) = client.recv_raw().unwrap();
    assert_eq!(status, protocol::STATUS_OVERLOADED);
    assert_eq!(request_id, second);
    assert!(message.contains("queue full"), "got: {message}");

    // the admitted request is still served once the window closes
    let mut scores = Vec::new();
    let answered = client.recv_scores(&mut scores).unwrap();
    assert_eq!(answered, first);
    assert_eq!(scores.len(), archs.len());
}

#[test]
fn stopping_the_server_is_idempotent_and_closes_clients_cleanly() {
    let mut server = started(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client
        .predict_scores("default", Platform::EdgeGpu, &probe(3))
        .unwrap();
    server.stop();
    server.stop();
    // the closed connection surfaces as an error, not a hang
    assert!(client
        .predict_scores("default", Platform::EdgeGpu, &probe(3))
        .is_err());
}
