//! Analytical hardware models and the synthetic benchmark tables used in
//! place of HW-NAS-Bench / BRP-NAS measurements.
//!
//! The paper evaluates on seven platforms (Edge GPU, Edge TPU, Raspberry
//! Pi 4, FPGA ZC706, FPGA ZCU102, Pixel 3, Eyeriss) whose measured
//! latencies we do not have. This crate substitutes **roofline-style cost
//! models**: each platform is described by peak compute, memory bandwidth,
//! per-op dispatch overhead, a parallelism width (small feature maps
//! underutilise wide accelerators) and per-op-kind efficiency factors
//! (depthwise convolutions run near peak on mobile CPUs but poorly on
//! GPUs/FPGAs — the mechanism behind the paper's Table IV and Fig. 8).
//!
//! The [`accuracy`] module provides the deterministic synthetic accuracy
//! model (capacity-saturating curve + connectivity + op effects +
//! hash-seeded noise) and [`SimBench`] materialises full benchmark tables
//! from a seed, playing the role of NAS-Bench-201/HW-NAS-Bench lookups.
//!
//! # Examples
//!
//! ```
//! use hwpr_hwmodel::{latency_ms, Platform};
//! use hwpr_nasbench::{Architecture, Dataset, Nb201Op};
//!
//! let arch = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
//! let gpu = latency_ms(&arch, Dataset::Cifar10, Platform::EdgeGpu);
//! let pi = latency_ms(&arch, Dataset::Cifar10, Platform::RaspberryPi4);
//! assert!(pi > gpu); // the Pi is slower on dense convolutions
//! ```

#![warn(missing_docs)]
pub mod accuracy;
pub mod correlation;
mod platform;
mod simbench;

pub use accuracy::{accuracy_percent, AccuracyModel};
pub use platform::{energy_mj, latency_ms, Platform, PlatformSpec};
pub use simbench::{BenchEntry, SimBench, SimBenchConfig};

/// Deterministic 64-bit mixer (splitmix64) used to derive per-architecture
/// noise without any global RNG state.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard-normal-ish deterministic noise in `[-3, 3]` derived from a key
/// (sum of 12 uniforms, Irwin–Hall approximation).
pub(crate) fn hash_gaussian(key: u64) -> f64 {
    let mut acc = 0.0f64;
    let mut state = key;
    for _ in 0..12 {
        state = splitmix64(state);
        acc += (state >> 11) as f64 / (1u64 << 53) as f64;
    }
    acc - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn hash_gaussian_moments() {
        let n = 2000;
        let samples: Vec<f64> = (0..n).map(|i| hash_gaussian(i as u64)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }
}
