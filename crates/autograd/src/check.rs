//! Finite-difference gradient checking used by the test suite.

use crate::tape::{Tape, Var};
use crate::Result;
use hwpr_tensor::Matrix;

/// Builds deterministic pseudo-random input values for gradient checks.
fn test_input(rows: usize, cols: usize, salt: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for i in 0..rows * cols {
        // low-discrepancy-ish values in roughly [-1, 1], never exactly 0
        let x = ((i * 2654435761 + salt * 97_003 + 1) % 1000) as f32 / 500.0 - 1.0;
        data.push(if x == 0.0 { 0.123 } else { x });
    }
    Matrix::from_vec(rows, cols, data).expect("test input shape")
}

/// Checks analytic gradients against central finite differences.
///
/// `build` receives a fresh tape plus one leaf per requested shape and must
/// return a scalar loss node. Gradients of every leaf are compared against
/// `(f(x+h) - f(x-h)) / 2h` element-wise.
///
/// # Panics
///
/// Panics when the relative error of any gradient element exceeds the
/// tolerance, or when `build` fails.
pub(crate) fn finite_difference_check<F>(shapes: &[(usize, usize)], build: F)
where
    F: Fn(&mut Tape, &[Var]) -> Result<Var>,
{
    let inputs: Vec<Matrix> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| test_input(r, c, i))
        .collect();

    let eval = |inputs: &[Matrix]| -> f32 {
        let mut tape = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &vars).expect("build failed");
        tape.value(loss)[(0, 0)]
    };

    // analytic gradients
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = build(&mut tape, &vars).expect("build failed");
    tape.backward(loss).expect("backward failed");

    let h = 1e-2f32;
    for (vi, var) in vars.iter().enumerate() {
        let analytic = tape
            .grad(*var)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(shapes[vi].0, shapes[vi].1));
        for idx in 0..inputs[vi].len() {
            let mut plus = inputs.clone();
            plus[vi].as_mut_slice()[idx] += h;
            let mut minus = inputs.clone();
            minus[vi].as_mut_slice()[idx] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h);
            let a = analytic.as_slice()[idx];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            assert!(
                (a - numeric).abs() / denom < 5e-2,
                "grad mismatch input {vi} elem {idx}: analytic {a}, numeric {numeric}"
            );
        }
    }
}
