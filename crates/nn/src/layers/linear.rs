//! Fully-connected layer.

use crate::params::{Binder, ParamId, Params};
use crate::Result;
use hwpr_autograd::{Act, Var};
use hwpr_tensor::Init;

/// Dense affine layer `y = x @ W (+ b)`.
///
/// # Examples
///
/// ```
/// use hwpr_autograd::Tape;
/// use hwpr_nn::layers::Linear;
/// use hwpr_nn::{Binder, Params};
/// use hwpr_tensor::{Init, Matrix};
///
/// let mut params = Params::new();
/// let fc = Linear::new(&mut params, "fc", 3, 2, Init::Xavier, 1, true);
/// let mut tape = Tape::new();
/// let mut binder = Binder::new(&mut tape, &params);
/// let x = binder.input(Matrix::ones(4, 3));
/// let y = fc.forward(&mut binder, x)?;
/// assert_eq!(tape.value(y).shape(), (4, 2));
/// # Ok::<(), hwpr_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim x out_dim` layer in `params`.
    ///
    /// The weight is initialised with `init` (seeded by `seed`); the bias,
    /// when present, starts at zero.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        seed: u64,
        bias: bool,
    ) -> Self {
        let weight = params.add(&format!("{name}.weight"), in_dim, out_dim, init, seed);
        let bias = bias.then(|| params.add(&format!("{name}.bias"), 1, out_dim, Init::Zeros, seed));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `[batch, in_dim]` node.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not have `in_dim` columns.
    pub fn forward(&self, binder: &mut Binder<'_, '_>, x: Var) -> Result<Var> {
        self.forward_act(binder, x, Act::Identity)
    }

    /// Applies the layer followed by `act` as one fused tape node
    /// (GEMM + bias + activation in a single pass).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not have `in_dim` columns.
    pub fn forward_act(&self, binder: &mut Binder<'_, '_>, x: Var, act: Act) -> Result<Var> {
        let w = binder.param(self.weight);
        let b = self.bias.map(|id| binder.param(id));
        Ok(binder.tape().linear_act(x, w, b, act)?)
    }

    /// Compiles the layer for tape-free inference: the weight panel is
    /// packed once and the bias copied out of `params`.
    pub fn freeze(&self, params: &Params) -> crate::infer::FrozenLinear {
        self.freeze_with(params, hwpr_tensor::Precision::F32)
    }

    /// [`Linear::freeze`] with the weight panel stored at `precision`
    /// (scalar heads are exempted from int8; see `infer::panel_precision`).
    pub fn freeze_with(
        &self,
        params: &Params,
        precision: hwpr_tensor::Precision,
    ) -> crate::infer::FrozenLinear {
        crate::infer::FrozenLinear::from_parts(
            params.get(self.weight),
            self.bias.map(|id| params.get(id)),
            self.in_dim,
            self.out_dim,
            precision,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use hwpr_autograd::Tape;
    use hwpr_tensor::Matrix;

    #[test]
    fn forward_shape_and_bias() {
        let mut params = Params::new();
        let fc = Linear::new(&mut params, "fc", 2, 3, Init::Zeros, 0, true);
        assert_eq!(fc.in_dim(), 2);
        assert_eq!(fc.out_dim(), 3);
        // zero weights + zero bias => zero output
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(5, 2));
        let y = fc.forward(&mut binder, x).unwrap();
        assert_eq!(tape.value(y), &Matrix::zeros(5, 3));
    }

    #[test]
    fn forward_without_bias() {
        let mut params = Params::new();
        let fc = Linear::new(&mut params, "fc", 1, 1, Init::Zeros, 0, false);
        assert_eq!(params.len(), 1);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(1, 1));
        assert!(fc.forward(&mut binder, x).is_ok());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut params = Params::new();
        let fc = Linear::new(&mut params, "fc", 4, 2, Init::Xavier, 0, true);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(1, 3));
        assert!(fc.forward(&mut binder, x).is_err());
    }

    #[test]
    fn gradient_flows_to_weight_and_bias() {
        let mut params = Params::new();
        let fc = Linear::new(&mut params, "fc", 2, 1, Init::Normal(0.5), 3, true);
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let x = binder.input(Matrix::ones(4, 2));
        let y = fc.forward(&mut binder, x).unwrap();
        let loss = binder.tape().mean_all(y);
        let grads = binder.finish(loss).unwrap();
        assert_eq!(grads.iter().filter(|g| g.is_some()).count(), 2);
    }
}
