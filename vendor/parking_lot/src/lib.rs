//! Offline subset of `parking_lot` built on `std::sync` (see
//! `vendor/README.md`). Matches the parking_lot API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`). A poisoned
//! std lock — only possible if a thread panicked while holding it — is
//! surfaced by taking the inner guard anyway, mirroring parking_lot's
//! no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
