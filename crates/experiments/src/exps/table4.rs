//! Table IV: proportion of NAS-Bench-201 vs FBNet architectures in the
//! final Pareto front per hardware platform.

use crate::{true_objectives, Harness, MarkdownTable};
use hwpr_core::nb201_fraction;
use hwpr_hwmodel::Platform;
use hwpr_moo::pareto_front;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// The platforms of the paper's Table IV ("FPGA" = ZC706).
pub const PLATFORMS: [Platform; 4] = [
    Platform::EdgeGpu,
    Platform::EdgeTpu,
    Platform::FpgaZc706,
    Platform::Pixel3,
];

/// The true-front members of a combined mixed-space search on `platform`.
pub fn front_members(h: &Harness, platform: Platform) -> Vec<Architecture> {
    let dataset = Dataset::Cifar10;
    let spaces = vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet];
    let data = h.mixed_dataset(dataset, platform);
    let oracle = h.measured(dataset, platform);
    let candidates: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
    let mut pop: Vec<Architecture> = Vec::new();
    for run in 0..h.scale.runs() {
        let seed = 2000 + run as u64;
        let model = h.train_hw_pr_nas(&data, seed);
        pop.extend(
            h.run_moea_hwpr_seeded(model, platform, spaces.clone(), &candidates, seed)
                .population,
        );
    }
    let objs = true_objectives(&pop, &oracle);
    pareto_front(&objs)
        .expect("non-empty population")
        .into_iter()
        .map(|i| pop[i].clone())
        .collect()
}

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table IV — benchmark proportions in the final Pareto front (%)\n"
    );
    let _ = writeln!(
        out,
        "Mixed-space MOEA + HW-PR-NAS on CIFAR-10, {} runs combined, \
         scale `{:?}`.\n",
        h.scale.runs(),
        h.scale
    );
    let mut t = MarkdownTable::new(vec!["", "Edge GPU", "Edge TPU", "FPGA", "Pixel 3"]);
    let mut nb_row = vec!["NAS-Bench-201".to_string()];
    let mut fb_row = vec!["FBNet".to_string()];
    for platform in PLATFORMS {
        let front = front_members(h, platform);
        let nb = nb201_fraction(&front) * 100.0;
        nb_row.push(format!("{nb:.1}"));
        fb_row.push(format!("{:.1}", 100.0 - nb));
    }
    t.row(nb_row);
    t.row(fb_row);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nPaper's shape: FBNet (depthwise convolutions) dominates the \
         Pixel 3 front (~80 %), while NAS-Bench-201's standard convolutions \
         dominate on GPU/TPU/FPGA where depthwise kernels underutilise the \
         hardware."
    );
    out
}
