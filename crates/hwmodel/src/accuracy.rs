//! Deterministic synthetic accuracy model.
//!
//! The paper reads accuracies out of the NAS-Bench-201 / HW-NAS-Bench
//! tables; those tables are not available here, so this module plays their
//! role. The model is built so that the *orderings* the paper's claims
//! rest on are preserved:
//!
//! - accuracy grows with capacity (log-FLOPs) and saturates,
//! - cells whose input→output paths are all zeroized collapse to chance,
//! - skip connections help trainability a little, pooling-only cells are
//!   weak, convolutions carry the signal,
//! - datasets share most of the ranking but differ in difficulty
//!   (CIFAR-10 ≈ 90 %+, CIFAR-100 ≈ 70 %, ImageNet16-120 ≈ 45 %),
//! - every architecture gets stable hash-seeded training noise.

use crate::hash_gaussian;
use hwpr_nasbench::features::ArchFeatures;
use hwpr_nasbench::{Architecture, Dataset, Nb201Op};

/// Configuration of the synthetic accuracy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyModel {
    /// Global seed mixed into the per-architecture noise.
    pub seed: u64,
    /// Standard deviation of the training-noise term, in accuracy points.
    pub noise_std: f64,
}

/// Default model seed (spells "HWPRNAS!" in ASCII).
const DEFAULT_SEED: u64 = 0x4857_5052_4e41_5321;

impl Default for AccuracyModel {
    fn default() -> Self {
        Self {
            seed: DEFAULT_SEED,
            noise_std: 0.4,
        }
    }
}

impl AccuracyModel {
    /// Creates a model with the given seed and default noise.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            noise_std: 0.4,
        }
    }

    /// Top-1 accuracy (in percent) of `arch` trained on `dataset`.
    pub fn accuracy(&self, arch: &Architecture, dataset: Dataset) -> f64 {
        let chance = 100.0 / dataset.classes() as f64;
        let ceiling = match dataset {
            Dataset::Cifar10 => 94.5,
            Dataset::Cifar100 => 73.5,
            Dataset::ImageNet16 => 47.0,
        };
        let connectivity = connectivity_factor(arch);
        if connectivity == 0.0 {
            // no data path: the network cannot learn anything
            return chance;
        }
        let features = ArchFeatures::extract(arch, dataset);
        // capacity: log-FLOPs normalised to roughly [0, 1] on these spaces
        let capacity = ((features.flops.max(1.0).log10() - 6.0) / 2.5).clamp(0.0, 1.2);
        // saturating capacity curve
        let mut quality = 1.0 - (-4.0 * capacity).exp();
        // architectural modifiers
        quality *= connectivity;
        quality *= op_quality(arch);
        // difficulty-dependent dataset transfer: harder datasets punish
        // low-capacity architectures slightly more
        let difficulty = match dataset {
            Dataset::Cifar10 => 1.0,
            Dataset::Cifar100 => 1.12,
            Dataset::ImageNet16 => 1.25,
        };
        quality = quality.powf(difficulty);
        let noise_key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(arch.index() as u64)
            .wrapping_add((dataset.classes() as u64) << 32);
        let noise = hash_gaussian(noise_key) * self.noise_std;
        (chance + (ceiling - chance) * quality + noise).clamp(chance, 99.9)
    }
}

/// Convenience wrapper with the default model.
pub fn accuracy_percent(arch: &Architecture, dataset: Dataset) -> f64 {
    AccuracyModel::default().accuracy(arch, dataset)
}

/// Fraction of usable connectivity from the cell input to the output.
///
/// For NAS-Bench-201, walks the 4-node cell DAG keeping only non-`none`
/// edges and measures how many of the final node's inputs carry signal;
/// returns 0 when nothing reaches the output. FBNet chains always carry
/// signal (skips are identities), so they score 1.
fn connectivity_factor(arch: &Architecture) -> f64 {
    match arch {
        Architecture::Fbnet(_) => 1.0,
        Architecture::Nb201(ops) => {
            use hwpr_nasbench::NB201_EDGES;
            // reachable[i] = data reaches cell node i
            let mut reachable = [false; 4];
            reachable[0] = true;
            let edge_nodes: [(usize, usize); NB201_EDGES] =
                [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)];
            // edges are ordered so sources precede targets: one pass works
            let mut signal_edges_into_3 = 0usize;
            let mut conv_edges_into_3 = 0usize;
            for (e, &(src, dst)) in edge_nodes.iter().enumerate() {
                if ops[e] == Nb201Op::None || !reachable[src] {
                    continue;
                }
                reachable[dst] = true;
                if dst == 3 {
                    signal_edges_into_3 += 1;
                    if matches!(ops[e], Nb201Op::NorConv1x1 | Nb201Op::NorConv3x3) {
                        conv_edges_into_3 += 1;
                    }
                }
            }
            if !reachable[3] {
                return 0.0;
            }
            // more independent paths into the output help a little, and at
            // least one transforming edge helps more
            let path_bonus = 0.85 + 0.05 * signal_edges_into_3.min(3) as f64;
            let transform_bonus = if conv_edges_into_3 > 0 { 1.0 } else { 0.92 };
            path_bonus * transform_bonus
        }
    }
}

/// Operation-mix quality multiplier in `(0, 1]`.
fn op_quality(arch: &Architecture) -> f64 {
    match arch {
        Architecture::Nb201(ops) => {
            let count = |target: Nb201Op| ops.iter().filter(|&&o| o == target).count() as f64 / 6.0;
            let conv = count(Nb201Op::NorConv3x3) + count(Nb201Op::NorConv1x1);
            let skip = count(Nb201Op::SkipConnect);
            let pool = count(Nb201Op::AvgPool3x3);
            let none = count(Nb201Op::None);
            // convolutions carry representation power; a bit of skip helps;
            // pooling and zeroize dilute it
            (0.62 + 0.38 * conv + 0.10 * skip.min(0.34) - 0.08 * pool - 0.15 * none)
                .clamp(0.05, 1.0)
        }
        Architecture::Fbnet(ops) => {
            let skips = ops
                .iter()
                .filter(|&&o| o == hwpr_nasbench::FbnetOp::Skip)
                .count() as f64
                / ops.len() as f64;
            let wide =
                ops.iter().filter(|o| o.expansion() == Some(6)).count() as f64 / ops.len() as f64;
            let k5 = ops.iter().filter(|o| o.kernel() == Some(5)).count() as f64 / ops.len() as f64;
            // depth (fewer skips) and width help; 5x5 receptive fields help
            // slightly on 32x32 inputs
            (0.68 + 0.22 * (1.0 - skips) + 0.07 * wide + 0.03 * k5).clamp(0.05, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_nasbench::{FbnetOp, SearchSpaceId};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_none_collapses_to_chance() {
        let a = Architecture::nb201([Nb201Op::None; 6]);
        assert_eq!(accuracy_percent(&a, Dataset::Cifar10), 10.0);
        assert_eq!(accuracy_percent(&a, Dataset::Cifar100), 1.0);
    }

    #[test]
    fn disconnected_output_collapses_even_with_convs() {
        // all edges into node 3 are none -> no path to output
        let a = Architecture::nb201([
            Nb201Op::NorConv3x3,
            Nb201Op::NorConv3x3,
            Nb201Op::NorConv3x3,
            Nb201Op::None,
            Nb201Op::None,
            Nb201Op::None,
        ]);
        assert_eq!(accuracy_percent(&a, Dataset::Cifar10), 10.0);
    }

    #[test]
    fn conv_cell_beats_pool_cell() {
        let convs = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let pools = Architecture::nb201([Nb201Op::AvgPool3x3; 6]);
        assert!(
            accuracy_percent(&convs, Dataset::Cifar10)
                > accuracy_percent(&pools, Dataset::Cifar10) + 3.0
        );
    }

    #[test]
    fn dataset_difficulty_ordering() {
        let a = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let c10 = accuracy_percent(&a, Dataset::Cifar10);
        let c100 = accuracy_percent(&a, Dataset::Cifar100);
        let inet = accuracy_percent(&a, Dataset::ImageNet16);
        assert!(c10 > c100 && c100 > inet, "{c10} {c100} {inet}");
        assert!(c10 > 88.0 && c10 < 96.0, "c10 {c10}");
        assert!((60.0..76.0).contains(&c100), "c100 {c100}");
        assert!((30.0..50.0).contains(&inet), "inet {inet}");
    }

    #[test]
    fn datasets_are_rank_correlated() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let archs: Vec<Architecture> = (0..200)
            .map(|_| Architecture::random(SearchSpaceId::NasBench201, &mut rng))
            .collect();
        let c10: Vec<f32> = archs
            .iter()
            .map(|a| accuracy_percent(a, Dataset::Cifar10) as f32)
            .collect();
        let c100: Vec<f32> = archs
            .iter()
            .map(|a| accuracy_percent(a, Dataset::Cifar100) as f32)
            .collect();
        let tau = hwpr_metrics::kendall_tau(&c10, &c100).unwrap();
        assert!(tau > 0.7, "tau {tau}");
    }

    #[test]
    fn fbnet_deeper_is_better() {
        let deep = Architecture::fbnet([FbnetOp::K3E6; 22]);
        let shallow = Architecture::fbnet([FbnetOp::Skip; 22]);
        assert!(
            accuracy_percent(&deep, Dataset::Cifar10)
                > accuracy_percent(&shallow, Dataset::Cifar10) + 5.0
        );
    }

    #[test]
    fn noise_is_deterministic_and_seed_dependent() {
        let a = Architecture::nb201([Nb201Op::NorConv1x1; 6]);
        let m1 = AccuracyModel::new(1);
        let m2 = AccuracyModel::new(2);
        assert_eq!(
            m1.accuracy(&a, Dataset::Cifar10),
            m1.accuracy(&a, Dataset::Cifar10)
        );
        assert_ne!(
            m1.accuracy(&a, Dataset::Cifar10),
            m2.accuracy(&a, Dataset::Cifar10)
        );
    }

    #[test]
    fn accuracies_stay_in_valid_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            for _ in 0..50 {
                let a = Architecture::random(space, &mut rng);
                for d in Dataset::ALL {
                    let acc = accuracy_percent(&a, d);
                    let chance = 100.0 / d.classes() as f64;
                    assert!(acc >= chance - 1e-9 && acc < 100.0, "{acc}");
                }
            }
        }
    }
}
