//! Trained ensembles must round-trip through serde without prediction
//! drift (model persistence).

use hwpr_gbdt::{Gbdt, GbdtConfig};

fn toy() -> (Vec<Vec<f32>>, Vec<f32>) {
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![(i % 13) as f32, (i % 7) as f32])
        .collect();
    let targets: Vec<f32> = rows.iter().map(|r| r[0] * 0.5 - r[1] * 1.5).collect();
    (rows, targets)
}

#[test]
fn json_round_trip_preserves_predictions() {
    let (rows, targets) = toy();
    let mut config = GbdtConfig::xgboost_preset(3);
    config.n_trees = 40;
    let model = Gbdt::fit(&rows, &targets, &config).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: Gbdt = serde_json::from_str(&json).unwrap();
    assert_eq!(model.tree_count(), restored.tree_count());
    for row in rows.iter().take(25) {
        assert_eq!(model.predict(row), restored.predict(row));
    }
    // JSON renders floats as shortest-round-trip decimal text; gains are
    // compared with a tolerance of a few ULPs
    for (a, b) in model
        .feature_importance()
        .iter()
        .zip(restored.feature_importance())
    {
        assert!((a - b).abs() <= a.abs() * 1e-12, "{a} vs {b}");
    }
}

#[test]
fn leaf_wise_models_round_trip_too() {
    let (rows, targets) = toy();
    let mut config = GbdtConfig::lgboost_preset(4);
    config.n_trees = 20;
    let model = Gbdt::fit(&rows, &targets, &config).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: Gbdt = serde_json::from_str(&json).unwrap();
    assert_eq!(model.predict(&rows[0]), restored.predict(&rows[0]));
}
