//! Run-level telemetry wiring: the `HWPR_TELEMETRY` environment variable.
//!
//! | value            | effect                                   |
//! |------------------|------------------------------------------|
//! | unset, `off`, `0`| telemetry disabled (the default)         |
//! | `stderr`         | JSONL events to stderr                   |
//! | `jsonl:PATH`     | JSONL events to the file at `PATH`       |

use crate::sink::JsonlSink;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// The environment variable consulted by [`TelemetrySpec::from_env`].
pub const TELEMETRY_ENV: &str = "HWPR_TELEMETRY";

/// A parsed telemetry destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetrySpec {
    /// Telemetry disabled.
    Off,
    /// JSONL to stderr.
    Stderr,
    /// JSONL to a file.
    Jsonl(PathBuf),
}

impl TelemetrySpec {
    /// Parses a `HWPR_TELEMETRY` value.
    ///
    /// # Errors
    ///
    /// Returns a message for unrecognised specs (including `jsonl:` with
    /// an empty path).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        match spec {
            "" | "off" | "0" | "none" => Ok(Self::Off),
            "stderr" | "jsonl:stderr" => Ok(Self::Stderr),
            _ => match spec.strip_prefix("jsonl:") {
                Some("") => Err("HWPR_TELEMETRY=jsonl: needs a file path".to_string()),
                Some(path) => Ok(Self::Jsonl(PathBuf::from(path))),
                None => Err(format!(
                    "unrecognised HWPR_TELEMETRY value {spec:?} \
                     (expected off | stderr | jsonl:PATH)"
                )),
            },
        }
    }

    /// Reads and parses [`TELEMETRY_ENV`]; unset means [`Self::Off`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::parse`] errors.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(TELEMETRY_ENV) {
            Ok(value) => Self::parse(&value),
            Err(_) => Ok(Self::Off),
        }
    }

    /// Installs the matching sink as the global recorder. Returns whether
    /// telemetry ended up enabled.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures for [`Self::Jsonl`].
    pub fn install(&self) -> io::Result<bool> {
        match self {
            Self::Off => Ok(false),
            Self::Stderr => {
                crate::install(Arc::new(JsonlSink::to_stderr()));
                Ok(true)
            }
            Self::Jsonl(path) => {
                crate::install(Arc::new(JsonlSink::to_file(path)?));
                Ok(true)
            }
        }
    }
}

/// One-call wiring for binaries: parse `HWPR_TELEMETRY` and install the
/// sink. Configuration problems are reported on stderr (never fatal — a
/// bad telemetry spec must not kill an experiment) and leave telemetry
/// off. Returns whether telemetry is enabled.
pub fn init_from_env() -> bool {
    match TelemetrySpec::from_env() {
        Ok(spec) => match spec.install() {
            Ok(enabled) => enabled,
            Err(err) => {
                eprintln!("[hwpr warn] could not open telemetry sink: {err}");
                false
            }
        },
        Err(err) => {
            eprintln!("[hwpr warn] {err}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(TelemetrySpec::parse("off").unwrap(), TelemetrySpec::Off);
        assert_eq!(TelemetrySpec::parse("").unwrap(), TelemetrySpec::Off);
        assert_eq!(TelemetrySpec::parse("0").unwrap(), TelemetrySpec::Off);
        assert_eq!(
            TelemetrySpec::parse("stderr").unwrap(),
            TelemetrySpec::Stderr
        );
        assert_eq!(
            TelemetrySpec::parse("jsonl:/tmp/run.jsonl").unwrap(),
            TelemetrySpec::Jsonl(PathBuf::from("/tmp/run.jsonl"))
        );
        assert_eq!(
            TelemetrySpec::parse(" jsonl:run.jsonl ").unwrap(),
            TelemetrySpec::Jsonl(PathBuf::from("run.jsonl"))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TelemetrySpec::parse("jsonl:").is_err());
        assert!(TelemetrySpec::parse("csv:/tmp/x").is_err());
    }
}
