//! One module per reproduced table/figure; each exposes
//! `run(&Harness) -> String` returning the markdown report.

pub mod ablation_loss;
pub mod fig1;
pub mod fig4;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod hv_convergence;
pub mod latency_corr;
pub mod proxy_transfer;
pub mod table1;
pub mod table3;
pub mod table4;

/// Experiments Fig. 7 shares its runs with Table III timing; its module
/// lives alongside the others.
pub mod fig7;
