//! Wall-clock plus simulated-time accounting for search budgets.

use std::time::{Duration, Instant};

/// Tracks how much (real + simulated) time a search has consumed.
///
/// The paper caps searches at 24 hours. Surrogate evaluations cost real
/// wall-clock time; "measured values" evaluations additionally charge a
/// simulated per-measurement cost (training/benchmarking the architecture
/// on the device), which is what makes the measured MOEA so much slower
/// in Fig. 7.
#[derive(Debug, Clone)]
pub struct SearchClock {
    started: Instant,
    simulated: Duration,
    budget: Option<Duration>,
}

impl SearchClock {
    /// Starts a clock with no budget.
    pub fn unbounded() -> Self {
        Self {
            started: Instant::now(),
            simulated: Duration::ZERO,
            budget: None,
        }
    }

    /// Starts a clock with a total (wall + simulated) budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self {
            started: Instant::now(),
            simulated: Duration::ZERO,
            budget: Some(budget),
        }
    }

    /// The paper's 24-hour budget.
    pub fn paper_budget() -> Self {
        Self::with_budget(Duration::from_secs(24 * 3600))
    }

    /// Adds simulated seconds (e.g. device-measurement time).
    pub fn charge_simulated(&mut self, seconds: f64) {
        self.simulated += Duration::from_secs_f64(seconds.max(0.0));
    }

    /// Wall-clock time elapsed since the clock started.
    pub fn wall_elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Simulated time charged so far.
    pub fn simulated_elapsed(&self) -> Duration {
        self.simulated
    }

    /// Total accounted time (wall + simulated).
    pub fn total_elapsed(&self) -> Duration {
        self.wall_elapsed() + self.simulated
    }

    /// Whether the budget (if any) is spent.
    pub fn exhausted(&self) -> bool {
        self.budget.is_some_and(|b| self.total_elapsed() >= b)
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }
}

impl Default for SearchClock {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_exhausts() {
        let mut c = SearchClock::unbounded();
        c.charge_simulated(1e9);
        assert!(!c.exhausted());
        assert!(c.budget().is_none());
    }

    #[test]
    fn simulated_time_counts_against_budget() {
        let mut c = SearchClock::with_budget(Duration::from_secs(10));
        assert!(!c.exhausted());
        c.charge_simulated(11.0);
        assert!(c.exhausted());
        assert!(c.simulated_elapsed() >= Duration::from_secs(11));
    }

    #[test]
    fn negative_charges_are_ignored() {
        let mut c = SearchClock::unbounded();
        c.charge_simulated(-5.0);
        assert_eq!(c.simulated_elapsed(), Duration::ZERO);
    }

    #[test]
    fn paper_budget_is_24h() {
        let mut c = SearchClock::paper_budget();
        assert_eq!(c.budget(), Some(Duration::from_secs(86_400)));
        c.charge_simulated(1.0);
        assert!(c.total_elapsed() >= Duration::from_secs(1));
    }
}
