//! The tape-free frozen inference engine behind the MOEA hot path.
//!
//! [`FrozenModel::compile`] is a one-shot freeze pass over a trained
//! [`HwPrNas`]: it copies every trained weight out of the parameter store,
//! packs each GEMM weight into a persistent [`hwpr_tensor::PackedWeight`]
//! panel, and lowers the encoder → branch-head → fusion forward into
//! direct fused-kernel calls. Inference then runs against a reusable
//! activation arena ([`InferArena`]) with **no tape, no op recording, no
//! gradient buffers**, and dropout statically elided.
//!
//! # Error budget
//!
//! The frozen path is pinned to the recording-tape reference
//! implementation (`predict_*_tape` on [`HwPrNas`]) by a documented error
//! budget: f32 max-abs ≤ 1e-5 with Kendall τ = 1.0 on the differential
//! fixtures, and τ ≥ 0.99 per platform head at f16/int8 (see the
//! `hwpr_nn::infer` module docs for the rationale). The implementation
//! currently sits at exact f32 bit-equality — every kernel it calls is
//! either the routine the corresponding tape op runs
//! ([`hwpr_autograd::apply_bias_act`], [`hwpr_autograd::lstm_step_frozen`])
//! or a bit-identical variant (`matmul_prepacked_into` ≡ `matmul`
//! including the static-shape kernels, `block_left_matmul_into` ≡
//! `block_left_matmul`), with concatenations/gathers as plain copies —
//! but only the budget is contractual. Differential tests in this module
//! and in `tests/frozen_differential.rs` pin the budget for every encoder
//! type and platform.
//!
//! # Arena memory model
//!
//! All activations come from a per-arena [`BufferPool`]; scratch vectors
//! (adjacency copies, LSTM steps and states, token-id staging) live in the
//! arena and keep their capacity across calls, so a warmed
//! [`FrozenModel::predict_scores_into`] loop performs **zero heap
//! allocations** (asserted by the `alloc-count` harness in `hwpr-bench`).
//! Arenas are checked out of a shared pool per call, so concurrent workers
//! in [`FrozenModel::predict_full_parallel`] each get their own arena
//! while sharing the packed weights — the parallel path is pack-free.

use crate::data::{CachedEncoding, EncodingCache};
use crate::encoders::EncoderSet;
use crate::model::{denorm_accuracy, denorm_error, denorm_latency, HwPrNas};
use crate::Result;
use hwpr_hwmodel::Platform;
use hwpr_nasbench::features::{FeatureNormalizer, ARCH_FEATURE_DIM};
use hwpr_nasbench::Architecture;
use hwpr_nn::infer::{FrozenEmbedding, FrozenGcnLayer, FrozenLstm, FrozenMlp, LstmScratch};
use hwpr_nn::Params;
use hwpr_obs::metrics::{registry, Counter, Histogram};
use hwpr_tensor::{BufferPool, Matrix, Precision};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct InferMetrics {
    /// "infer.prepack.reuse": GEMMs served from persistent weight panels
    /// (packed once at freeze time, reused every batch).
    prepack_reuse: Arc<Counter>,
    /// "infer.batch.us": per-batch frozen forward wall time.
    batch_us: Arc<Histogram>,
    /// "infer.batch.size": rows per frozen chunk — shows whether callers
    /// actually fill the compiled batch width or trickle partial chunks.
    batch_size: Arc<Histogram>,
}

fn metrics() -> &'static InferMetrics {
    static METRICS: OnceLock<InferMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InferMetrics {
        prepack_reuse: registry().counter("infer.prepack.reuse"),
        batch_us: registry().histogram(
            "infer.batch.us",
            &Histogram::exponential_bounds(1.0, 4.0, 10),
        ),
        batch_size: registry().histogram(
            "infer.batch.size",
            &Histogram::exponential_bounds(1.0, 2.0, 10),
        ),
    })
}

/// Times one frozen batch. Inert (no clock read, no allocation) when
/// telemetry is off — the property the `alloc-count` harness relies on.
struct ChunkTimer {
    start: Option<Instant>,
}

impl ChunkTimer {
    fn start() -> Self {
        if !hwpr_obs::enabled() {
            return Self { start: None };
        }
        Self {
            start: Some(Instant::now()),
        }
    }

    fn finish(self, prepacked_gemms: u64, rows: usize) {
        if let Some(start) = self.start {
            let m = metrics();
            m.prepack_reuse.add(prepacked_gemms);
            m.batch_us.observe(start.elapsed().as_secs_f64() * 1e6);
            m.batch_size.observe(rows as f64);
        }
    }
}

/// Reusable scratch for one encoder forward: everything keeps its
/// capacity between calls so the warmed path never allocates.
#[derive(Debug, Default)]
struct EncoderScratch {
    /// Pooled `[batch, embed_dim]` timestep inputs for the LSTM part.
    steps: Vec<Matrix>,
    /// Per-layer recurrence working set (states, staging, gates).
    lstm: LstmScratch,
    /// SoA token-id staging: `seq_len * batch` ids laid out step-major, so
    /// each encoding is visited once and every LSTM step reads one
    /// contiguous `[batch]` slice.
    ids: Vec<usize>,
    /// Weight-independent first-layer graph aggregation
    /// `blockdiag(A) @ X` for the current chunk: staged once by the first
    /// encoder that needs it and reused by every other encoder (the
    /// accuracy and latency branches read identical graph inputs), then
    /// recycled into the pool at the next chunk.
    graph_agg: Option<Matrix>,
}

/// One worker's reusable activation storage: a buffer pool plus the
/// encoder scratch vectors and the per-chunk encoding list.
#[derive(Debug, Default)]
pub struct InferArena {
    pool: BufferPool,
    encodings: Vec<Arc<CachedEncoding>>,
    scratch: EncoderScratch,
}

/// An [`EncoderSet`] compiled for tape-free inference: frozen layers plus
/// the fitted AF normaliser. Part order (GCN, LSTM, AF) matches the taped
/// forward exactly.
#[derive(Debug)]
struct FrozenEncoderSet {
    gcn: Vec<FrozenGcnLayer>,
    embedding: Option<FrozenEmbedding>,
    lstm: Option<FrozenLstm>,
    normalizer: Option<FeatureNormalizer>,
    output_dim: usize,
}

impl FrozenEncoderSet {
    fn compile(enc: &EncoderSet, params: &Params, precision: Precision) -> Self {
        Self {
            gcn: enc
                .gcn_layers()
                .iter()
                .map(|l| l.freeze_with(params, precision))
                .collect(),
            embedding: enc.embedding().map(|e| e.freeze(params)),
            lstm: enc.lstm().map(|l| l.freeze_with(params, precision)),
            normalizer: enc.normalizer().cloned(),
            output_dim: enc.output_dim(),
        }
    }

    /// Prepacked GEMMs one forward pass issues (for the reuse counter).
    fn prepacked_gemms(&self, seq_len: usize) -> u64 {
        self.gcn.len() as u64
            + self
                .lstm
                .as_ref()
                .map_or(0, |l| (l.layers() * seq_len) as u64)
    }

    /// Encodes a batch into a pooled `[batch, output_dim]` representation.
    ///
    /// Mirrors [`EncoderSet::forward`] part by part; concatenation becomes
    /// direct writes into column ranges of `repr` (copies are exact, so
    /// the result is bit-identical to the taped `concat_cols`).
    fn forward(
        &self,
        pool: &mut BufferPool,
        scratch: &mut EncoderScratch,
        encodings: &[Arc<CachedEncoding>],
        nodes: usize,
        seq_len: usize,
    ) -> Result<Matrix> {
        let batch = encodings.len();
        // recycle anything a previous erroring call left behind
        for m in scratch.steps.drain(..) {
            pool.put(m);
        }
        // every column range below is written for every row
        let mut repr = pool.take_uninit(batch, self.output_dim);
        let mut col = 0;
        if !self.gcn.is_empty() {
            if scratch.graph_agg.is_none() {
                let feat_cols = encodings[0].graph.features.cols();
                // row-stack each architecture's memoised first-layer
                // aggregation `A @ X` (weight-independent, computed once
                // per architecture by the cache) — every encoder branch
                // starts from the same graph input, so the second branch
                // reuses this staging for free
                let mut agg = pool.take_uninit(batch * nodes, feat_cols);
                for (b, e) in encodings.iter().enumerate() {
                    agg.rows_mut(b * nodes, nodes)
                        .copy_from_slice(e.agg.as_slice());
                }
                scratch.graph_agg = Some(agg);
            }
            let agg = scratch
                .graph_agg
                .as_ref()
                .expect("graph aggregation staged above");
            // first layer consumes the shared pre-aggregated input; each
            // later layer reads every sample's constant adjacency in
            // place — no staging copies, no per-sample GEMM dispatch
            // only each sample's global readout node survives the stack,
            // so the last layer runs the row-pruned kernel; earlier
            // layers still produce every node (their outputs feed the
            // next layer's aggregation in full)
            let last = self.gcn.len() - 1;
            let adj_global_row = |b: usize| {
                let g = &encodings[b].graph;
                g.adjacency.row(g.global_node())
            };
            let h = if last == 0 {
                // single-layer stack: gather each sample's global
                // aggregation row, then run the layer on just those rows
                let feat_cols = encodings[0].graph.features.cols();
                let mut gathered = pool.take_uninit(batch, feat_cols);
                for (b, e) in encodings.iter().enumerate() {
                    gathered
                        .row_mut(b)
                        .copy_from_slice(agg.row(b * nodes + e.graph.global_node()));
                }
                let out = self.gcn[0].forward_from_agg(pool, &gathered)?;
                pool.put(gathered);
                out
            } else {
                let mut h = self.gcn[0].forward_from_agg(pool, agg)?;
                for layer in &self.gcn[1..last] {
                    h = layer.forward_each(
                        pool,
                        h,
                        batch,
                        |b| &encodings[b].graph.adjacency,
                        nodes,
                    )?;
                }
                self.gcn[last].forward_global_each(pool, h, batch, adj_global_row, nodes)?
            };
            let width = self.gcn[last].out_dim();
            for b in 0..batch {
                repr.row_mut(b)[col..col + width].copy_from_slice(h.row(b));
            }
            pool.put(h);
            col += width;
        }
        if let (Some(embedding), Some(lstm)) = (&self.embedding, &self.lstm) {
            // stage all token ids in one pass over the encodings
            // (step-major SoA), then embed each step's contiguous slice
            scratch.ids.clear();
            scratch.ids.resize(seq_len * batch, 0);
            for (b, e) in encodings.iter().enumerate() {
                for (t, &tok) in e.tokens.iter().take(seq_len).enumerate() {
                    scratch.ids[t * batch + b] = tok;
                }
            }
            for t in 0..seq_len {
                let mut step = pool.take_uninit(batch, embedding.dim());
                embedding.forward_into(&scratch.ids[t * batch..(t + 1) * batch], &mut step)?;
                scratch.steps.push(step);
            }
            let h = lstm.forward(pool, &scratch.steps, &mut scratch.lstm)?;
            let width = lstm.hidden_dim();
            for b in 0..batch {
                repr.row_mut(b)[col..col + width].copy_from_slice(h.row(b));
            }
            pool.put(h);
            for m in scratch.steps.drain(..) {
                pool.put(m);
            }
            col += width;
        }
        if let Some(norm) = &self.normalizer {
            for (b, e) in encodings.iter().enumerate() {
                norm.transform_into(&e.af, &mut repr.row_mut(b)[col..col + ARCH_FEATURE_DIM]);
            }
            col += ARCH_FEATURE_DIM;
        }
        debug_assert_eq!(col, self.output_dim, "encoder parts must fill repr");
        Ok(repr)
    }
}

/// A trained [`HwPrNas`] compiled for tape-free inference.
///
/// Compiled once by [`HwPrNas::frozen`]; shared across the search stack
/// through an [`Arc`]. See the [module docs](self) for the memory model
/// and the bit-identity argument.
#[derive(Debug)]
pub struct FrozenModel {
    accuracy_encoder: FrozenEncoderSet,
    latency_encoder: FrozenEncoderSet,
    accuracy_head: FrozenMlp,
    latency_heads: Vec<FrozenMlp>,
    fusion: FrozenMlp,
    platforms: Vec<Platform>,
    max_latency: Vec<f64>,
    nodes: usize,
    seq_len: usize,
    batch: usize,
    /// Panel storage precision every GEMM weight was frozen at.
    precision: Precision,
    /// Prepacked GEMMs per full-batch forward (drives the reuse counter).
    prepacked_gemms: u64,
    /// Reusable worker arenas; one is checked out per predict call and
    /// returned afterwards, so repeat calls (and parallel workers) reuse
    /// warmed buffer pools instead of reallocating.
    arenas: Mutex<Vec<InferArena>>,
}

impl FrozenModel {
    /// Freezes `model`: packs every GEMM weight once at `precision` and
    /// fixes the inference chunk size to `batch` rows. Rank-critical
    /// scalar heads stay f32 under int8 (see `hwpr_nn::infer`).
    pub(crate) fn compile(model: &HwPrNas, batch: usize, precision: Precision) -> Self {
        let accuracy_encoder =
            FrozenEncoderSet::compile(&model.accuracy_encoder, &model.params, precision);
        let latency_encoder =
            FrozenEncoderSet::compile(&model.latency_encoder, &model.params, precision);
        let accuracy_head = model.accuracy_head.freeze_with(&model.params, precision);
        let latency_heads: Vec<FrozenMlp> = model
            .latency_heads
            .iter()
            .map(|h| h.freeze_with(&model.params, precision))
            .collect();
        let fusion = model.fusion.freeze_with(&model.params, precision);
        let seq_len = model.cache.seq_len();
        let prepacked_gemms = accuracy_encoder.prepacked_gemms(seq_len)
            + latency_encoder.prepacked_gemms(seq_len)
            + (accuracy_head.depth()
                + latency_heads.first().map_or(0, FrozenMlp::depth)
                + fusion.depth()) as u64;
        Self {
            accuracy_encoder,
            latency_encoder,
            accuracy_head,
            latency_heads,
            fusion,
            platforms: model.platforms.clone(),
            max_latency: model.max_latency.clone(),
            nodes: model.cache.nodes(),
            seq_len,
            batch: batch.max(1),
            precision,
            prepacked_gemms,
            arenas: Mutex::new(Vec::new()),
        }
    }

    /// The platforms this engine carries latency heads for.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// The inference chunk size the engine was compiled with.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The panel precision the engine was frozen at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    fn check_slot(&self, slot: usize) -> Result<()> {
        if slot >= self.latency_heads.len() {
            return Err(crate::CoreError::Data(format!(
                "latency head slot {slot} out of range ({} heads)",
                self.latency_heads.len()
            )));
        }
        Ok(())
    }

    fn checkout(&self) -> InferArena {
        self.arenas.lock().pop().unwrap_or_default()
    }

    /// Checks a reusable activation arena out of the engine's pool (or
    /// builds a cold one when the pool is empty).
    ///
    /// Arenas hold no model state — only pooled activation buffers and
    /// scratch vectors — so a caller that owns one outright (the serving
    /// workers in `hwpr-serve`) can keep it warm across *different*
    /// engines, including across a hot-swap to a freshly compiled model,
    /// and drive the `*_with` prediction entry points allocation-free.
    pub fn take_arena(&self) -> InferArena {
        self.checkout()
    }

    /// Returns an arena taken with [`Self::take_arena`] to the engine's
    /// pool so later pool-routed predict calls reuse its warmed buffers.
    pub fn put_arena(&self, arena: InferArena) {
        self.arenas.lock().push(arena);
    }

    /// One frozen forward over `chunk`, returning pooled
    /// `(score, accuracy, latency)` columns (each `[chunk.len(), 1]`);
    /// the caller returns them to the arena's pool.
    fn forward_chunk(
        &self,
        cache: &EncodingCache,
        arena: &mut InferArena,
        chunk: &[Architecture],
        slot: usize,
    ) -> Result<(Matrix, Matrix, Matrix)> {
        let InferArena {
            pool,
            encodings,
            scratch,
        } = arena;
        cache.encodings_into(chunk, encodings);
        // the staged graph aggregation is chunk-specific: recycle the
        // previous chunk's buffer so the first encoder re-stages
        if let Some(agg) = scratch.graph_agg.take() {
            pool.put(agg);
        }
        let batch = chunk.len();
        let accuracy = {
            let _stage = hwpr_obs::span_labeled("infer.encode", "accuracy");
            let acc_repr = self.accuracy_encoder.forward(
                pool,
                scratch,
                encodings,
                self.nodes,
                self.seq_len,
            )?;
            self.accuracy_head.forward(pool, acc_repr)?
        };
        let latency = {
            let _stage = hwpr_obs::span_labeled("infer.encode", "latency");
            let lat_repr =
                self.latency_encoder
                    .forward(pool, scratch, encodings, self.nodes, self.seq_len)?;
            self.latency_heads[slot].forward(pool, lat_repr)?
        };
        // fuse the two branch columns (≡ concat_cols) into the score head
        let mut both = pool.take(batch, 2);
        for r in 0..batch {
            let row = both.row_mut(r);
            row[0] = accuracy[(r, 0)];
            row[1] = latency[(r, 0)];
        }
        let score = self.fusion.forward(pool, both)?;
        Ok((score, accuracy, latency))
    }

    /// Pareto scores for `archs` using latency head `slot`.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_scores(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
    ) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(archs.len());
        self.predict_scores_into(cache, archs, slot, &mut out)?;
        Ok(out)
    }

    /// [`Self::predict_scores`] into a caller-held buffer — the
    /// allocation-free steady-state form the `alloc-count` harness pins.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_scores_into(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let mut arena = self.checkout();
        let result = self.predict_scores_into_with(cache, archs, slot, out, &mut arena);
        self.arenas.lock().push(arena);
        result
    }

    /// [`Self::predict_scores_into`] against a caller-owned arena instead
    /// of the engine's pool — the form the serving workers use so one
    /// warmed arena survives model hot-swaps.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_scores_into_with(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
        out: &mut Vec<f64>,
        arena: &mut InferArena,
    ) -> Result<()> {
        self.check_slot(slot)?;
        let _span = hwpr_obs::span_labeled("infer.frozen", self.precision.label());
        out.reserve(archs.len());
        for chunk in archs.chunks(self.batch) {
            let timer = ChunkTimer::start();
            let (score, accuracy, latency) = self.forward_chunk(cache, arena, chunk, slot)?;
            out.extend(score.as_slice().iter().map(|&v| v as f64));
            arena.pool.put(score);
            arena.pool.put(accuracy);
            arena.pool.put(latency);
            timer.finish(self.prepacked_gemms, chunk.len());
        }
        Ok(())
    }

    /// Scores plus predicted minimisation objectives `[error %, latency
    /// ms]` in one pass.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_full(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        self.check_slot(slot)?;
        let _span = hwpr_obs::span_labeled("infer.frozen", self.precision.label());
        let mut arena = self.checkout();
        let mut scores = Vec::with_capacity(archs.len());
        let mut objectives = Vec::with_capacity(archs.len());
        for chunk in archs.chunks(self.batch) {
            let timer = ChunkTimer::start();
            let (score, accuracy, latency) = self.forward_chunk(cache, &mut arena, chunk, slot)?;
            scores.extend(score.as_slice().iter().map(|&v| v as f64));
            for (&a, &l) in accuracy.as_slice().iter().zip(latency.as_slice()) {
                objectives.push(vec![
                    denorm_error(a),
                    denorm_latency(l, self.max_latency[slot]),
                ]);
            }
            arena.pool.put(score);
            arena.pool.put(accuracy);
            arena.pool.put(latency);
            timer.finish(self.prepacked_gemms, chunk.len());
        }
        self.arenas.lock().push(arena);
        Ok((scores, objectives))
    }

    /// Predicted `(accuracy %, latency ms)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_objectives(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
    ) -> Result<Vec<(f64, f64)>> {
        let mut out = Vec::with_capacity(archs.len());
        self.predict_objectives_into(cache, archs, slot, &mut out)?;
        Ok(out)
    }

    /// [`Self::predict_objectives`] into a caller-held buffer — the
    /// allocation-free steady-state form.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_objectives_into(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
        out: &mut Vec<(f64, f64)>,
    ) -> Result<()> {
        let mut arena = self.checkout();
        let result = self.predict_objectives_into_with(cache, archs, slot, out, &mut arena);
        self.arenas.lock().push(arena);
        result
    }

    /// [`Self::predict_objectives_into`] against a caller-owned arena —
    /// see [`Self::predict_scores_into_with`].
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or a forward fails.
    pub fn predict_objectives_into_with(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
        out: &mut Vec<(f64, f64)>,
        arena: &mut InferArena,
    ) -> Result<()> {
        self.check_slot(slot)?;
        let _span = hwpr_obs::span_labeled("infer.frozen", self.precision.label());
        out.reserve(archs.len());
        for chunk in archs.chunks(self.batch) {
            let timer = ChunkTimer::start();
            let (score, accuracy, latency) = self.forward_chunk(cache, arena, chunk, slot)?;
            for (&a, &l) in accuracy.as_slice().iter().zip(latency.as_slice()) {
                out.push((
                    denorm_accuracy(a),
                    denorm_latency(l, self.max_latency[slot]),
                ));
            }
            arena.pool.put(score);
            arena.pool.put(accuracy);
            arena.pool.put(latency);
            timer.finish(self.prepacked_gemms, chunk.len());
        }
        Ok(())
    }

    /// [`Self::predict_full`] split across scoped worker threads. Each
    /// worker checks out its own arena while sharing the packed weights,
    /// so the parallel path never re-packs; results are spliced back in
    /// input order and are bit-identical to the serial path.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is out of range or any worker fails.
    pub fn predict_full_parallel(
        &self,
        cache: &EncodingCache,
        archs: &[Architecture],
        slot: usize,
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        self.check_slot(slot)?;
        let threads = threads.max(1).min(archs.len().max(1));
        if threads == 1 {
            return self.predict_full(cache, archs, slot);
        }
        // round each worker's share up to the compiled batch width so only
        // the final worker can see a partial batch (a per-thread remainder
        // would otherwise cost one underfilled GEMM chunk per worker)
        let chunk = archs
            .len()
            .div_ceil(threads)
            .next_multiple_of(self.batch)
            .min(archs.len());
        type ChunkResult = Result<(Vec<f64>, Vec<Vec<f64>>)>;
        // capture the calling thread's span context so worker spans stay in
        // the caller's trace instead of becoming per-thread orphan roots
        let ctx = hwpr_obs::current_context();
        let results: Vec<ChunkResult> = crossbeam::scope(|s| {
            let handles: Vec<_> = archs
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move |_| {
                        let _worker = hwpr_obs::span_with_parent("infer.worker", ctx);
                        self.predict_full(cache, c, slot)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prediction worker panicked"))
                .collect()
        })
        .expect("prediction scope panicked");
        let mut scores = Vec::with_capacity(archs.len());
        let mut objectives = Vec::with_capacity(archs.len());
        for r in results {
            let (s, o) = r?;
            scores.extend(s);
            objectives.extend(o);
        }
        Ok((scores, objectives))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::encoders::EncoderChoice;
    use hwpr_autograd::Tape;
    use hwpr_nasbench::{Dataset, SearchSpaceId};
    use hwpr_nn::layers::LayerRng;
    use hwpr_nn::Binder;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Frozen encoder output must stay inside the f32 error budget
    /// (max-abs ≤ 1e-5 vs the taped [`EncoderSet::forward`]) for every
    /// encoder combination; reruns over warmed scratch must be
    /// bit-stable.
    fn assert_encoder_within_budget(choice: EncoderChoice) {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let mut arch_rng = ChaCha8Rng::seed_from_u64(7);
        let archs: Vec<Architecture> = (0..5)
            .map(|_| Architecture::random(SearchSpaceId::NasBench201, &mut arch_rng))
            .collect();
        let mut params = Params::new();
        let enc = EncoderSet::new(
            &mut params,
            "enc",
            &ModelConfig::tiny(),
            choice,
            &cache,
            &archs,
        )
        .unwrap();

        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let mut rng = LayerRng::seed_from_u64(0);
        let out = enc.forward(&mut binder, &cache, &archs, &mut rng).unwrap();
        let expected = tape.value(out).clone();

        let frozen = FrozenEncoderSet::compile(&enc, &params, Precision::F32);
        let mut arena = InferArena::default();
        let encodings: Vec<_> = archs.iter().map(|a| cache.encoding(a)).collect();
        let repr = frozen
            .forward(
                &mut arena.pool,
                &mut arena.scratch,
                &encodings,
                cache.nodes(),
                cache.seq_len(),
            )
            .unwrap();
        assert_eq!(repr.shape(), expected.shape(), "{choice}");
        let worst = repr
            .as_slice()
            .iter()
            .zip(expected.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst <= 1e-5, "{choice}: frozen-vs-tape max-abs {worst}");
        let first = repr.as_slice().to_vec();

        // a second pass over warmed scratch must agree with the first
        let again = frozen
            .forward(
                &mut arena.pool,
                &mut arena.scratch,
                &encodings,
                cache.nodes(),
                cache.seq_len(),
            )
            .unwrap();
        assert_eq!(again.as_slice(), first.as_slice(), "{choice} rerun");
    }

    #[test]
    fn frozen_encoder_af_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::AF);
    }

    #[test]
    fn frozen_encoder_lstm_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::LSTM);
    }

    #[test]
    fn frozen_encoder_gcn_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::GCN);
    }

    #[test]
    fn frozen_encoder_lstm_af_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::LSTM_AF);
    }

    #[test]
    fn frozen_encoder_gcn_af_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::GCN_AF);
    }

    #[test]
    fn frozen_encoder_all_matches_tape() {
        assert_encoder_within_budget(EncoderChoice::ALL);
    }

    #[test]
    fn prepack_accounting_counts_every_panel() {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let archs = vec![Architecture::nb201_from_index(0).unwrap()];
        let mut params = Params::new();
        let cfg = ModelConfig::tiny();
        let enc =
            EncoderSet::new(&mut params, "e", &cfg, EncoderChoice::ALL, &cache, &archs).unwrap();
        let frozen = FrozenEncoderSet::compile(&enc, &params, Precision::F32);
        let expected = cfg.gcn_layers as u64 + (cfg.lstm_layers * cache.seq_len()) as u64;
        assert_eq!(frozen.prepacked_gemms(cache.seq_len()), expected);
    }
}
