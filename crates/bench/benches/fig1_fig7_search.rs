//! Benchmarks behind Figs. 1 & 7: the full MOEA search loop under the
//! fused single-surrogate evaluator vs a two-surrogate pair — the source
//! of the paper's search-time comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::fixture_dataset;
use hwpr_core::baselines::SurrogatePair;
use hwpr_core::{HwPrNas, ModelConfig, TrainConfig};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, SearchSpaceId};
use hwpr_search::{
    share_objectives, Evaluator, Fitness, Moea, MoeaConfig, Result as SearchResult2,
    ScoreEvaluator, SearchClock, SearchError,
};
use std::sync::Arc;

/// Objective evaluator over a shared surrogate pair (benchmark-only
/// wrapper so one trained pair can serve many iterations).
struct SharedPairEvaluator(Arc<SurrogatePair>);

impl Evaluator for SharedPairEvaluator {
    fn name(&self) -> String {
        self.0.name().to_string()
    }

    fn evaluate(
        &mut self,
        archs: &[Architecture],
        _clock: &mut SearchClock,
    ) -> SearchResult2<Fitness> {
        Ok(Fitness::Objectives(share_objectives(
            self.0
                .predict_objectives(archs)
                .map_err(|e| SearchError::Surrogate(e.to_string()))?,
        )))
    }

    fn calls_per_arch(&self) -> usize {
        2
    }
}

fn moea() -> Moea {
    Moea::new(MoeaConfig {
        population: 24,
        generations: 5,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })
    .expect("valid config")
}

fn bench_search(c: &mut Criterion) {
    let data = fixture_dataset(96);
    let (hwpr, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("training failed");
    let hwpr = Arc::new(hwpr);
    let (pair, _) = SurrogatePair::brp_nas(&data, &ModelConfig::tiny(), &TrainConfig::tiny())
        .expect("training failed");
    let pair = Arc::new(pair);

    let mut group = c.benchmark_group("fig1_fig7_search");
    group.sample_size(10);
    group.bench_function("moea_hw_pr_nas_1call", |b| {
        b.iter(|| {
            let model = Arc::clone(&hwpr);
            let mut eval = ScoreEvaluator::from_fn(
                "HW-PR-NAS",
                Box::new(move |archs| {
                    model
                        .predict_scores(archs, Platform::EdgeGpu)
                        .map_err(|e| SearchError::Surrogate(e.to_string()))
                }),
            );
            moea().run(&mut eval).expect("search failed")
        });
    });
    group.bench_function("moea_brp_nas_2calls", |b| {
        b.iter(|| {
            let mut eval = SharedPairEvaluator(Arc::clone(&pair));
            moea().run(&mut eval).expect("search failed")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
