//! Summary statistics for repeated experiment runs.

use std::fmt;

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (Bessel-corrected; 0 for fewer than two
/// samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Standard error of the mean: `std_dev / sqrt(n)`.
pub fn std_error(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        std_dev(values) / (values.len() as f64).sqrt()
    }
}

/// A `mean ± standard error` pair, as reported in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeanStdError {
    /// Mean over runs.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
}

impl MeanStdError {
    /// Summarises a set of run results.
    pub fn from_values(values: &[f64]) -> Self {
        Self {
            mean: mean(values),
            std_error: std_error(values),
        }
    }
}

impl fmt::Display for MeanStdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.std_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.13808993).abs() < 1e-6);
        assert!((std_error(&v) - 2.13808993 / 8.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(std_error(&[]), 0.0);
    }

    #[test]
    fn summary_display() {
        let s = MeanStdError::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        let text = s.to_string();
        assert!(text.contains("2.00") && text.contains('±'), "{text}");
    }
}
