//! Fitness evaluation backends for the search algorithms.
//!
//! Objective vectors are reference-counted ([`SharedObjectives`]) so the
//! memo caches and the survivor-selection machinery share points instead
//! of deep-copying them: a cache hit, a fitness merge or a front filter
//! only bumps an `Arc` count.

use crate::clock::SearchClock;
use crate::{Result, SearchError};
use hwpr_core::baselines::SurrogatePair;
use hwpr_core::HwPrNas;
use hwpr_hwmodel::{AccuracyModel, Platform, SimBench};
use hwpr_nasbench::{Architecture, Dataset};
use hwpr_obs::metrics::Counter;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A reference-counted minimisation objective vector. Cloning is an `Arc`
/// bump, so cached points flow into [`Fitness`] without reallocation.
pub type SharedObjectives = Arc<Vec<f64>>;

/// Wraps freshly computed objective vectors into shared points.
pub fn share_objectives(objectives: Vec<Vec<f64>>) -> Vec<SharedObjectives> {
    objectives.into_iter().map(Arc::new).collect()
}

/// What an evaluator returns for a batch of architectures.
#[derive(Debug, Clone, PartialEq)]
pub enum Fitness {
    /// One Pareto score per architecture (higher is better) — produced by
    /// the single fused HW-PR-NAS call.
    Scores(Vec<f64>),
    /// One minimisation objective vector per architecture — produced by
    /// per-objective surrogates or true measurements; selection must run
    /// non-dominated sorting on these.
    Objectives(Vec<SharedObjectives>),
    /// Scores plus predicted objectives from one fused call (the complete
    /// Fig. 3 output): the score drives selection, the predicted
    /// objectives only break ties for diversity.
    Ranked {
        /// Pareto scores (higher is better).
        scores: Vec<f64>,
        /// Predicted minimisation objectives.
        objectives: Vec<SharedObjectives>,
    },
}

impl Fitness {
    /// Number of evaluated architectures.
    pub fn len(&self) -> usize {
        match self {
            Fitness::Scores(s) => s.len(),
            Fitness::Objectives(o) => o.len(),
            Fitness::Ranked { scores, .. } => scores.len(),
        }
    }

    /// Whether the fitness is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fitness evaluation backend.
pub trait Evaluator {
    /// Display name used in experiment tables ("MOAE (HW-PR-NAS)", ...).
    fn name(&self) -> String;

    /// Evaluates a batch, charging any simulated cost to `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Surrogate`] when the backing model fails.
    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness>;

    /// How many underlying model calls one architecture costs (1 for the
    /// fused surrogate, 2 for per-objective pairs, 0 for measurements).
    fn calls_per_arch(&self) -> usize;

    /// Exact number of underlying model calls performed so far, when the
    /// evaluator tracks it (cache-backed evaluators answer repeats without
    /// a call). `None` means callers should assume
    /// `evaluations * calls_per_arch()`.
    fn calls_made(&self) -> Option<u64> {
        None
    }

    /// `(hits, misses)` totals for cache-backed evaluators; `None` when
    /// the evaluator has no cache. Feeds the per-generation search
    /// telemetry record.
    fn cache_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Scores-only fast path that writes into a caller-owned buffer
    /// (capacity reuse — the island search's warm generation loop stays
    /// allocation-free through this). `out` arrives cleared. Returns
    /// `Ok(false)` — without touching `out` — when the evaluator has no
    /// buffer-reusing path, and the caller falls back to
    /// [`Self::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Surrogate`] when the backing model fails.
    fn evaluate_scores_into(
        &mut self,
        archs: &[Architecture],
        clock: &mut SearchClock,
        out: &mut Vec<f64>,
    ) -> Result<bool> {
        let _ = (archs, clock, out);
        Ok(false)
    }

    /// The evaluator's memo-cache contents, sorted by key — what a search
    /// snapshot persists so a resumed run replays with the same cache
    /// state (empty for uncached evaluators).
    fn cache_snapshot(&self) -> Vec<CacheEntry> {
        Vec::new()
    }

    /// Restores a cache previously exported by [`Self::cache_snapshot`]
    /// (a no-op for uncached evaluators).
    fn restore_cache(&mut self, entries: &[CacheEntry]) {
        let _ = entries;
    }
}

/// One persisted score-cache entry (see [`Evaluator::cache_snapshot`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheEntry {
    /// Architecture string codec key.
    pub key: String,
    /// Cached Pareto score.
    pub score: f64,
    /// Cached predicted objectives.
    pub objectives: Vec<f64>,
}

/// Ground-truth evaluation against the synthetic benchmark: returns true
/// objectives and charges a simulated per-architecture measurement cost.
#[derive(Debug)]
pub struct MeasuredEvaluator {
    model: AccuracyModel,
    dataset: Dataset,
    platform: Platform,
    /// Simulated seconds charged per *new* architecture measured.
    pub seconds_per_eval: f64,
    three_objectives: bool,
    cache: HashMap<(hwpr_nasbench::SearchSpaceId, u128), SharedObjectives>,
}

impl MeasuredEvaluator {
    /// Default simulated measurement cost (seconds): flashing + running
    /// the benchmark harness on the device per architecture.
    pub const DEFAULT_SECONDS_PER_EVAL: f64 = 2.3;

    /// Creates a measured evaluator matching `bench`'s generating models.
    pub fn for_bench(bench: &SimBench, dataset: Dataset, platform: Platform) -> Self {
        Self::new(bench.oracle_model(), dataset, platform)
    }

    /// Creates a measured evaluator from an explicit accuracy model.
    pub fn new(model: AccuracyModel, dataset: Dataset, platform: Platform) -> Self {
        Self {
            model,
            dataset,
            platform,
            seconds_per_eval: Self::DEFAULT_SECONDS_PER_EVAL,
            three_objectives: false,
            cache: HashMap::new(),
        }
    }

    /// Switches the evaluator to the three-objective mode of Fig. 9
    /// (error, latency, energy).
    pub fn with_three_objectives(mut self) -> Self {
        self.three_objectives = true;
        self.cache.clear();
        self
    }

    /// True objectives of one architecture (no time charged) — used to
    /// score final populations.
    pub fn true_objectives(&self, arch: &Architecture) -> Vec<f64> {
        let entry = SimBench::measure(arch, &self.model);
        entry.objectives(self.dataset, self.platform)
    }

    /// True 3-objective vector (error, latency, energy).
    pub fn true_objectives3(&self, arch: &Architecture) -> Vec<f64> {
        let entry = SimBench::measure(arch, &self.model);
        entry.objectives3(self.dataset, self.platform)
    }
}

impl Evaluator for MeasuredEvaluator {
    fn name(&self) -> String {
        "Measured Values".to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        let mut objectives = Vec::with_capacity(archs.len());
        for arch in archs {
            let key = (arch.space(), arch.index());
            if let Some(hit) = self.cache.get(&key) {
                objectives.push(Arc::clone(hit));
                continue;
            }
            clock.charge_simulated(self.seconds_per_eval);
            let obj = Arc::new(if self.three_objectives {
                self.true_objectives3(arch)
            } else {
                self.true_objectives(arch)
            });
            self.cache.insert(key, Arc::clone(&obj));
            objectives.push(obj);
        }
        Ok(Fitness::Objectives(objectives))
    }

    fn calls_per_arch(&self) -> usize {
        0
    }
}

/// Scoring closure type for [`ScoreEvaluator::from_fn`]. `Send` so
/// score-backed evaluators can serve as island workers
/// (`Box<dyn Evaluator + Send>`).
pub type ScoreFn = Box<dyn FnMut(&[Architecture]) -> Result<Vec<f64>> + Send>;

/// Cross-generation surrogate score cache, keyed by the architecture
/// string codec ([`Architecture::to_arch_string`]).
///
/// The MOEA's mutation rate of 0.9 re-creates many architectures across
/// generations (and across restarts sharing the cache); each distinct
/// architecture pays for exactly one forward pass. The map is behind a
/// `parking_lot::RwLock` so the lookup pass never serialises readers.
///
/// Hit/miss counts live in the `hwpr-obs` metric registry (per-instance
/// counters named `search.cache.hits` / `search.cache.misses`): every
/// cache feeds the same telemetry snapshot that the search run exports,
/// and [`ScoreCache::hits`]/[`ScoreCache::misses`] keep serving the
/// functional consumers (`SearchResult::surrogate_calls`) with telemetry
/// off.
#[derive(Debug)]
pub struct ScoreCache {
    entries: RwLock<HashMap<String, (f64, SharedObjectives)>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreCache {
    /// Creates an empty cache. Wrap it in an [`Arc`] and pass it to
    /// [`HwPrNasEvaluator::with_shared_cache`] to span evaluators.
    pub fn new() -> Self {
        let registry = hwpr_obs::metrics::registry();
        Self {
            entries: RwLock::default(),
            hits: registry.register_counter(Counter::new("search.cache.hits")),
            misses: registry.register_counter(Counter::new("search.cache.misses")),
        }
    }

    /// Looks up one architecture key, counting the hit or miss.
    fn lookup(&self, key: &str) -> Option<(f64, SharedObjectives)> {
        let found = self.entries.read().get(key).cloned();
        match found {
            Some(ref hit) => {
                self.hits.inc();
                Some((hit.0, Arc::clone(&hit.1)))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn store(&self, key: String, score: f64, objectives: SharedObjectives) {
        self.entries.write().insert(key, (score, objectives));
    }

    /// Counts a lookup answered without a forward pass through a path
    /// other than [`Self::lookup`] (in-batch deduplication).
    fn count_hit(&self) {
        self.hits.inc();
    }

    /// Number of distinct architectures cached.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that required a surrogate call so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.hits.reset();
        self.misses.reset();
    }

    /// Exports every entry **sorted by key**: map iteration order is
    /// nondeterministic, and checkpoint bytes must be a pure function of
    /// the cache contents.
    pub fn snapshot(&self) -> Vec<CacheEntry> {
        let mut entries: Vec<CacheEntry> = self
            .entries
            .read()
            .iter()
            .map(|(key, (score, objectives))| CacheEntry {
                key: key.clone(),
                score: *score,
                objectives: objectives.as_ref().clone(),
            })
            .collect();
        entries.sort_unstable_by(|a, b| a.key.cmp(&b.key));
        entries
    }

    /// Reloads entries exported by [`Self::snapshot`] (counters are left
    /// alone; hits/misses restart from the resumed run's perspective).
    pub fn restore(&self, entries: &[CacheEntry]) {
        let mut map = self.entries.write();
        for e in entries {
            map.insert(e.key.clone(), (e.score, Arc::new(e.objectives.clone())));
        }
    }
}

/// Worker-thread count for parallel surrogate evaluation: `HWPR_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism. An invalid or zero `HWPR_THREADS` warns through the
/// telemetry event sink and falls back to the serial path (1 thread) —
/// a typo must not silently grab every core.
pub fn evaluation_threads() -> usize {
    hwpr_obs::env_or_else(
        "HWPR_THREADS",
        "a positive integer",
        parse_threads,
        || std::thread::available_parallelism().map_or(1, |n| n.get()),
        1,
    )
}

fn parse_threads(spec: &str) -> Option<usize> {
    spec.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Parses an explicit `HWPR_THREADS` value through the shared
/// warn-and-default policy (factored out of [`evaluation_threads`] so
/// tests need not mutate the environment).
#[cfg(test)]
pub(crate) fn threads_from_spec(spec: &str) -> usize {
    hwpr_obs::spec_or("HWPR_THREADS", "a positive integer", spec, parse_threads, 1)
}

/// Evaluates with the full HW-PR-NAS model: one call yields the Pareto
/// score and the branch objective predictions (Fig. 3).
///
/// Evaluation is chunked across `crossbeam` scoped worker threads (count
/// from `HWPR_THREADS`, default available parallelism) and backed by a
/// cross-generation [`ScoreCache`]. Results are spliced back in input
/// index order and dropout is inert at inference, so a seeded search is
/// bit-identical regardless of the thread count.
#[derive(Debug)]
pub struct HwPrNasEvaluator {
    model: Arc<HwPrNas>,
    platform: Platform,
    call_cost_s: f64,
    threads: usize,
    cache: Arc<ScoreCache>,
}

impl HwPrNasEvaluator {
    /// Wraps a trained model targeting `platform`. Accepts the model by
    /// value or as an [`Arc`], so several evaluators can share one model.
    ///
    /// Eagerly compiles the model's frozen inference engine so the weight
    /// packing happens here, once, instead of inside the first
    /// generation's scoring call.
    pub fn new(model: impl Into<Arc<HwPrNas>>, platform: Platform) -> Self {
        let model = model.into();
        let _ = model.frozen();
        Self {
            model,
            platform,
            call_cost_s: 0.0,
            threads: evaluation_threads(),
            cache: Arc::new(ScoreCache::new()),
        }
    }

    /// Charges `seconds` of simulated serving overhead per surrogate call
    /// (the paper's searches run each evaluation through a Python/GPU
    /// serving stack where dispatch dominates; Fig. 7 models that cost).
    /// Cache hits skip the serving stack, so they are not charged.
    pub fn with_simulated_call_cost(mut self, seconds: f64) -> Self {
        self.call_cost_s = seconds;
        self
    }

    /// Overrides the worker-thread count (`1` forces the serial path).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the score cache with a shared one, so several evaluators
    /// (or repeated runs) reuse each other's forward passes.
    pub fn with_shared_cache(mut self, cache: Arc<ScoreCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The evaluator's score cache (shareable via [`Arc::clone`]).
    pub fn cache(&self) -> &Arc<ScoreCache> {
        &self.cache
    }
}

impl Evaluator for HwPrNasEvaluator {
    fn name(&self) -> String {
        "HW-PR-NAS".to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        let _span = hwpr_obs::span("search.eval");
        let mut scores = vec![0.0f64; archs.len()];
        let mut objectives: Vec<Option<SharedObjectives>> = vec![None; archs.len()];
        // batch-local dedup on top of the shared cache: duplicate offspring
        // within one generation share a single forward slot
        let mut miss_index: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<String> = Vec::new();
        let mut miss_slot: HashMap<String, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new(); // (arch idx, miss slot)
        for (i, arch) in archs.iter().enumerate() {
            let key = arch.to_arch_string();
            if let Some(&slot) = miss_slot.get(&key) {
                // duplicate within this batch: rides the in-flight slot
                self.cache.count_hit();
                dups.push((i, slot));
            } else if let Some((score, objs)) = self.cache.lookup(&key) {
                scores[i] = score;
                objectives[i] = Some(objs);
            } else {
                miss_slot.insert(key.clone(), miss_index.len());
                miss_index.push(i);
                miss_keys.push(key);
            }
        }
        if !miss_index.is_empty() {
            clock.charge_simulated(self.call_cost_s * miss_index.len() as f64);
            let miss_archs: Vec<Architecture> =
                miss_index.iter().map(|&i| archs[i].clone()).collect();
            let (miss_scores, miss_objs) = self
                .model
                .predict_full_parallel(&miss_archs, self.platform, self.threads)
                .map_err(|e| SearchError::Surrogate(e.to_string()))?;
            for (slot, (score, objs)) in miss_scores.into_iter().zip(miss_objs).enumerate() {
                let objs = Arc::new(objs);
                self.cache
                    .store(miss_keys[slot].clone(), score, Arc::clone(&objs));
                let i = miss_index[slot];
                scores[i] = score;
                objectives[i] = Some(objs);
            }
            for (i, slot) in dups {
                let j = miss_index[slot];
                scores[i] = scores[j];
                objectives[i] = objectives[j].clone();
            }
        }
        let objectives = objectives
            .into_iter()
            .map(|o| o.expect("every architecture resolved via cache or prediction"))
            .collect();
        Ok(Fitness::Ranked { scores, objectives })
    }

    fn calls_per_arch(&self) -> usize {
        1
    }

    fn calls_made(&self) -> Option<u64> {
        Some(self.cache.misses())
    }

    fn cache_stats(&self) -> Option<(u64, u64)> {
        Some((self.cache.hits(), self.cache.misses()))
    }

    fn cache_snapshot(&self) -> Vec<CacheEntry> {
        self.cache.snapshot()
    }

    fn restore_cache(&mut self, entries: &[CacheEntry]) {
        self.cache.restore(entries);
    }
}

/// Evaluates with a bare scoring function (scores only, no objective
/// predictions). Prefer [`HwPrNasEvaluator`] for the full model: with
/// score-only fitness the elitist selection has no diversity signal, so
/// front coverage depends entirely on how flat the scores are within a
/// front.
pub struct ScoreEvaluator {
    name: String,
    score_fn: ScoreFn,
}

impl std::fmt::Debug for ScoreEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScoreEvaluator({})", self.name)
    }
}

impl ScoreEvaluator {
    /// Wraps a trained HW-PR-NAS model for `platform`.
    pub fn hw_pr_nas(model: HwPrNas, platform: Platform) -> Self {
        Self {
            name: "HW-PR-NAS".to_string(),
            score_fn: Box::new(move |archs| {
                model
                    .predict_scores(archs, platform)
                    .map_err(|e| SearchError::Surrogate(e.to_string()))
            }),
        }
    }

    /// Wraps an arbitrary scoring function (used by the scalable variant
    /// and by tests).
    pub fn from_fn(name: impl Into<String>, score_fn: ScoreFn) -> Self {
        Self {
            name: name.into(),
            score_fn,
        }
    }
}

impl Evaluator for ScoreEvaluator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn evaluate(&mut self, archs: &[Architecture], _clock: &mut SearchClock) -> Result<Fitness> {
        Ok(Fitness::Scores((self.score_fn)(archs)?))
    }

    fn calls_per_arch(&self) -> usize {
        1
    }
}

/// Evaluates with two per-objective surrogates (BRP-NAS / GATES style).
#[derive(Debug)]
pub struct PairEvaluator {
    pair: SurrogatePair,
    call_cost_s: f64,
}

impl PairEvaluator {
    /// Wraps a trained surrogate pair.
    pub fn new(pair: SurrogatePair) -> Self {
        Self {
            pair,
            call_cost_s: 0.0,
        }
    }

    /// Charges `seconds` of simulated serving overhead per surrogate call
    /// (two calls per architecture for a pair — see
    /// [`HwPrNasEvaluator::with_simulated_call_cost`]).
    pub fn with_simulated_call_cost(mut self, seconds: f64) -> Self {
        self.call_cost_s = seconds;
        self
    }
}

impl Evaluator for PairEvaluator {
    fn name(&self) -> String {
        self.pair.name().to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        clock.charge_simulated(self.call_cost_s * 2.0 * archs.len() as f64);
        Ok(Fitness::Objectives(share_objectives(
            self.pair.predict_objectives(archs)?,
        )))
    }

    fn calls_per_arch(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::SimBenchConfig;
    use hwpr_nasbench::SearchSpaceId;

    fn bench() -> SimBench {
        SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(8),
            seed: 2,
        })
    }

    #[test]
    fn measured_matches_bench_table() {
        let b = bench();
        let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let archs: Vec<Architecture> = b.entries().iter().map(|e| e.arch().clone()).collect();
        let mut clock = SearchClock::unbounded();
        let Fitness::Objectives(objs) = eval.evaluate(&archs, &mut clock).unwrap() else {
            panic!("measured evaluator must return objectives");
        };
        for (o, e) in objs.iter().zip(b.entries()) {
            let expected = e.objectives(Dataset::Cifar10, Platform::EdgeGpu);
            assert!((o[0] - expected[0]).abs() < 1e-9);
            assert!((o[1] - expected[1]).abs() < 1e-9);
        }
        assert_eq!(eval.calls_per_arch(), 0);
        assert_eq!(eval.name(), "Measured Values");
    }

    #[test]
    fn measured_charges_only_new_architectures() {
        let b = bench();
        let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let archs = vec![b.entries()[0].arch().clone(); 5];
        let mut clock = SearchClock::unbounded();
        eval.evaluate(&archs, &mut clock).unwrap();
        let charged = clock.simulated_elapsed().as_secs_f64();
        assert!((charged - MeasuredEvaluator::DEFAULT_SECONDS_PER_EVAL).abs() < 1e-9);
    }

    #[test]
    fn measured_cache_hit_shares_the_point() {
        let b = bench();
        let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let archs = vec![b.entries()[0].arch().clone(); 3];
        let mut clock = SearchClock::unbounded();
        let Fitness::Objectives(objs) = eval.evaluate(&archs, &mut clock).unwrap() else {
            panic!("measured evaluator must return objectives");
        };
        // all three entries point at the same cached allocation
        assert!(Arc::ptr_eq(&objs[0], &objs[1]));
        assert!(Arc::ptr_eq(&objs[0], &objs[2]));
    }

    #[test]
    fn score_evaluator_from_fn() {
        let mut eval = ScoreEvaluator::from_fn(
            "stub",
            Box::new(|archs| Ok(archs.iter().map(|a| a.index() as f64).collect())),
        );
        assert_eq!(eval.name(), "stub");
        assert_eq!(eval.calls_per_arch(), 1);
        let archs = vec![
            Architecture::nb201_from_index(3).unwrap(),
            Architecture::nb201_from_index(7).unwrap(),
        ];
        let mut clock = SearchClock::unbounded();
        let Fitness::Scores(s) = eval.evaluate(&archs, &mut clock).unwrap() else {
            panic!("score evaluator must return scores");
        };
        assert_eq!(s, vec![3.0, 7.0]);
    }

    #[test]
    fn fitness_len() {
        assert_eq!(Fitness::Scores(vec![1.0, 2.0]).len(), 2);
        assert_eq!(
            Fitness::Objectives(share_objectives(vec![vec![1.0, 2.0]])).len(),
            1
        );
        assert!(Fitness::Scores(vec![]).is_empty());
    }

    #[test]
    fn true_objectives3_has_energy() {
        let b = bench();
        let eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let o = eval.true_objectives3(b.entries()[0].arch());
        assert_eq!(o.len(), 3);
        assert!(o[2] > 0.0);
    }

    #[test]
    fn score_cache_counts_hits_and_misses() {
        let cache = ScoreCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup("a").is_none());
        cache.store("a".into(), 1.5, Arc::new(vec![2.0, 3.0]));
        let (score, objs) = cache.lookup("a").expect("stored entry");
        assert!((score - 1.5).abs() < 1e-12);
        assert_eq!(*objs, vec![2.0, 3.0]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn threads_spec_falls_back_to_serial_on_garbage() {
        assert_eq!(threads_from_spec("4"), 4);
        assert_eq!(threads_from_spec(" 2 "), 2);
        // zero, negative and non-numeric specs warn and run serially
        assert_eq!(threads_from_spec("0"), 1);
        assert_eq!(threads_from_spec("-3"), 1);
        assert_eq!(threads_from_spec("lots"), 1);
        assert_eq!(threads_from_spec(""), 1);
    }

    #[test]
    fn evaluation_threads_honours_env() {
        // read-only check of the fallback path: without the env var the
        // count is the machine parallelism (>= 1)
        if std::env::var("HWPR_THREADS").is_err() {
            assert!(evaluation_threads() >= 1);
        }
    }
}
