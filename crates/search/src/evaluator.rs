//! Fitness evaluation backends for the search algorithms.

use crate::clock::SearchClock;
use crate::{Result, SearchError};
use hwpr_core::baselines::SurrogatePair;
use hwpr_core::HwPrNas;
use hwpr_hwmodel::{AccuracyModel, Platform, SimBench};
use hwpr_nasbench::{Architecture, Dataset};
use std::collections::HashMap;

/// What an evaluator returns for a batch of architectures.
#[derive(Debug, Clone, PartialEq)]
pub enum Fitness {
    /// One Pareto score per architecture (higher is better) — produced by
    /// the single fused HW-PR-NAS call.
    Scores(Vec<f64>),
    /// One minimisation objective vector per architecture — produced by
    /// per-objective surrogates or true measurements; selection must run
    /// non-dominated sorting on these.
    Objectives(Vec<Vec<f64>>),
    /// Scores plus predicted objectives from one fused call (the complete
    /// Fig. 3 output): the score drives selection, the predicted
    /// objectives only break ties for diversity.
    Ranked {
        /// Pareto scores (higher is better).
        scores: Vec<f64>,
        /// Predicted minimisation objectives.
        objectives: Vec<Vec<f64>>,
    },
}

impl Fitness {
    /// Number of evaluated architectures.
    pub fn len(&self) -> usize {
        match self {
            Fitness::Scores(s) => s.len(),
            Fitness::Objectives(o) => o.len(),
            Fitness::Ranked { scores, .. } => scores.len(),
        }
    }

    /// Whether the fitness is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fitness evaluation backend.
pub trait Evaluator {
    /// Display name used in experiment tables ("MOAE (HW-PR-NAS)", ...).
    fn name(&self) -> String;

    /// Evaluates a batch, charging any simulated cost to `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Surrogate`] when the backing model fails.
    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness>;

    /// How many underlying model calls one architecture costs (1 for the
    /// fused surrogate, 2 for per-objective pairs, 0 for measurements).
    fn calls_per_arch(&self) -> usize;
}

/// Ground-truth evaluation against the synthetic benchmark: returns true
/// objectives and charges a simulated per-architecture measurement cost.
#[derive(Debug)]
pub struct MeasuredEvaluator {
    model: AccuracyModel,
    dataset: Dataset,
    platform: Platform,
    /// Simulated seconds charged per *new* architecture measured.
    pub seconds_per_eval: f64,
    three_objectives: bool,
    cache: HashMap<(hwpr_nasbench::SearchSpaceId, u128), Vec<f64>>,
}

impl MeasuredEvaluator {
    /// Default simulated measurement cost (seconds): flashing + running
    /// the benchmark harness on the device per architecture.
    pub const DEFAULT_SECONDS_PER_EVAL: f64 = 2.3;

    /// Creates a measured evaluator matching `bench`'s generating models.
    pub fn for_bench(bench: &SimBench, dataset: Dataset, platform: Platform) -> Self {
        Self::new(bench.oracle_model(), dataset, platform)
    }

    /// Creates a measured evaluator from an explicit accuracy model.
    pub fn new(model: AccuracyModel, dataset: Dataset, platform: Platform) -> Self {
        Self {
            model,
            dataset,
            platform,
            seconds_per_eval: Self::DEFAULT_SECONDS_PER_EVAL,
            three_objectives: false,
            cache: HashMap::new(),
        }
    }

    /// Switches the evaluator to the three-objective mode of Fig. 9
    /// (error, latency, energy).
    pub fn with_three_objectives(mut self) -> Self {
        self.three_objectives = true;
        self.cache.clear();
        self
    }

    /// True objectives of one architecture (no time charged) — used to
    /// score final populations.
    pub fn true_objectives(&self, arch: &Architecture) -> Vec<f64> {
        let entry = SimBench::measure(arch, &self.model);
        entry.objectives(self.dataset, self.platform)
    }

    /// True 3-objective vector (error, latency, energy).
    pub fn true_objectives3(&self, arch: &Architecture) -> Vec<f64> {
        let entry = SimBench::measure(arch, &self.model);
        entry.objectives3(self.dataset, self.platform)
    }
}

impl Evaluator for MeasuredEvaluator {
    fn name(&self) -> String {
        "Measured Values".to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        let mut objectives = Vec::with_capacity(archs.len());
        for arch in archs {
            let key = (arch.space(), arch.index());
            if let Some(hit) = self.cache.get(&key) {
                objectives.push(hit.clone());
                continue;
            }
            clock.charge_simulated(self.seconds_per_eval);
            let obj = if self.three_objectives {
                self.true_objectives3(arch)
            } else {
                self.true_objectives(arch)
            };
            self.cache.insert(key, obj.clone());
            objectives.push(obj);
        }
        Ok(Fitness::Objectives(objectives))
    }

    fn calls_per_arch(&self) -> usize {
        0
    }
}

/// Scoring closure type for [`ScoreEvaluator::from_fn`].
pub type ScoreFn = Box<dyn FnMut(&[Architecture]) -> Result<Vec<f64>>>;

/// Evaluates with the full HW-PR-NAS model: one call yields the Pareto
/// score and the branch objective predictions (Fig. 3).
#[derive(Debug)]
pub struct HwPrNasEvaluator {
    model: HwPrNas,
    platform: Platform,
    call_cost_s: f64,
}

impl HwPrNasEvaluator {
    /// Wraps a trained model targeting `platform`.
    pub fn new(model: HwPrNas, platform: Platform) -> Self {
        Self {
            model,
            platform,
            call_cost_s: 0.0,
        }
    }

    /// Charges `seconds` of simulated serving overhead per surrogate call
    /// (the paper's searches run each evaluation through a Python/GPU
    /// serving stack where dispatch dominates; Fig. 7 models that cost).
    pub fn with_simulated_call_cost(mut self, seconds: f64) -> Self {
        self.call_cost_s = seconds;
        self
    }
}

impl Evaluator for HwPrNasEvaluator {
    fn name(&self) -> String {
        "HW-PR-NAS".to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        clock.charge_simulated(self.call_cost_s * archs.len() as f64);
        let (scores, objectives) = self
            .model
            .predict_full(archs, self.platform)
            .map_err(|e| SearchError::Surrogate(e.to_string()))?;
        Ok(Fitness::Ranked { scores, objectives })
    }

    fn calls_per_arch(&self) -> usize {
        1
    }
}

/// Evaluates with a bare scoring function (scores only, no objective
/// predictions). Prefer [`HwPrNasEvaluator`] for the full model: with
/// score-only fitness the elitist selection has no diversity signal, so
/// front coverage depends entirely on how flat the scores are within a
/// front.
pub struct ScoreEvaluator {
    name: String,
    score_fn: ScoreFn,
}

impl std::fmt::Debug for ScoreEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScoreEvaluator({})", self.name)
    }
}

impl ScoreEvaluator {
    /// Wraps a trained HW-PR-NAS model for `platform`.
    pub fn hw_pr_nas(model: HwPrNas, platform: Platform) -> Self {
        Self {
            name: "HW-PR-NAS".to_string(),
            score_fn: Box::new(move |archs| {
                model
                    .predict_scores(archs, platform)
                    .map_err(|e| SearchError::Surrogate(e.to_string()))
            }),
        }
    }

    /// Wraps an arbitrary scoring function (used by the scalable variant
    /// and by tests).
    pub fn from_fn(name: impl Into<String>, score_fn: ScoreFn) -> Self {
        Self {
            name: name.into(),
            score_fn,
        }
    }
}

impl Evaluator for ScoreEvaluator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn evaluate(&mut self, archs: &[Architecture], _clock: &mut SearchClock) -> Result<Fitness> {
        Ok(Fitness::Scores((self.score_fn)(archs)?))
    }

    fn calls_per_arch(&self) -> usize {
        1
    }
}

/// Evaluates with two per-objective surrogates (BRP-NAS / GATES style).
#[derive(Debug)]
pub struct PairEvaluator {
    pair: SurrogatePair,
    call_cost_s: f64,
}

impl PairEvaluator {
    /// Wraps a trained surrogate pair.
    pub fn new(pair: SurrogatePair) -> Self {
        Self {
            pair,
            call_cost_s: 0.0,
        }
    }

    /// Charges `seconds` of simulated serving overhead per surrogate call
    /// (two calls per architecture for a pair — see
    /// [`HwPrNasEvaluator::with_simulated_call_cost`]).
    pub fn with_simulated_call_cost(mut self, seconds: f64) -> Self {
        self.call_cost_s = seconds;
        self
    }
}

impl Evaluator for PairEvaluator {
    fn name(&self) -> String {
        self.pair.name().to_string()
    }

    fn evaluate(&mut self, archs: &[Architecture], clock: &mut SearchClock) -> Result<Fitness> {
        clock.charge_simulated(self.call_cost_s * 2.0 * archs.len() as f64);
        Ok(Fitness::Objectives(self.pair.predict_objectives(archs)?))
    }

    fn calls_per_arch(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::SimBenchConfig;
    use hwpr_nasbench::SearchSpaceId;

    fn bench() -> SimBench {
        SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(8),
            seed: 2,
        })
    }

    #[test]
    fn measured_matches_bench_table() {
        let b = bench();
        let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let archs: Vec<Architecture> = b.entries().iter().map(|e| e.arch().clone()).collect();
        let mut clock = SearchClock::unbounded();
        let Fitness::Objectives(objs) = eval.evaluate(&archs, &mut clock).unwrap() else {
            panic!("measured evaluator must return objectives");
        };
        for (o, e) in objs.iter().zip(b.entries()) {
            let expected = e.objectives(Dataset::Cifar10, Platform::EdgeGpu);
            assert!((o[0] - expected[0]).abs() < 1e-9);
            assert!((o[1] - expected[1]).abs() < 1e-9);
        }
        assert_eq!(eval.calls_per_arch(), 0);
        assert_eq!(eval.name(), "Measured Values");
    }

    #[test]
    fn measured_charges_only_new_architectures() {
        let b = bench();
        let mut eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let archs = vec![b.entries()[0].arch().clone(); 5];
        let mut clock = SearchClock::unbounded();
        eval.evaluate(&archs, &mut clock).unwrap();
        let charged = clock.simulated_elapsed().as_secs_f64();
        assert!((charged - MeasuredEvaluator::DEFAULT_SECONDS_PER_EVAL).abs() < 1e-9);
    }

    #[test]
    fn score_evaluator_from_fn() {
        let mut eval = ScoreEvaluator::from_fn(
            "stub",
            Box::new(|archs| Ok(archs.iter().map(|a| a.index() as f64).collect())),
        );
        assert_eq!(eval.name(), "stub");
        assert_eq!(eval.calls_per_arch(), 1);
        let archs = vec![
            Architecture::nb201_from_index(3).unwrap(),
            Architecture::nb201_from_index(7).unwrap(),
        ];
        let mut clock = SearchClock::unbounded();
        let Fitness::Scores(s) = eval.evaluate(&archs, &mut clock).unwrap() else {
            panic!("score evaluator must return scores");
        };
        assert_eq!(s, vec![3.0, 7.0]);
    }

    #[test]
    fn fitness_len() {
        assert_eq!(Fitness::Scores(vec![1.0, 2.0]).len(), 2);
        assert_eq!(Fitness::Objectives(vec![vec![1.0, 2.0]]).len(), 1);
        assert!(Fitness::Scores(vec![]).is_empty());
    }

    #[test]
    fn true_objectives3_has_energy() {
        let b = bench();
        let eval = MeasuredEvaluator::for_bench(&b, Dataset::Cifar10, Platform::EdgeGpu);
        let o = eval.true_objectives3(b.entries()[0].arch());
        assert_eq!(o.len(), 3);
        assert!(o[2] > 0.0);
    }
}
