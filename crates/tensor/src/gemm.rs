//! Cache-tiled, register-blocked GEMM driver behind [`Matrix::matmul`],
//! [`Matrix::matmul_tn`] and [`Matrix::matmul_nt`].
//!
//! The driver follows the classic BLIS/GotoBLAS decomposition: the output
//! is computed in `MC x NC` tiles, each fed from a packed `KC`-deep panel
//! of `B` (contiguous `NR`-column strips) and a packed block of `A`
//! (contiguous `MR`-row strips), with an `MR x NR` register-blocked
//! micro-kernel at the core. The micro-kernel's inner loop is a pure
//! multiply-add over fixed-size arrays — branch-free and FMA-friendly, so
//! the compiler can keep the `MR x NR` accumulator in vector registers.
//!
//! Both transposed variants (`A^T B`, `A B^T`) reuse the same driver: the
//! transpose is absorbed by the packing routines, which read the source
//! with a stride instead of materialising the transposed matrix. All three
//! entry points therefore accumulate in the same `k`-order, which keeps
//! `matmul_tn(a, b)` bit-identical to `a.transpose().matmul(b)`.
//!
//! The naive loop-nest kernels these replaced live on in
//! [`crate::reference`] for differential testing and benchmarking.

/// Micro-kernel rows: C tile height held in registers.
pub const MR: usize = 8;
/// Micro-kernel columns: C tile width held in registers.
pub const NR: usize = 16;
/// K-blocking: depth of the packed panels (sized for L1-resident strips).
pub(crate) const KC: usize = 256;
/// M-blocking: rows of A packed per inner block (L2-resident).
pub(crate) const MC: usize = 128;
/// N-blocking: columns of B packed per outer panel (L3-resident).
pub(crate) const NC: usize = 512;

/// How a logically `rows x cols` operand is laid out in its backing slice.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `src[r * cols + c]` — the operand is stored as given.
    RowMajor,
    /// `src[c * rows + r]` — the operand is the transpose of its storage,
    /// i.e. the storage holds a `cols x rows` row-major matrix.
    Transposed,
}

#[inline(always)]
fn load(src: &[f32], layout: Layout, rows: usize, cols: usize, r: usize, c: usize) -> f32 {
    debug_assert!(r < rows && c < cols);
    match layout {
        Layout::RowMajor => src[r * cols + c],
        Layout::Transposed => src[c * rows + r],
    }
}

/// Packs the `mc x kc` block of `A` at `(ic, pc)` into `MR`-row strips:
/// strip `ir/MR` holds `kc` groups of `MR` consecutive logical rows,
/// zero-padded past `mc` so the micro-kernel never reads out of bounds.
pub(crate) fn pack_a(
    a: &[f32],
    layout: Layout,
    (m, k): (usize, usize),
    (ic, pc): (usize, usize),
    (mc, kc): (usize, usize),
    dst: &mut Vec<f32>,
) {
    dst.clear();
    dst.reserve(mc.div_ceil(MR) * MR * kc);
    for ir in (0..mc).step_by(MR) {
        let live = MR.min(mc - ir);
        for kk in 0..kc {
            for ii in 0..live {
                dst.push(load(a, layout, m, k, ic + ir + ii, pc + kk));
            }
            for _ in live..MR {
                dst.push(0.0);
            }
        }
    }
}

/// Packs the `kc x nc` panel of `B` at `(pc, jc)` into `NR`-column strips:
/// strip `jr/NR` holds `kc` groups of `NR` consecutive logical columns,
/// zero-padded past `nc`.
fn pack_b(
    b: &[f32],
    layout: Layout,
    (k, n): (usize, usize),
    (pc, jc): (usize, usize),
    (kc, nc): (usize, usize),
    dst: &mut Vec<f32>,
) {
    dst.clear();
    pack_b_append(b, layout, (k, n), (pc, jc), (kc, nc), dst);
}

/// [`pack_b`] without the clear: appends the packed panel to `dst`, so a
/// whole operand can be packed panel-by-panel into one buffer (see
/// [`pack_b_full`]).
fn pack_b_append(
    b: &[f32],
    layout: Layout,
    (k, n): (usize, usize),
    (pc, jc): (usize, usize),
    (kc, nc): (usize, usize),
    dst: &mut Vec<f32>,
) {
    dst.reserve(nc.div_ceil(NR) * NR * kc);
    for jr in (0..nc).step_by(NR) {
        let live = NR.min(nc - jr);
        for kk in 0..kc {
            if layout == Layout::RowMajor && live == NR {
                let row = (pc + kk) * n + jc + jr;
                dst.extend_from_slice(&b[row..row + NR]);
            } else {
                for jj in 0..live {
                    dst.push(load(b, layout, k, n, pc + kk, jc + jr + jj));
                }
                for _ in live..NR {
                    dst.push(0.0);
                }
            }
        }
    }
}

/// `MR x NR` register-blocked core: `acc += Astrip @ Bstrip` over `kc`.
/// Fixed-size arrays and a branch-free body let the compiler unroll and
/// vectorise (and fuse into FMAs where the target allows).
/// AVX-512 micro-kernel: one `zmm` accumulator per tile row (`NR` = 16 =
/// one 512-bit vector), `vfmaddps` per row per `k` step. The eight
/// independent accumulator chains cover the FMA latency.
///
/// Compiled in only when the build targets a CPU with AVX-512F (e.g. via
/// `-C target-cpu=native`, see `.cargo/config.toml`); other targets use
/// the portable kernel below. The FMA rounds once per multiply-add where
/// the portable kernel rounds twice, so results may differ from the
/// reference kernels by a few ULPs — the differential proptests allow for
/// this.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
fn micro_kernel(kc: usize, a_strip: &[f32], b_strip: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16, "one zmm register holds exactly NR lanes") };
    assert!(a_strip.len() >= kc * MR, "packed A strip too short");
    assert!(b_strip.len() >= kc * NR, "packed B strip too short");
    // SAFETY: AVX-512F is statically enabled by the cfg above, and the
    // asserts guarantee every pointer below stays inside the strips.
    unsafe {
        let mut rows = [_mm512_setzero_ps(); MR];
        for (row, dst) in rows.iter_mut().zip(acc.iter()) {
            *row = _mm512_loadu_ps(dst.as_ptr());
        }
        let mut pa = a_strip.as_ptr();
        let mut pb = b_strip.as_ptr();
        for _ in 0..kc {
            let b = _mm512_loadu_ps(pb);
            for (i, row) in rows.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*pa.add(i));
                *row = _mm512_fmadd_ps(a, b, *row);
            }
            pa = pa.add(MR);
            pb = pb.add(NR);
        }
        for (dst, row) in acc.iter_mut().zip(rows.iter()) {
            _mm512_storeu_ps(dst.as_mut_ptr(), *row);
        }
    }
}

/// Portable micro-kernel for targets without AVX-512F.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
fn micro_kernel(kc: usize, a_strip: &[f32], b_strip: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(a_strip.len() >= kc * MR);
    debug_assert!(b_strip.len() >= kc * NR);
    // `chunks_exact` gives the optimiser compile-time strip widths with no
    // bounds checks or panic edges inside the loop, which is what lets it
    // keep the whole accumulator tile in vector registers.
    let a_chunks = a_strip.chunks_exact(MR).take(kc);
    let b_chunks = b_strip.chunks_exact(NR).take(kc);
    for (a_vals, b_vals) in a_chunks.zip(b_chunks) {
        for (row, &a_val) in acc.iter_mut().zip(a_vals) {
            for (cell, &b_val) in row.iter_mut().zip(b_vals) {
                *cell += a_val * b_val;
            }
        }
    }
}

/// [`micro_kernel`] reading a full `MR`-row tile of row-major `A` in
/// place (row stride `lda`) instead of from a packed strip: the broadcast
/// loads are scalar either way, so skipping the pack removes a whole copy
/// of `A` per GEMM without touching the per-element FMA chain — results
/// stay bit-identical to the packed path.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
pub(crate) fn micro_kernel_direct(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    assert!(b_strip.len() >= kc * NR, "packed B strip too short");
    assert!(a.len() > (MR - 1) * lda + kc - 1, "A tile out of bounds");
    // SAFETY: AVX-512F is statically enabled by the cfg; the asserts bound
    // every read below.
    unsafe {
        let mut rows = [_mm512_setzero_ps(); MR];
        for (row, dst) in rows.iter_mut().zip(acc.iter()) {
            *row = _mm512_loadu_ps(dst.as_ptr());
        }
        let pa = a.as_ptr();
        let mut pb = b_strip.as_ptr();
        for p in 0..kc {
            let b = _mm512_loadu_ps(pb);
            for (i, row) in rows.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*pa.add(i * lda + p));
                *row = _mm512_fmadd_ps(av, b, *row);
            }
            pb = pb.add(NR);
        }
        for (dst, row) in acc.iter_mut().zip(rows.iter()) {
            _mm512_storeu_ps(dst.as_mut_ptr(), *row);
        }
    }
}

/// Portable in-place-`A` micro-kernel (see the AVX-512 variant above).
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
pub(crate) fn micro_kernel_direct(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(b_strip.len() >= kc * NR);
    debug_assert!(a.len() > (MR - 1) * lda + kc - 1);
    for p in 0..kc {
        let b_vals = &b_strip[p * NR..(p + 1) * NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let a_val = a[i * lda + p];
            for (cell, &b_val) in row.iter_mut().zip(b_vals) {
                *cell += a_val * b_val;
            }
        }
    }
}

/// [`micro_kernel_direct`] for the overwrite case (`pc == 0`, full
/// `MR x NR` tile): accumulates from zero in registers and stores the
/// finished tile straight into `C` (row stride `ldc`), skipping the
/// stack accumulator's zero-fill / load / store / copy round trip. The
/// per-element FMA chain is unchanged, so the stored bits match the
/// staged path exactly.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
pub(crate) fn micro_kernel_direct_store(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    assert!(b_strip.len() >= kc * NR, "packed B strip too short");
    assert!(a.len() > (MR - 1) * lda + kc - 1, "A tile out of bounds");
    assert!(c.len() >= (MR - 1) * ldc + NR, "C tile out of bounds");
    // SAFETY: AVX-512F is statically enabled by the cfg; the asserts bound
    // every read and write below.
    unsafe {
        let mut rows = [_mm512_setzero_ps(); MR];
        let pa = a.as_ptr();
        let mut pb = b_strip.as_ptr();
        for p in 0..kc {
            let b = _mm512_loadu_ps(pb);
            for (i, row) in rows.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*pa.add(i * lda + p));
                *row = _mm512_fmadd_ps(av, b, *row);
            }
            pb = pb.add(NR);
        }
        let pc_out = c.as_mut_ptr();
        for (i, row) in rows.iter().enumerate() {
            _mm512_storeu_ps(pc_out.add(i * ldc), *row);
        }
    }
}

/// Portable store-direct micro-kernel (see the AVX-512 variant above).
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
pub(crate) fn micro_kernel_direct_store(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    micro_kernel_direct(kc, a, lda, b_strip, &mut acc);
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// In-place-`A` micro-kernel for the final partial row tile
/// (`live < MR`): per-element ops and `k`-order match the full kernels
/// exactly (fused on AVX-512F, two roundings elsewhere), so the tail rows
/// get the same bits the packed path would produce.
#[inline]
pub(crate) fn micro_kernel_direct_partial(
    kc: usize,
    a: &[f32],
    lda: usize,
    live: usize,
    b_strip: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(live < MR && live > 0);
    debug_assert!(b_strip.len() >= kc * NR);
    for p in 0..kc {
        let b_vals = &b_strip[p * NR..(p + 1) * NR];
        for (i, row) in acc.iter_mut().enumerate().take(live) {
            let a_val = a[i * lda + p];
            for (cell, &b_val) in row.iter_mut().zip(b_vals) {
                #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
                {
                    *cell = a_val.mul_add(b_val, *cell);
                }
                #[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
                {
                    *cell += a_val * b_val;
                }
            }
        }
    }
}

/// Packs every `(jc, pc)` panel of a `k x n` operand `B` into `dst` in
/// the exact order the driver consumes them (outer `jc`, inner `pc`), so
/// [`gemm_prepacked`] can run without touching `B` again. Amortises the
/// pack stage when the same `B` (e.g. an LSTM weight) feeds many GEMMs
/// within one step.
pub fn pack_b_full(b: &[f32], layout: Layout, (k, n): (usize, usize), dst: &mut Vec<f32>) {
    crate::telemetry::note_pack();
    dst.clear();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b_append(b, layout, (k, n), (pc, jc), (kc, nc), dst);
        }
    }
}

/// [`gemm`] with `B` already packed by [`pack_b_full`]. **Overwrites**
/// `C = A @ B`: the first `k`-panel's tile stores straight into `C`
/// (saving a zero-fill plus a read-modify-write pass over the output) and
/// later panels accumulate. The per-element operation chain is the zeroed
/// accumulator's FMA chain in the unpacked driver's `k`-order, so results
/// are bit-identical to [`gemm`] on zeroed output (up to the sign of
/// all-zero products: a stored `-0.0` where `0.0 + -0.0` would round to
/// `+0.0`, which compares equal and behaves identically downstream).
pub fn gemm_prepacked(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    a_layout: Layout,
    packed_b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let _timer = crate::telemetry::KernelTimer::gemm((m, n, k));
    // Row-major `A` feeds the micro-kernel in place (broadcast loads are
    // scalar either way), eliminating the `pack_a` copy — the dominant
    // fixed cost for the skinny inference shapes. Transposed `A` keeps the
    // packed route, which absorbs the stride.
    let direct = a_layout == Layout::RowMajor;
    PACK_SCRATCH.with(|scratch| {
        let (a_pack, _) = &mut *scratch.borrow_mut();
        let mut b_offset = 0;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let panel_len = nc.div_ceil(NR) * NR * kc;
                let b_panel = &packed_b[b_offset..b_offset + panel_len];
                b_offset += panel_len;
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    if !direct {
                        pack_a(a, a_layout, (m, k), (ic, pc), (mc, kc), a_pack);
                    }
                    for jr in (0..nc).step_by(NR) {
                        let b_strip = &b_panel[(jr / NR) * NR * kc..];
                        for ir in (0..mc).step_by(MR) {
                            let live_rows = MR.min(mc - ir);
                            let live_cols = NR.min(nc - jr);
                            if direct && pc == 0 && live_rows == MR && live_cols == NR {
                                // overwrite mode, full tile: skip the
                                // stack accumulator entirely
                                let a_tile = &a[(ic + ir) * k..];
                                let c_tile = &mut c[(ic + ir) * n + jc + jr..];
                                micro_kernel_direct_store(kc, a_tile, k, b_strip, c_tile, n);
                                continue;
                            }
                            let mut acc = [[0.0f32; NR]; MR];
                            if direct {
                                let a_tile = &a[(ic + ir) * k + pc..];
                                if live_rows == MR {
                                    micro_kernel_direct(kc, a_tile, k, b_strip, &mut acc);
                                } else {
                                    micro_kernel_direct_partial(
                                        kc, a_tile, k, live_rows, b_strip, &mut acc,
                                    );
                                }
                            } else {
                                let a_strip = &a_pack[(ir / MR) * MR * kc..];
                                micro_kernel(kc, a_strip, b_strip, &mut acc);
                            }
                            for (ii, acc_row) in acc.iter().enumerate().take(live_rows) {
                                let row = (ic + ir + ii) * n + jc + jr;
                                let dst = &mut c[row..row + live_cols];
                                if pc == 0 {
                                    dst.copy_from_slice(&acc_row[..live_cols]);
                                } else {
                                    for (cell, &v) in dst.iter_mut().zip(acc_row) {
                                        *cell += v;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    });
}

thread_local! {
    /// Pack-buffer scratch reused across calls: packing is the only
    /// allocation the driver would otherwise perform, and the buffers are
    /// bounded by the block sizes, so keeping them thread-local makes every
    /// GEMM after the first allocation-free.
    static PACK_SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Computes `C += A @ B` where `A` is logically `m x k`, `B` is logically
/// `k x n` (each with its own storage [`Layout`]) and `C` is `m x n`
/// row-major. `C` is expected to start zeroed by the callers in `ops.rs`.
pub fn gemm(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let _timer = crate::telemetry::KernelTimer::gemm((m, n, k));
    PACK_SCRATCH.with(|scratch| {
        let (a_pack, b_pack) = &mut *scratch.borrow_mut();
        gemm_with_scratch((m, n, k), a, a_layout, b, b_layout, c, a_pack, b_pack);
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_with_scratch(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    a_pack: &mut Vec<f32>,
    b_pack: &mut Vec<f32>,
) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, b_layout, (k, n), (pc, jc), (kc, nc), b_pack);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(a, a_layout, (m, k), (ic, pc), (mc, kc), a_pack);
                for jr in (0..nc).step_by(NR) {
                    let b_strip = &b_pack[(jr / NR) * NR * kc..];
                    for ir in (0..mc).step_by(MR) {
                        let a_strip = &a_pack[(ir / MR) * MR * kc..];
                        let mut acc = [[0.0f32; NR]; MR];
                        micro_kernel(kc, a_strip, b_strip, &mut acc);
                        let live_rows = MR.min(mc - ir);
                        let live_cols = NR.min(nc - jr);
                        for (ii, acc_row) in acc.iter().enumerate().take(live_rows) {
                            let row = (ic + ir + ii) * n + jc + jr;
                            for (cell, &v) in c[row..row + live_cols].iter_mut().zip(acc_row) {
                                *cell += v;
                            }
                        }
                    }
                }
            }
        }
    }
}
