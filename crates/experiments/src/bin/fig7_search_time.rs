//! Regenerates Figure 7 (MOEA search time per evaluation method).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig7::run(&harness);
    hwpr_experiments::write_report("fig7_search_time", &report);
}
