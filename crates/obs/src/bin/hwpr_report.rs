//! Offline analysis of telemetry run records and bench snapshots.
//!
//! ```text
//! hwpr-report summary RUN.jsonl          # metric/span summary tables
//! hwpr-report trace RUN.jsonl -o T.json  # Chrome Trace JSON (Perfetto)
//! hwpr-report tree RUN.jsonl             # span tree with self-time
//! hwpr-report folded RUN.jsonl           # folded stacks (flamegraph.pl)
//! hwpr-report bench-diff OLD.json NEW.json --budget-pct 10 \
//!     --budget inference_throughput/=25 [--warn-only] [--fail-on-missing]
//! hwpr-report RUN.jsonl                  # bare path = summary (legacy)
//! some-run | hwpr-report summary -       # `-` reads stdin anywhere
//! ```
//!
//! Exit codes: 0 success / within budget, 1 usage or IO error,
//! 2 bench-diff budget exceeded (0 under `--warn-only`).

use hwpr_obs::benchdiff::{self, DiffConfig};
use hwpr_obs::{report, trace};
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: hwpr-report <command> [args]\n\
    \n\
    commands:\n\
    \x20 summary <RUN.jsonl | ->               metric/span summary tables\n\
    \x20 trace   <RUN.jsonl | -> [-o OUT.json] Chrome Trace JSON (Perfetto)\n\
    \x20 tree    <RUN.jsonl | ->               span tree with self-time\n\
    \x20 folded  <RUN.jsonl | ->               folded stacks for flamegraphs\n\
    \x20 bench-diff <OLD.json> <NEW.json> [--budget-pct N]\n\
    \x20            [--budget PREFIX=PCT]... [--warn-only] [--fail-on-missing]\n\
    \n\
    a bare <RUN.jsonl> argument is shorthand for `summary`";

fn read_source(source: &str) -> Result<String, String> {
    if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|err| format!("reading stdin: {err}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(source).map_err(|err| format!("reading {source}: {err}"))
    }
}

fn load_events(source: &str) -> Result<Vec<hwpr_obs::Event>, String> {
    report::parse_jsonl(&read_source(source)?)
}

/// `summary` / `tree` / `folded`: parse a run record, print one rendering.
fn render_command(source: &str, render: impl FnOnce(&[hwpr_obs::Event]) -> String) -> ExitCode {
    match load_events(source) {
        Ok(events) => {
            print!("{}", render(&events));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("hwpr-report: {err}");
            ExitCode::FAILURE
        }
    }
}

fn trace_command(args: &[String]) -> ExitCode {
    let (source, out) = match args {
        [source] => (source, None),
        [source, flag, out] if flag == "-o" || flag == "--out" => (source, Some(out)),
        _ => {
            eprintln!("usage: hwpr-report trace <RUN.jsonl | -> [-o OUT.json]");
            return ExitCode::FAILURE;
        }
    };
    let events = match load_events(source) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("hwpr-report: {err}");
            return ExitCode::FAILURE;
        }
    };
    let json = trace::chrome_trace(&events);
    match out {
        None => {
            println!("{json}");
        }
        Some(path) => {
            if let Err(err) = std::fs::write(path, &json) {
                eprintln!("hwpr-report: writing {path}: {err}");
                return ExitCode::FAILURE;
            }
            let stats = trace::stats(&events);
            eprintln!(
                "wrote {path}: {} spans, {} roots, {} orphans, {} thread lanes \
                 (open in https://ui.perfetto.dev)",
                stats.spans, stats.roots, stats.orphans, stats.threads
            );
        }
    }
    ExitCode::SUCCESS
}

fn bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut config = DiffConfig::default();
    let mut warn_only = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget-pct" => {
                let Some(pct) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("hwpr-report: --budget-pct needs a number");
                    return ExitCode::FAILURE;
                };
                config.default_budget_pct = pct;
            }
            "--budget" => {
                let parsed = iter.next().and_then(|v| {
                    let (prefix, pct) = v.split_once('=')?;
                    Some((prefix.to_string(), pct.parse::<f64>().ok()?))
                });
                let Some(over) = parsed else {
                    eprintln!("hwpr-report: --budget needs PREFIX=PCT");
                    return ExitCode::FAILURE;
                };
                config.overrides.push(over);
            }
            "--warn-only" => warn_only = true,
            "--fail-on-missing" => config.fail_on_missing = true,
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: hwpr-report bench-diff <OLD.json> <NEW.json> [--budget-pct N]\n\
             \x20          [--budget PREFIX=PCT]... [--warn-only] [--fail-on-missing]"
        );
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<Vec<benchdiff::BenchRow>, String> {
        benchdiff::parse_snapshot(&read_source(path)?).map_err(|err| format!("{path}: {err}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("hwpr-report: {err}");
            return ExitCode::FAILURE;
        }
    };
    let report = benchdiff::diff(&old, &new, &config);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else if warn_only {
        eprintln!("hwpr-report: budget exceeded (ignored: --warn-only)");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("summary", [source]) => render_command(source, report::summarize),
            ("tree", [source]) => render_command(source, trace::span_tree),
            ("folded", [source]) => render_command(source, trace::folded_stacks),
            ("trace", rest) => trace_command(rest),
            ("bench-diff", rest) => bench_diff_command(rest),
            // back-compat: a bare path (or `-`) means `summary`
            (source, []) if !source.starts_with("--") => render_command(source, report::summarize),
            _ => {
                eprintln!("{USAGE}");
                ExitCode::FAILURE
            }
        },
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
