//! Shared fixtures for the criterion benchmarks (one bench target per
//! experiment kernel; see `benches/`).

#![warn(missing_docs)]
use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small benchmark table reused across bench targets.
pub fn fixture_bench(n: usize) -> SimBench {
    SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed: 1234,
    })
}

/// A training dataset on CIFAR-10 / Edge GPU.
pub fn fixture_dataset(n: usize) -> SurrogateDataset {
    SurrogateDataset::from_simbench(&fixture_bench(n), Dataset::Cifar10, Platform::EdgeGpu)
        .expect("bench is non-empty")
}

/// A quickly trained HW-PR-NAS model for inference benchmarks.
pub fn fixture_model(n: usize) -> HwPrNas {
    let data = fixture_dataset(n);
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny())
        .expect("training fixture failed");
    model
}

/// Deterministic random architectures.
pub fn fixture_archs(space: SearchSpaceId, n: usize) -> Vec<Architecture> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..n)
        .map(|_| Architecture::random(space, &mut rng))
        .collect()
}

/// Deterministic random objective vectors for MOO kernels.
pub fn fixture_objectives(n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut state = 0x1234_5678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    (0..n)
        .map(|_| (0..dim).map(|_| next() * 100.0).collect())
        .collect()
}

/// Training-step fixtures for the LSTM latency surrogate (Table II
/// hyperparameters), used by the `train_step` bench and the
/// allocation-count regression test.
pub mod train_step {
    use hwpr_autograd::{Tape, Var};
    use hwpr_nn::layers::{Embedding, LayerRng, Lstm, Mlp, MlpConfig};
    use hwpr_nn::optim::{AdamW, Optimizer};
    use hwpr_nn::{Binder, ParamId, Params};
    use hwpr_tensor::{Init, Matrix};
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use std::mem;

    /// Shapes and hyperparameters of one surrogate training step.
    #[derive(Debug, Clone)]
    pub struct StepConfig {
        /// Mini-batch size.
        pub batch: usize,
        /// Token sequence length.
        pub seq_len: usize,
        /// Token vocabulary size.
        pub vocab: usize,
        /// Embedding width.
        pub embed: usize,
        /// LSTM hidden width.
        pub hidden: usize,
        /// Stacked LSTM layers.
        pub layers: usize,
        /// Regression-head hidden widths.
        pub head: Vec<usize>,
        /// Dropout ratio after each hidden head layer.
        pub dropout: f32,
        /// Weight-initialisation / data seed.
        pub seed: u64,
    }

    impl StepConfig {
        /// Table II of the paper: batch 128 over 6-token NAS-Bench-201
        /// sequences, 48-wide embedding, a 2-layer 225-unit LSTM, a
        /// `[256, 128]` regression head and dropout 0.02.
        pub fn paper() -> Self {
            Self {
                batch: 128,
                seq_len: 6,
                vocab: 32,
                embed: 48,
                hidden: 225,
                layers: 2,
                head: vec![256, 128],
                dropout: 0.02,
                seed: 17,
            }
        }

        /// A small instance for functional tests — allocation behaviour
        /// and fused/unfused agreement are shape-independent.
        pub fn tiny() -> Self {
            Self {
                batch: 16,
                seq_len: 6,
                vocab: 32,
                embed: 16,
                hidden: 32,
                layers: 2,
                head: vec![32, 16],
                dropout: 0.02,
                seed: 17,
            }
        }
    }

    /// One fixed batch of synthetic supervision: token sequences, a valid
    /// best-first permutation for the listwise loss and normalised
    /// regression targets.
    #[derive(Debug, Clone)]
    pub struct StepData {
        /// `[seq_len][batch]` token ids.
        pub tokens: Vec<Vec<usize>>,
        /// Permutation of the batch consumed by ListMLE.
        pub order: Vec<usize>,
        /// `[batch]` regression targets in `[0, 1]`.
        pub targets: Vec<f32>,
    }

    /// Deterministic synthetic batch for `config` (plain LCG, so repeated
    /// runs and both trainers see identical data).
    pub fn step_data(config: &StepConfig) -> StepData {
        let mut state = config.seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let tokens = (0..config.seq_len)
            .map(|_| (0..config.batch).map(|_| next() % config.vocab).collect())
            .collect();
        let mut order: Vec<usize> = (0..config.batch).collect();
        for i in (1..config.batch).rev() {
            order.swap(i, next() % (i + 1));
        }
        let targets = (0..config.batch)
            .map(|_| (next() % 1000) as f32 / 1000.0)
            .collect();
        StepData {
            tokens,
            order,
            targets,
        }
    }

    /// The PR-2 hot path: fused LSTM-step/linear/loss kernels recorded on
    /// one persistent tape that is `reset` (not dropped) between steps,
    /// with gradient and binding buffers reused through
    /// [`Binder::rebind`] / [`Binder::finish_into`]. After warm-up a step
    /// performs no heap allocation.
    pub struct FusedTrainer {
        config: StepConfig,
        params: Params,
        embedding: Embedding,
        lstm: Lstm,
        head: Mlp,
        opt: AdamW,
        rng: LayerRng,
        tape: Tape,
        bound: Vec<Option<Var>>,
        grads: Vec<Option<Matrix>>,
    }

    impl FusedTrainer {
        /// Builds the surrogate and its training arena.
        pub fn new(config: &StepConfig) -> Self {
            let mut params = Params::new();
            let embedding = Embedding::new(
                &mut params,
                "embed",
                config.vocab,
                config.embed,
                config.seed,
            );
            let lstm = Lstm::new(
                &mut params,
                "lstm",
                config.embed,
                config.hidden,
                config.layers,
                config.seed.wrapping_add(1),
            );
            let head = Mlp::new(
                &mut params,
                "head",
                &MlpConfig {
                    input_dim: config.hidden,
                    hidden: config.head.clone(),
                    output_dim: 1,
                    activation: Default::default(),
                    dropout: config.dropout,
                    seed: config.seed.wrapping_add(2),
                },
            )
            .expect("head dimensions are nonzero");
            Self {
                config: config.clone(),
                params,
                embedding,
                lstm,
                head,
                opt: AdamW::new(3e-4).with_weight_decay(3e-4),
                rng: LayerRng::seed_from_u64(config.seed),
                tape: Tape::new(),
                bound: Vec::new(),
                grads: Vec::new(),
            }
        }

        /// Runs one training step (forward, backward, AdamW update) and
        /// returns the loss value.
        pub fn step(&mut self, data: &StepData) -> f32 {
            self.tape.reset();
            let mut binder = Binder::rebind(
                &mut self.tape,
                &self.params,
                mem::take(&mut self.bound),
                true,
            );
            let mut steps = binder.tape().scratch_vars();
            for ids in &data.tokens {
                steps.push(
                    self.embedding
                        .forward(&mut binder, ids)
                        .expect("ids are in vocabulary"),
                );
            }
            let h = self
                .lstm
                .forward(&mut binder, &steps)
                .expect("step shapes are fixed");
            binder.tape().recycle_vars(steps);
            let score = self
                .head
                .forward(&mut binder, h, &mut self.rng)
                .expect("head shapes are fixed");
            let tape = binder.tape();
            let rank = tape
                .list_mle(score, &data.order)
                .expect("order is a permutation");
            let rank = tape.scale(rank, 1.0 / data.order.len() as f32);
            let mut targets = tape.alloc(self.config.batch, 1);
            targets.as_mut_slice().copy_from_slice(&data.targets);
            let mse = tape
                .mse_loss(score, &targets)
                .expect("target shape matches the score");
            tape.recycle(targets);
            let rmse = tape.sqrt(mse, 1e-9);
            let loss = tape.add(rank, rmse).expect("loss terms are scalar");
            let value = tape.value(loss)[(0, 0)];
            self.bound = binder
                .finish_into(loss, &mut self.grads)
                .expect("backward succeeds on a valid graph");
            self.opt.step(&mut self.params, &self.grads);
            value
        }
    }

    /// The PR-1 shape of the same step, kept as the bench baseline: a
    /// fresh tape every step, the per-gate LSTM graph and per-op linear
    /// layers the fused kernels replaced, and cloned gradient extraction.
    ///
    /// Parameter registration order and init seeds mirror [`FusedTrainer`]
    /// exactly, so both trainers start from identical weights and their
    /// losses stay in lockstep — the differential test below pins the
    /// fused path to this graph.
    pub struct BaselineTrainer {
        config: StepConfig,
        params: Params,
        embed: ParamId,
        cells: Vec<(ParamId, ParamId, ParamId)>,
        head: Vec<(ParamId, ParamId)>,
        opt: AdamW,
        rng: LayerRng,
    }

    impl BaselineTrainer {
        /// Builds the surrogate with the same initial weights as
        /// [`FusedTrainer::new`].
        pub fn new(config: &StepConfig) -> Self {
            let mut params = Params::new();
            let embed = params.add(
                "embed.table",
                config.vocab,
                config.embed,
                Init::Normal(0.1),
                config.seed,
            );
            let lstm_seed = config.seed.wrapping_add(1);
            let mut cells = Vec::new();
            for l in 0..config.layers {
                let in_dim = if l == 0 { config.embed } else { config.hidden };
                let w_ih = params.add(
                    &format!("lstm.l{l}.w_ih"),
                    in_dim,
                    4 * config.hidden,
                    Init::Xavier,
                    lstm_seed.wrapping_add(3 * l as u64),
                );
                let w_hh = params.add(
                    &format!("lstm.l{l}.w_hh"),
                    config.hidden,
                    4 * config.hidden,
                    Init::Xavier,
                    lstm_seed.wrapping_add(3 * l as u64 + 1),
                );
                let mut b = Matrix::zeros(1, 4 * config.hidden);
                for c in config.hidden..2 * config.hidden {
                    b.set(0, c, 1.0);
                }
                let bias = params.add_matrix(&format!("lstm.l{l}.bias"), b);
                cells.push((w_ih, w_hh, bias));
            }
            let head_seed = config.seed.wrapping_add(2);
            let mut dims = vec![config.hidden];
            dims.extend(&config.head);
            dims.push(1);
            let head = dims
                .windows(2)
                .enumerate()
                .map(|(i, w)| {
                    let wid = params.add(
                        &format!("head.fc{i}.weight"),
                        w[0],
                        w[1],
                        Init::He,
                        head_seed.wrapping_add(i as u64),
                    );
                    let bid = params.add(
                        &format!("head.fc{i}.bias"),
                        1,
                        w[1],
                        Init::Zeros,
                        head_seed.wrapping_add(i as u64),
                    );
                    (wid, bid)
                })
                .collect();
            Self {
                config: config.clone(),
                params,
                embed,
                cells,
                head,
                opt: AdamW::new(3e-4).with_weight_decay(3e-4),
                rng: LayerRng::seed_from_u64(config.seed),
            }
        }

        /// Runs one training step through the pre-fusion graph and
        /// returns the loss value.
        pub fn step(&mut self, data: &StepData) -> f32 {
            let h = self.config.hidden;
            let batch = self.config.batch;
            let mut tape = Tape::new();
            let mut binder = Binder::for_training(&mut tape, &self.params);
            let table = binder.param(self.embed);
            let mut layer_inputs: Vec<Var> = data
                .tokens
                .iter()
                .map(|ids| {
                    binder
                        .tape()
                        .gather_rows(table, ids)
                        .expect("ids are in vocabulary")
                })
                .collect();
            for &(w_ih, w_hh, bias) in &self.cells {
                let w_ih = binder.param(w_ih);
                let w_hh = binder.param(w_hh);
                let bias = binder.param(bias);
                let mut hidden = binder.input(Matrix::zeros(batch, h));
                let mut carry = binder.input(Matrix::zeros(batch, h));
                let mut next_inputs = Vec::with_capacity(layer_inputs.len());
                for &x in &layer_inputs {
                    let tape = binder.tape();
                    let xi = tape.matmul(x, w_ih).expect("lstm input width");
                    let hh = tape.matmul(hidden, w_hh).expect("lstm hidden width");
                    let pre = tape.add(xi, hh).expect("gate shapes match");
                    let gates = tape.add_bias(pre, bias).expect("bias width matches");
                    let i_gate = tape.slice_cols(gates, 0, h).expect("gate block");
                    let f_gate = tape.slice_cols(gates, h, 2 * h).expect("gate block");
                    let g_gate = tape.slice_cols(gates, 2 * h, 3 * h).expect("gate block");
                    let o_gate = tape.slice_cols(gates, 3 * h, 4 * h).expect("gate block");
                    let i_act = tape.sigmoid(i_gate);
                    let f_act = tape.sigmoid(f_gate);
                    let g_act = tape.tanh(g_gate);
                    let o_act = tape.sigmoid(o_gate);
                    let keep = tape.mul(f_act, carry).expect("state shapes match");
                    let write = tape.mul(i_act, g_act).expect("state shapes match");
                    carry = tape.add(keep, write).expect("state shapes match");
                    let c_act = tape.tanh(carry);
                    hidden = tape.mul(o_act, c_act).expect("state shapes match");
                    next_inputs.push(hidden);
                }
                layer_inputs = next_inputs;
            }
            let mut hcur = *layer_inputs.last().expect("sequence is nonempty");
            let last = self.head.len() - 1;
            for (i, &(wid, bid)) in self.head.iter().enumerate() {
                let w = binder.param(wid);
                let b = binder.param(bid);
                let tape = binder.tape();
                let z = tape.matmul(hcur, w).expect("head input width");
                hcur = tape.add_bias(z, b).expect("bias width matches");
                if i < last {
                    hcur = binder.tape().relu(hcur);
                    if self.config.dropout > 0.0 {
                        let keep = 1.0 - self.config.dropout;
                        let cols = binder.tape().value(hcur).cols();
                        let mut mask = Matrix::zeros(batch, cols);
                        for v in mask.as_mut_slice() {
                            *v = if self.rng.gen::<f32>() < keep {
                                1.0 / keep
                            } else {
                                0.0
                            };
                        }
                        hcur = binder
                            .tape()
                            .dropout(hcur, mask)
                            .expect("mask shape matches");
                    }
                }
            }
            let score = hcur;
            let tape = binder.tape();
            let rank = tape
                .list_mle(score, &data.order)
                .expect("order is a permutation");
            let rank = tape.scale(rank, 1.0 / data.order.len() as f32);
            let targets = Matrix::col_vector(&data.targets);
            let mse = tape
                .mse_loss(score, &targets)
                .expect("target shape matches the score");
            let rmse = tape.sqrt(mse, 1e-9);
            let loss = tape.add(rank, rmse).expect("loss terms are scalar");
            let value = tape.value(loss)[(0, 0)];
            let grads = binder
                .finish(loss)
                .expect("backward succeeds on a valid graph");
            self.opt.step(&mut self.params, &grads);
            value
        }
    }
}

/// A counting [`std::alloc::GlobalAlloc`] wrapper around the system
/// allocator, compiled only with the `alloc-count` feature. The
/// `alloc_free` integration test installs it to prove that a steady-state
/// training step performs zero heap allocations.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Counts every `alloc`/`realloc` before delegating to [`System`].
    pub struct CountingAllocator;

    // SAFETY: delegates verbatim to the system allocator; the counter is
    // a relaxed atomic with no other side effects.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Number of heap allocations since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::train_step::*;

    #[test]
    fn fused_step_matches_baseline_graph() {
        // identical weights, data and dropout stream: the fused arena
        // path and the PR-1 per-gate graph must produce the same losses
        // step for step (through the optimizer updates too)
        let cfg = StepConfig::tiny();
        let data = step_data(&cfg);
        let mut fused = FusedTrainer::new(&cfg);
        let mut baseline = BaselineTrainer::new(&cfg);
        for step in 0..4 {
            let a = fused.step(&data);
            let b = baseline.step(&data);
            assert!(
                (a - b).abs() < 1e-3,
                "step {step}: fused loss {a} vs baseline {b}"
            );
        }
    }

    #[test]
    fn fused_training_reduces_loss() {
        let cfg = StepConfig::tiny();
        let data = step_data(&cfg);
        let mut fused = FusedTrainer::new(&cfg);
        let first = fused.step(&data);
        let mut last = first;
        for _ in 0..30 {
            last = fused.step(&data);
        }
        assert!(first.is_finite() && last.is_finite());
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }
}
