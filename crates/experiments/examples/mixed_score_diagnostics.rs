//! Dev diagnostic: does the mixed-space surrogate rank FBNet correctly on
//! Pixel 3 (where FBNet dominates the true front)?
use hwpr_experiments::{Harness, Scale};
use hwpr_hwmodel::Platform;
use hwpr_moo::pareto_ranks;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};

fn main() {
    let h = Harness::with_scale(Scale::Fast);
    let data = h.mixed_dataset(Dataset::Cifar10, Platform::EdgeTpu);
    let model = h.train_hw_pr_nas(&data, 2000);
    let archs: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
    let objs: Vec<Vec<f64>> = data.samples().iter().map(|s| s.objectives()).collect();
    let ranks = pareto_ranks(&objs).unwrap();
    let scores = model.predict_scores(&archs, Platform::EdgeTpu).unwrap();
    let pred: Vec<f32> = scores.iter().map(|&s| s as f32).collect();
    let truth: Vec<f32> = ranks.iter().map(|&r| -(r as f32)).collect();
    println!(
        "global rank tau: {:.3}",
        hwpr_metrics::kendall_tau(&pred, &truth).unwrap()
    );
    for (label, space) in [
        ("NB201", SearchSpaceId::NasBench201),
        ("FBNet", SearchSpaceId::FBNet),
    ] {
        let subset: Vec<(usize, f64)> = archs
            .iter()
            .zip(&scores)
            .enumerate()
            .filter(|(_, (a, _))| a.space() == space)
            .map(|(i, (_, &s))| (i, s))
            .collect();
        let mean_score = subset.iter().map(|(_, s)| s).sum::<f64>() / subset.len() as f64;
        let front0: Vec<f64> = subset
            .iter()
            .filter(|(i, _)| ranks[*i] == 0)
            .map(|(_, s)| *s)
            .collect();
        let mean_front0 = front0.iter().sum::<f64>() / front0.len().max(1) as f64;
        println!(
            "{label}: n={} mean score {mean_score:.3}, front-0 n={} mean {mean_front0:.3}",
            subset.len(),
            front0.len()
        );
    }
    // predicted objectives sanity: mean predicted latency per space vs true
    let (_, pred_objs) = model.predict_full(&archs, Platform::EdgeTpu).unwrap();
    for (label, space) in [
        ("NB201", SearchSpaceId::NasBench201),
        ("FBNet", SearchSpaceId::FBNet),
    ] {
        let idx: Vec<usize> = (0..archs.len())
            .filter(|&i| archs[i].space() == space)
            .collect();
        let t: f64 = idx.iter().map(|&i| objs[i][1]).sum::<f64>() / idx.len() as f64;
        let p: f64 = idx.iter().map(|&i| pred_objs[i][1]).sum::<f64>() / idx.len() as f64;
        let te: f64 = idx.iter().map(|&i| objs[i][0]).sum::<f64>() / idx.len() as f64;
        let pe: f64 = idx.iter().map(|&i| pred_objs[i][0]).sum::<f64>() / idx.len() as f64;
        println!("{label}: true lat {t:.2} pred lat {p:.2} | true err {te:.2} pred err {pe:.2}");
    }
}
