//! Cross-crate consistency of the three architecture encodings and the
//! profiler-derived quantities they feed.

use hw_pr_nas::hwmodel::{energy_mj, latency_ms, Platform};
use hw_pr_nas::nasbench::features::{ArchFeatures, ARCH_FEATURE_DIM};
use hw_pr_nas::nasbench::profile::profile;
use hw_pr_nas::nasbench::{graph, tokens, Architecture, Dataset, SearchSpaceId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_archs(space: SearchSpaceId, n: usize) -> Vec<Architecture> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    (0..n)
        .map(|_| Architecture::random(space, &mut rng))
        .collect()
}

#[test]
fn af_flops_match_profiler_totals() {
    for arch in random_archs(SearchSpaceId::NasBench201, 10) {
        let af = ArchFeatures::extract(&arch, Dataset::Cifar10);
        let net = profile(&arch, Dataset::Cifar10);
        assert_eq!(af.flops, net.total_flops());
        assert_eq!(af.params, net.total_params());
        assert_eq!(af.conv_count as usize, net.conv_count());
        assert_eq!(af.to_vec().len(), ARCH_FEATURE_DIM);
    }
}

#[test]
fn token_and_graph_encodings_agree_on_ops() {
    for arch in random_archs(SearchSpaceId::FBNet, 8) {
        let toks = tokens::tokens(&arch);
        let g = graph::encode(&arch);
        // each op token corresponds to a one-hot column in the node features
        for (layer, &tok) in toks.iter().enumerate() {
            let node = 1 + layer; // input node is 0
            let feature_col = 3 + tok; // [input, output, global] prefix
            assert_eq!(
                g.features[(node, feature_col)],
                1.0,
                "token {tok} at layer {layer} not reflected in the graph"
            );
        }
    }
}

#[test]
fn string_codec_round_trips_through_all_encodings() {
    for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
        for arch in random_archs(space, 6) {
            let parsed: Architecture = arch.to_arch_string().parse().unwrap();
            assert_eq!(tokens::tokens(&arch), tokens::tokens(&parsed));
            assert_eq!(graph::encode(&arch), graph::encode(&parsed));
            assert_eq!(
                ArchFeatures::extract(&arch, Dataset::Cifar100).to_vec(),
                ArchFeatures::extract(&parsed, Dataset::Cifar100).to_vec()
            );
        }
    }
}

#[test]
fn hardware_costs_scale_with_capacity() {
    // an architecture with strictly more compute is slower and hungrier on
    // every platform
    use hw_pr_nas::nasbench::Nb201Op;
    let small = Architecture::nb201([Nb201Op::NorConv1x1; 6]);
    let large = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
    for platform in Platform::ALL {
        assert!(
            latency_ms(&large, Dataset::Cifar10, platform)
                > latency_ms(&small, Dataset::Cifar10, platform),
            "latency ordering violated on {platform}"
        );
        assert!(
            energy_mj(&large, Dataset::Cifar10, platform)
                > energy_mj(&small, Dataset::Cifar10, platform),
            "energy ordering violated on {platform}"
        );
    }
}

#[test]
fn padded_and_natural_graphs_share_structure() {
    for arch in random_archs(SearchSpaceId::NasBench201, 5) {
        let natural = graph::encode(&arch);
        let padded = graph::encode_padded(&arch, graph::FBNET_NODES);
        let n = natural.node_count();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(natural.adjacency[(i, j)], padded.adjacency[(i, j)]);
            }
            assert_eq!(natural.features.row(i), padded.features.row(i));
        }
        assert_eq!(natural.global_node(), padded.global_node());
    }
}
