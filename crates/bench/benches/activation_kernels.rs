//! Scalar libm vs rational-divide vs division-free activation kernels —
//! the pointwise pass that dominated the frozen inference profile after
//! PR 6 batched the GEMMs. Widths cover one gate block (16), one fast-
//! config hidden row (64) and a whole batched activation panel (1024).
//!
//! Compares `fast_tanh` (division-free, Newton reciprocal) against
//! `rational_tanh` (the retired `p / q` form, kept in
//! `hwpr_tensor::reference`) and libm. Both rational forms are ~25x
//! faster than libm; between the two, the division-free form wins where
//! divider throughput is the constraint, while wide out-of-order cores
//! that pipeline `vdivps` well can tie it or edge ahead at large widths —
//! record both rows and read the snapshot before claiming a winner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_tensor::{fast_sigmoid_block, fast_tanh_block, reference};
use std::hint::black_box;

/// Deterministic activation panel spanning the active range plus the
/// saturated tails (no RNG, so runs are comparable).
fn panel(width: usize) -> Vec<f32> {
    (0..width)
        .map(|i| ((i * 29 % 257) as f32 - 128.0) * 0.07)
        .collect()
}

fn bench_activations(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation_kernels");
    for &width in &[16usize, 64, 1024] {
        let xs = panel(width);
        let mut buf = vec![0.0f32; width];
        group.bench_with_input(BenchmarkId::new("libm_tanh", width), &width, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&xs);
                for v in &mut buf {
                    *v = v.tanh();
                }
                black_box(&mut buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("rational_tanh", width), &width, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&xs);
                for v in &mut buf {
                    *v = reference::rational_tanh(*v);
                }
                black_box(&mut buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_tanh", width), &width, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&xs);
                fast_tanh_block(&mut buf);
                black_box(&mut buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("libm_sigmoid", width), &width, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&xs);
                for v in &mut buf {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
                black_box(&mut buf);
            });
        });
        group.bench_with_input(
            BenchmarkId::new("rational_sigmoid", width),
            &width,
            |b, _| {
                b.iter(|| {
                    buf.copy_from_slice(&xs);
                    for v in &mut buf {
                        *v = reference::rational_sigmoid(*v);
                    }
                    black_box(&mut buf);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("fast_sigmoid", width), &width, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&xs);
                fast_sigmoid_block(&mut buf);
                black_box(&mut buf);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_activations);
criterion_main!(benches);
