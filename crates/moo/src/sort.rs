//! NSGA-II fast non-dominated sorting and crowding distance.
//!
//! These free functions are the convenience API: each call runs on a
//! fresh [`MooWorkspace`] and copies the result out. Hot paths (the MOEA
//! loop, training-batch ranking, per-generation telemetry) hold a
//! long-lived workspace instead and call its methods directly, which
//! reuses every internal buffer and allocates nothing once warm.

use crate::workspace::{Fronts, MooWorkspace};
use crate::Result;
use std::borrow::Borrow;

/// Partitions `points` into Pareto fronts (indices), best front first;
/// each front is listed in ascending index order.
///
/// This is the NSGA-II fast non-dominated sort: `F_1` contains all
/// non-dominated points, `F_2` the points only dominated by `F_1`, and so
/// on — the layering the HW-PR-NAS surrogate is trained to reproduce.
/// Two objectives are layered by an O(N log N) lexicographic sweep; three
/// or more use the pairwise path with a single dominance comparison per
/// pair (see [`MooWorkspace`]).
///
/// # Errors
///
/// Returns [`crate::MooError`] when the set is empty, dimensions are
/// inconsistent, or values are non-finite.
///
/// Accepts any slice whose elements borrow as objective vectors
/// (`Vec<f64>`, `Arc<Vec<f64>>`, `&Vec<f64>`), so shared fitness caches
/// can be sorted without deep-copying their points.
pub fn fast_non_dominated_sort<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<Vec<usize>>> {
    let mut ws = MooWorkspace::new();
    let mut fronts = Fronts::new();
    ws.fast_non_dominated_sort_into(points, &mut fronts)?;
    Ok(fronts.iter().map(<[usize]>::to_vec).collect())
}

/// The Pareto rank (0-based front index) of every point.
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_ranks<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    let mut ws = MooWorkspace::new();
    Ok(ws.pareto_ranks(points)?.to_vec())
}

/// Indices of the non-dominated (first-front) points, ascending.
///
/// Runs a dedicated first-front scan that stops once front membership is
/// decided, instead of layering the whole set and discarding everything
/// past the first front.
///
/// # Errors
///
/// Same conditions as [`fast_non_dominated_sort`].
pub fn pareto_front<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<usize>> {
    let mut ws = MooWorkspace::new();
    Ok(ws.pareto_front(points)?.to_vec())
}

/// NSGA-II crowding distance of each point *within one front*.
///
/// Boundary points get `f64::INFINITY`; interior points get the sum of
/// normalised neighbour gaps per objective. Used to break ties when
/// truncating a front to the population size.
///
/// # Errors
///
/// Returns [`crate::MooError`] for empty/inconsistent inputs.
pub fn crowding_distance<P: Borrow<Vec<f64>>>(points: &[P]) -> Result<Vec<f64>> {
    let mut ws = MooWorkspace::new();
    Ok(ws.crowding_distance(points)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0], // front 0
            vec![2.0, 3.0], // front 0
            vec![4.0, 1.0], // front 0
            vec![3.0, 4.0], // front 1 (dominated by [2,3])
            vec![5.0, 5.0], // front 2 (dominated by [3,4])
            vec![2.0, 3.0], // duplicate of front-0 point: same front
        ]
    }

    #[test]
    fn sorts_known_layout() {
        let fronts = fast_non_dominated_sort(&sample()).unwrap();
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 1, 2, 5]);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn ranks_align_with_fronts() {
        let ranks = pareto_ranks(&sample()).unwrap();
        assert_eq!(ranks, vec![0, 0, 0, 1, 2, 0]);
    }

    #[test]
    fn pareto_front_returns_first_layer() {
        assert_eq!(pareto_front(&sample()).unwrap(), vec![0, 1, 2, 5]);
    }

    #[test]
    fn single_point_is_front_zero() {
        let fronts = fast_non_dominated_sort(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn totally_ordered_chain_gives_singleton_fronts() {
        let chain: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, i as f64]).collect();
        let fronts = fast_non_dominated_sort(&chain).unwrap();
        assert_eq!(fronts.len(), 5);
        for (k, f) in fronts.iter().enumerate() {
            assert_eq!(f, &vec![k]);
        }
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let front = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![5.0, 1.0],
        ];
        let d = crowding_distance(&front).unwrap();
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let d = crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn crowding_constant_objective_is_handled() {
        let front = vec![vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]];
        let d = crowding_distance(&front).unwrap();
        // middle point has finite distance from the varying objective only
        assert!(d[1].is_finite());
    }

    #[test]
    fn errors_propagate() {
        assert!(fast_non_dominated_sort::<Vec<f64>>(&[]).is_err());
        assert!(pareto_ranks(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(crowding_distance(&[vec![f64::NAN]]).is_err());
    }
}
