//! Shared fixtures for the criterion benchmarks (one bench target per
//! experiment kernel; see `benches/`).

#![warn(missing_docs)]
use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small benchmark table reused across bench targets.
pub fn fixture_bench(n: usize) -> SimBench {
    SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed: 1234,
    })
}

/// A training dataset on CIFAR-10 / Edge GPU.
pub fn fixture_dataset(n: usize) -> SurrogateDataset {
    SurrogateDataset::from_simbench(&fixture_bench(n), Dataset::Cifar10, Platform::EdgeGpu)
        .expect("bench is non-empty")
}

/// A quickly trained HW-PR-NAS model for inference benchmarks.
pub fn fixture_model(n: usize) -> HwPrNas {
    let data = fixture_dataset(n);
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny())
        .expect("training fixture failed");
    model
}

/// Deterministic random architectures.
pub fn fixture_archs(space: SearchSpaceId, n: usize) -> Vec<Architecture> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..n)
        .map(|_| Architecture::random(space, &mut rng))
        .collect()
}

/// Deterministic random objective vectors for MOO kernels.
pub fn fixture_objectives(n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut state = 0x1234_5678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    (0..n)
        .map(|_| (0..dim).map(|_| next() * 100.0).collect())
        .collect()
}
