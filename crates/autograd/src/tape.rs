//! The gradient tape: node arena, handles and the backward pass.
//!
//! The tape doubles as an arena: [`Tape::reset`] recycles every value and
//! gradient matrix (and the heap payloads of ops that carry them) into an
//! internal [`BufferPool`], so a fixed-shape training loop that resets the
//! tape between steps performs zero heap allocations in steady state.

use crate::error::AutogradError;
use crate::Result;
use hwpr_tensor::{BufferPool, Matrix, PackedWeight};

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index: copying it is free and it is only meaningful for
/// the tape that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Activation applied by the fused linear kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// No activation (plain affine output).
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Act {
    /// Applies the activation to a pre-activation value. The saturating
    /// activations use the division-free `fast_tanh`/`fast_sigmoid`
    /// kernels (≤ 1e-6 abs error vs libm) so the fused `linear_act` pass
    /// vectorises; the standalone [`Tape::tanh`]/[`Tape::sigmoid`] ops
    /// keep exact libm as the accuracy anchor.
    #[inline]
    pub(crate) fn apply(self, x: f32) -> f32 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
            Act::Tanh => hwpr_tensor::fast_tanh(x),
            Act::Sigmoid => hwpr_tensor::fast_sigmoid(x),
        }
    }

    /// Derivative expressed through the activation *output* `y`.
    #[inline]
    pub(crate) fn dapply(self, y: f32) -> f32 {
        match self {
            Act::Identity => 1.0,
            Act::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::Tanh => 1.0 - y * y,
            Act::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Operation recorded on the tape; parents are stored as [`Var`] handles.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input node (parameter or data); gradients accumulate here.
    Leaf,
    /// `a @ b`.
    MatMul(Var, Var),
    /// `a + b` (same shape).
    Add(Var, Var),
    /// `a - b` (same shape).
    Sub(Var, Var),
    /// Element-wise `a * b` (same shape).
    Mul(Var, Var),
    /// `a + broadcast_rows(bias)` where `bias` is `1 x cols`.
    AddBias(Var, Var),
    /// `a * scalar`.
    Scale(Var, f32),
    /// `a + scalar` element-wise (scalar kept for Debug output).
    AddScalar(Var, #[allow(dead_code)] f32),
    /// `max(a, 0)`.
    Relu(Var),
    /// `tanh(a)`.
    Tanh(Var),
    /// Logistic sigmoid of `a`.
    Sigmoid(Var),
    /// `exp(a)`.
    Exp(Var),
    /// `sqrt(a + eps)` (epsilon kept for Debug output).
    Sqrt(Var, #[allow(dead_code)] f32),
    /// Horizontal concatenation of the parents.
    ConcatCols(Vec<Var>),
    /// Vertical concatenation of the parents.
    ConcatRows(Vec<Var>),
    /// Columns `start..end` of the parent.
    SliceCols(Var, usize, usize),
    /// Rows gathered by index (embedding lookup); duplicates allowed.
    GatherRows(Var, Vec<usize>),
    /// Per-sample constant-adjacency product: block `b` of the parent
    /// (shape `n x f`) is left-multiplied by `adjacency[b]`.
    BlockGraphMatmul(Var, Vec<Matrix>, usize),
    /// Element-wise product with a fixed dropout mask.
    Dropout(Var, Matrix),
    /// Mean over all elements, producing `1 x 1`.
    MeanAll(Var),
    /// Sum over all elements, producing `1 x 1`.
    SumAll(Var),
    /// Fused `act(x @ w [+ bias])`: one GEMM plus one pointwise pass.
    LinearAct {
        /// Input activations `[batch, in]`.
        x: Var,
        /// Weight `[in, out]`.
        w: Var,
        /// Optional bias `[1, out]`.
        bias: Option<Var>,
        /// Pointwise activation applied to the affine output.
        act: Act,
    },
    /// Fused LSTM step: value is `[batch, 2*hidden]` holding `[h | c]`.
    /// Stores the packed input `[x | h_prev]` and post-activation gates
    /// needed by the backward pass.
    LstmStep {
        /// Step input `[batch, in]`.
        x: Var,
        /// Previous `[h | c]` state `[batch, 2*hidden]`.
        hc: Var,
        /// Concatenated `[W_ih; W_hh]` weight `[in+hidden, 4*hidden]`.
        w: Var,
        /// Gate bias `[1, 4*hidden]`.
        bias: Var,
        /// Packed `[x | h_prev]` input saved from the forward pass.
        xh: Matrix,
        /// Post-activation gates `[i f g o]`, `[batch, 4*hidden]`.
        gates: Matrix,
    },
    /// Mean squared error (fused): payload is `dL/dpred` computed forward.
    MseLoss(Var, Matrix),
    /// ListMLE ranking loss (fused): payload is `dL/dscores` computed
    /// forward in the same stabilised pass as the value.
    ListMle(Var, Matrix),
    /// Pairwise hinge ranking loss (fused): payload is `dL/dscores`.
    PairwiseHinge(Var, Matrix),
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) grad: Option<Matrix>,
    pub(crate) op: Op,
}

/// Records a computation graph and runs reverse-mode differentiation.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
///
/// # Arena reuse
///
/// A tape can be reused across training steps: [`Tape::reset`] clears the
/// recorded graph while keeping every buffer (node storage, matrix values,
/// gradients, index lists) pooled for the next pass. Steady-state steps of
/// a fixed-shape model therefore allocate nothing.
#[derive(Debug, Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) pool: BufferPool,
    idx_pool: Vec<Vec<usize>>,
    var_pool: Vec<Vec<Var>>,
    mat_vec_pool: Vec<Vec<Matrix>>,
    pub(crate) mark_scratch: Vec<bool>,
    pub(crate) packs: PackCache,
}

/// Per-pass cache of GEMM-packed weight panels, keyed by weight node and
/// orientation. An LSTM weight feeds one GEMM per sequence step, forward
/// and backward; packing it once per pass and reusing the panels removes
/// the driver's per-call pack stage for every step after the first.
/// Entries are invalidated wholesale by [`Tape::reset`] (node values never
/// change within a pass, so entries cannot go stale earlier); the packed
/// buffers are recycled through `spare`, keeping repacking allocation-free
/// in steady state.
#[derive(Debug, Default)]
pub(crate) struct PackCache {
    entries: Vec<(usize, bool, PackedWeight)>,
    spare: Vec<PackedWeight>,
}

impl PackCache {
    /// Removes and returns the pack for `(var, transposed)` if cached;
    /// callers put it back after the GEMM.
    pub(crate) fn take(&mut self, var: usize, transposed: bool) -> Option<PackedWeight> {
        let pos = self
            .entries
            .iter()
            .position(|&(v, t, _)| v == var && t == transposed)?;
        Some(self.entries.swap_remove(pos).2)
    }

    /// A recycled (or fresh) pack buffer to fill on a cache miss.
    pub(crate) fn spare(&mut self) -> PackedWeight {
        self.spare.pop().unwrap_or_default()
    }

    pub(crate) fn put(&mut self, var: usize, transposed: bool, pack: PackedWeight) {
        self.entries.push((var, transposed, pack));
    }

    fn clear(&mut self) {
        for (_, _, pack) in self.entries.drain(..) {
            self.spare.push(pack);
        }
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the recorded graph while keeping all storage for reuse.
    ///
    /// Every node's value and gradient matrix — and the matrix/index
    /// payloads carried by ops — are recycled into the tape's buffer pool,
    /// so the next pass over the same shapes runs without heap traffic.
    pub fn reset(&mut self) {
        self.packs.clear();
        while let Some(node) = self.nodes.pop() {
            let Node { value, grad, op } = node;
            self.pool.put(value);
            if let Some(g) = grad {
                self.pool.put(g);
            }
            match op {
                Op::ConcatCols(vars) | Op::ConcatRows(vars) => self.put_vars(vars),
                Op::GatherRows(_, idx) => self.put_idx(idx),
                Op::BlockGraphMatmul(_, adjacency, _) => {
                    let mut adjacency = adjacency;
                    for m in adjacency.drain(..) {
                        self.pool.put(m);
                    }
                    self.mat_vec_pool.push(adjacency);
                }
                Op::Dropout(_, mask) => self.pool.put(mask),
                Op::LstmStep { xh, gates, .. } => {
                    self.pool.put(xh);
                    self.pool.put(gates);
                }
                Op::MseLoss(_, g) | Op::ListMle(_, g) | Op::PairwiseHinge(_, g) => {
                    self.pool.put(g);
                }
                _ => {}
            }
        }
    }

    /// Takes a zero-filled pooled matrix; pair with [`Tape::recycle`] (or
    /// hand it to an op builder, which recycles it on [`Tape::reset`]).
    pub fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.take(rows, cols)
    }

    /// Takes a pooled copy of `src`.
    pub fn alloc_copy(&mut self, src: &Matrix) -> Matrix {
        self.pool.take_copy(src)
    }

    /// Returns a matrix's storage to the tape's pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.pool.put(m);
    }

    /// Takes a cleared pooled `Vec<Var>` scratch buffer (for callers that
    /// stage per-step handles, e.g. recurrent layers).
    pub fn scratch_vars(&mut self) -> Vec<Var> {
        self.var_pool.pop().unwrap_or_default()
    }

    /// Returns a `Vec<Var>` scratch buffer to the pool.
    pub fn recycle_vars(&mut self, mut vars: Vec<Var>) {
        vars.clear();
        self.var_pool.push(vars);
    }

    pub(crate) fn take_idx(&mut self) -> Vec<usize> {
        self.idx_pool.pop().unwrap_or_default()
    }

    fn put_idx(&mut self, mut idx: Vec<usize>) {
        idx.clear();
        self.idx_pool.push(idx);
    }

    pub(crate) fn take_vars(&mut self) -> Vec<Var> {
        self.var_pool.pop().unwrap_or_default()
    }

    fn put_vars(&mut self, mut vars: Vec<Var>) {
        vars.clear();
        self.var_pool.push(vars);
    }

    /// Takes a cleared pooled `Vec<Matrix>` scratch buffer (for callers
    /// that stage per-sample constants, e.g. GCN adjacency stacks; hand the
    /// vector to [`Tape::block_graph_matmul`] and `reset` recycles it).
    pub fn scratch_mats(&mut self) -> Vec<Matrix> {
        self.mat_vec_pool.pop().unwrap_or_default()
    }

    /// Inserts an input node holding `value` and returns its handle.
    ///
    /// Leaves are where gradients are read back after [`Tape::backward`];
    /// both trainable parameters and constant inputs are leaves (gradients
    /// of constants are simply ignored by the caller).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Inserts an input node holding a pooled copy of `value`.
    ///
    /// The allocation-free form of [`Tape::leaf`]: the copy's storage comes
    /// from (and returns to) the tape's buffer pool.
    pub fn leaf_copy(&mut self, value: &Matrix) -> Var {
        let copy = self.pool.take_copy(value);
        self.push(copy, Op::Leaf)
    }

    /// The value held by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated into `v`, if [`Tape::backward`] has run and
    /// `v` participated in the loss.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Runs the backward pass from `loss`, accumulating gradients into every
    /// node that contributed to it.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::NonScalarLoss`] if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) -> Result<()> {
        let shape = self.nodes[loss.0].value.shape();
        if shape != (1, 1) {
            return Err(AutogradError::NonScalarLoss { shape });
        }
        let started = crate::telemetry::backward_start();
        // The unit seed comes from the pool (it is recycled by `reset`), so
        // repeated backward passes never allocate it fresh.
        let mut seed = self.pool.take(1, 1);
        seed.as_mut_slice()[0] = 1.0;
        self.nodes[loss.0].grad = Some(seed);
        for i in (0..=loss.0).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            self.backprop_node(i)?;
        }
        if let Some(start) = started {
            crate::telemetry::backward_done(start, self.nodes.len(), self.pool.reuse_ratio());
        }
        Ok(())
    }

    /// Adds an owned delta into `v`'s gradient slot: the first contribution
    /// is moved in (no copy), later ones are added and the delta's storage
    /// recycled.
    pub(crate) fn accumulate(&mut self, v: Var, delta: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(g) => {
                g.add_assign(&delta);
                self.pool.put(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Makes sure `v` has a gradient buffer (zeroed, pooled, shaped like
    /// its value), so fused backward rules can accumulate GEMM results
    /// straight into the slot via the driver's native `C += A @ B`
    /// semantics instead of filling a per-contribution temporary.
    /// Callers `take()` the buffer out of the slot around the GEMM to
    /// satisfy the borrow checker and put it back — a pointer move.
    pub(crate) fn ensure_grad(&mut self, v: Var) {
        if self.nodes[v.0].grad.is_none() {
            let (r, c) = self.nodes[v.0].value.shape();
            let buf = self.pool.take(r, c);
            self.nodes[v.0].grad = Some(buf);
        }
    }

    /// Accumulates a borrowed delta by taking a pooled copy first.
    pub(crate) fn accumulate_copy(&mut self, v: Var, delta: &Matrix) {
        if let Some(g) = &mut self.nodes[v.0].grad {
            g.add_assign(delta);
        } else {
            let copy = self.pool.take_copy(delta);
            self.nodes[v.0].grad = Some(copy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let mut t = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = t.leaf(m.clone());
        assert_eq!(t.value(v), &m);
        assert!(t.grad(v).is_none());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::zeros(2, 2));
        let err = t.backward(v).unwrap_err();
        assert_eq!(err, AutogradError::NonScalarLoss { shape: (2, 2) });
    }

    #[test]
    fn backward_on_scalar_leaf_sets_unit_grad() {
        let mut t = Tape::new();
        let v = t.leaf(Matrix::ones(1, 1));
        t.backward(v).unwrap();
        assert_eq!(t.grad(v).unwrap(), &Matrix::ones(1, 1));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let t = Tape::with_capacity(64);
        assert!(t.is_empty());
    }

    #[test]
    fn reset_clears_graph_and_pools_buffers() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::filled(2, 2, 1.0));
        let b = t.leaf(Matrix::filled(2, 2, 2.0));
        let y = t.add(a, b).unwrap();
        let loss = t.mean_all(y);
        t.backward(loss).unwrap();
        t.reset();
        assert!(t.is_empty());
        // a fresh pass over the same shapes reuses the pooled storage
        let a = t.leaf_copy(&Matrix::filled(2, 2, 3.0));
        let loss = t.mean_all(a);
        t.backward(loss).unwrap();
        assert_eq!(t.grad(a).unwrap(), &Matrix::filled(2, 2, 0.25));
    }

    #[test]
    fn leaf_copy_matches_leaf() {
        let mut t = Tape::new();
        let m = Matrix::from_rows(&[&[1.5, -2.0]]);
        let v = t.leaf_copy(&m);
        assert_eq!(t.value(v), &m);
    }

    #[test]
    fn reset_then_repeat_pass_is_deterministic() {
        let run = |t: &mut Tape| -> (f32, Matrix) {
            let x = t.leaf_copy(&Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]));
            let w = t.leaf_copy(&Matrix::from_rows(&[&[1.0, 0.5], &[-0.5, 1.5]]));
            let y = t.matmul(x, w).unwrap();
            let z = t.tanh(y);
            let loss = t.mean_all(z);
            t.backward(loss).unwrap();
            (t.value(loss)[(0, 0)], t.grad(w).unwrap().clone())
        };
        let mut t = Tape::new();
        let (l1, g1) = run(&mut t);
        t.reset();
        let (l2, g2) = run(&mut t);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn scratch_vars_round_trip() {
        let mut t = Tape::new();
        let mut v = t.scratch_vars();
        v.push(Var(0));
        t.recycle_vars(v);
        let v2 = t.scratch_vars();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 1);
    }
}
