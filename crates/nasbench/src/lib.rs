//! NAS search spaces, architecture encodings and a layer-by-layer
//! profiler for the HW-PR-NAS reproduction.
//!
//! The paper searches two benchmarks:
//!
//! - **NAS-Bench-201** — a cell-based space: 6 edges in a 4-node DAG, each
//!   carrying one of 5 operations (`none`/zeroize, `skip_connect`,
//!   `nor_conv_1x1`, `nor_conv_3x3`, `avg_pool_3x3`); 5⁶ = 15 625
//!   architectures, exhaustively enumerable.
//! - **FBNet** — a layer-wise mobile space: 22 searchable positions, each
//!   one of 9 blocks (MBConv with kernel ∈ {3,5} × expansion ∈ {1,3,6},
//!   two grouped variants, plus `skip`), which removes the cell repetition
//!   and adds depthwise/grouped convolutions.
//!
//! Three encodings feed the surrogate models (§III-C of the paper):
//!
//! - [`features::ArchFeatures`] — manual **Architecture Features** (AF):
//!   FLOPs, parameters, #convolutions, input size, depth, first/last
//!   channels, #downsamples;
//! - [`tokens`] — the string/token sequence for the **LSTM** encoder;
//! - [`graph::ArchGraph`] — adjacency + one-hot op nodes (+ global node)
//!   for the **GCN** encoder.
//!
//! The [`profile`] module computes per-operation FLOPs/params/shapes on
//! the paper's macro-skeletons; the hardware models in `hwpr-hwmodel`
//! consume those records to derive platform latency and energy.
//!
//! # Examples
//!
//! ```
//! use hwpr_nasbench::{Architecture, SearchSpaceId};
//!
//! let arch = Architecture::nb201_from_index(151).unwrap();
//! let s = arch.to_arch_string();
//! let back: Architecture = s.parse().unwrap();
//! assert_eq!(arch, back);
//! assert_eq!(arch.space(), SearchSpaceId::NasBench201);
//! ```

#![warn(missing_docs)]
mod arch;
pub mod features;
pub mod graph;
mod op;
pub mod profile;
pub mod tokens;

pub use arch::{ArchParseError, Architecture, FBNET_LAYERS, NB201_EDGES};
pub use op::{FbnetOp, Nb201Op, OpKind};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the two NAS benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchSpaceId {
    /// The NAS-Bench-201 cell-based space (15 625 architectures).
    NasBench201,
    /// The FBNet layer-wise mobile space (9²² architectures).
    FBNet,
}

impl SearchSpaceId {
    /// Number of searchable positions (edges or layers).
    pub fn positions(self) -> usize {
        match self {
            SearchSpaceId::NasBench201 => NB201_EDGES,
            SearchSpaceId::FBNet => FBNET_LAYERS,
        }
    }

    /// Number of candidate operations per position.
    pub fn ops_per_position(self) -> usize {
        match self {
            SearchSpaceId::NasBench201 => Nb201Op::ALL.len(),
            SearchSpaceId::FBNet => FbnetOp::ALL.len(),
        }
    }

    /// Total number of architectures (saturating; FBNet overflows `u64`
    /// and reports `u64::MAX`).
    pub fn size(self) -> u64 {
        let ops = self.ops_per_position() as u64;
        let mut total: u64 = 1;
        for _ in 0..self.positions() {
            total = total.saturating_mul(ops);
        }
        total
    }
}

impl fmt::Display for SearchSpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchSpaceId::NasBench201 => write!(f, "NAS-Bench-201"),
            SearchSpaceId::FBNet => write!(f, "FBNet"),
        }
    }
}

/// The image datasets the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// CIFAR-10: 32x32 inputs, 10 classes.
    Cifar10,
    /// CIFAR-100: 32x32 inputs, 100 classes.
    Cifar100,
    /// ImageNet16-120: 16x16 inputs, 120 classes.
    ImageNet16,
}

impl Dataset {
    /// All three datasets, in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Cifar10, Dataset::Cifar100, Dataset::ImageNet16];

    /// Input spatial resolution (square).
    pub fn input_size(self) -> usize {
        match self {
            Dataset::Cifar10 | Dataset::Cifar100 => 32,
            Dataset::ImageNet16 => 16,
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            Dataset::Cifar10 => 10,
            Dataset::Cifar100 => 100,
            Dataset::ImageNet16 => 120,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataset::Cifar10 => write!(f, "CIFAR-10"),
            Dataset::Cifar100 => write!(f, "CIFAR-100"),
            Dataset::ImageNet16 => write!(f, "ImageNet16-120"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_sizes() {
        assert_eq!(SearchSpaceId::NasBench201.size(), 15_625);
        assert_eq!(SearchSpaceId::FBNet.size(), u64::MAX); // saturates
        assert_eq!(SearchSpaceId::NasBench201.positions(), 6);
        assert_eq!(SearchSpaceId::FBNet.positions(), 22);
        assert_eq!(SearchSpaceId::NasBench201.ops_per_position(), 5);
        assert_eq!(SearchSpaceId::FBNet.ops_per_position(), 9);
    }

    #[test]
    fn dataset_properties() {
        assert_eq!(Dataset::Cifar10.input_size(), 32);
        assert_eq!(Dataset::ImageNet16.input_size(), 16);
        assert_eq!(Dataset::Cifar100.classes(), 100);
        assert_eq!(Dataset::ALL.len(), 3);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(SearchSpaceId::NasBench201.to_string(), "NAS-Bench-201");
        assert_eq!(Dataset::ImageNet16.to_string(), "ImageNet16-120");
    }
}
