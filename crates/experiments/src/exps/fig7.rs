//! Figure 7: search time of the MOEA under each evaluation method
//! (250 generations, 24 h cap in the paper's setup).

use crate::{fmt_duration, Harness, MarkdownTable};
use hwpr_hwmodel::Platform;
use hwpr_metrics::mean;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_search::{HwPrNasEvaluator, Moea, PairEvaluator};
use std::fmt::Write as _;

/// Simulated serving overhead per surrogate call (seconds): the paper's
/// searches evaluate each architecture through a Python/GPU model-serving
/// stack where dispatch dominates (their Fig. 7 bars span hours for
/// 37 500 evaluations, ≈1 s per evaluation).
pub const CALL_COST_S: f64 = 0.5;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let spaces = vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet];
    let data = h.mixed_dataset(dataset, platform);
    let runs = h.scale.runs();

    let mut measured_times = Vec::new();
    let mut brp_times = Vec::new();
    let mut gates_times = Vec::new();
    let mut hwpr_times = Vec::new();
    let mut hwpr_calls = 0usize;
    let mut brp_calls = 0usize;
    let mut hwpr_wall = Vec::new();
    let mut brp_wall = Vec::new();
    for run in 0..runs {
        let seed = 500 + run as u64;
        let r = h.run_moea_measured(dataset, platform, spaces.clone(), seed);
        measured_times.push(r.total_time().as_secs_f64());
        let moea =
            Moea::new(h.scale.moea_config(spaces.clone()).with_seed(seed)).expect("valid config");
        let brp = h.train_brp_nas(&data, seed);
        let mut eval = PairEvaluator::new(brp).with_simulated_call_cost(CALL_COST_S);
        let r = moea.run(&mut eval).expect("search failed");
        brp_times.push(r.total_time().as_secs_f64());
        brp_wall.push(r.wall_time.as_secs_f64());
        brp_calls = r.surrogate_calls;
        let gates = h.train_gates(&data, seed);
        let mut eval = PairEvaluator::new(gates).with_simulated_call_cost(CALL_COST_S);
        let r = moea.run(&mut eval).expect("search failed");
        gates_times.push(r.total_time().as_secs_f64());
        let hwpr = h.train_hw_pr_nas(&data, seed);
        let mut eval = HwPrNasEvaluator::new(hwpr, platform).with_simulated_call_cost(CALL_COST_S);
        let r = moea.run(&mut eval).expect("search failed");
        hwpr_times.push(r.total_time().as_secs_f64());
        hwpr_wall.push(r.wall_time.as_secs_f64());
        hwpr_calls = r.surrogate_calls;
    }

    let m = mean(&measured_times);
    let b = mean(&brp_times);
    let g = mean(&gates_times);
    let w = mean(&hwpr_times);
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 7 — MOEA search time per evaluation method\n");
    let _ = writeln!(
        out,
        "Mean over {runs} runs; measured-values runs charge a simulated \
         {:.1} s per new architecture (device measurement); surrogate runs \
         charge {CALL_COST_S:.1} s of serving overhead per *model call* \
         (the paper's per-evaluation serving cost — their Fig. 7 bars \
         imply ≈1 s per evaluation), so one fused call beats two. \
         Surrogate training happens before the search and is excluded, as \
         in the paper.\n",
        hwpr_search::MeasuredEvaluator::DEFAULT_SECONDS_PER_EVAL
    );
    let mut t = MarkdownTable::new(vec![
        "Evaluation method",
        "Mean search time",
        "Speedup vs HW-PR-NAS",
    ]);
    for (name, v) in [
        ("Measured Values", m),
        ("BRP-NAS (2 surrogates)", b),
        ("GATES (2 surrogates)", g),
        ("HW-PR-NAS (1 surrogate)", w),
    ] {
        t.row(vec![
            name.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(v)),
            format!("{:.2}x", v / w.max(1e-12)),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nSurrogate calls per run: HW-PR-NAS {hwpr_calls} (one fused call \
         per architecture) vs BRP-NAS {brp_calls} (two models per \
         architecture, plus non-dominated sorting inside selection). Raw \
         in-process Rust wall time (no serving stack): HW-PR-NAS \
         {:.0} ms vs BRP-NAS {:.0} ms per run — the speedup the paper \
         measures comes from the per-call serving overhead its stack \
         pays, which the fused single call halves. Paper's shape: \
         measured ≫ two-surrogate > HW-PR-NAS with ≈2-2.5x between two \
         surrogates and one.",
        mean(&hwpr_wall) * 1e3,
        mean(&brp_wall) * 1e3,
    );
    out
}
