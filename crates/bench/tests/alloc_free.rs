//! Proves the zero-allocation properties of the two hot paths: once its
//! arenas, buffer pools and caches are warm, (a) a training step and
//! (b) a frozen-engine inference pass each perform zero heap allocations.
//!
//! Gated behind the `alloc-count` feature because it installs a global
//! allocator; run with `cargo test -p hwpr-bench --features alloc-count`.

#![cfg(feature = "alloc-count")]

use hwpr_bench::alloc_count::{allocations, CountingAllocator};
use hwpr_bench::train_step::{step_data, FusedTrainer, StepConfig};
use hwpr_bench::{fixture_archs, fixture_model};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::SearchSpaceId;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_train_step_is_allocation_free() {
    let config = StepConfig::tiny();
    let data = step_data(&config);
    let mut trainer = FusedTrainer::new(&config);
    // warm-up: grows the node arena, buffer pools, gradient buffers and
    // AdamW moments to their steady-state footprint
    for _ in 0..5 {
        trainer.step(&data);
    }
    let before = allocations();
    let mut loss = 0.0;
    for _ in 0..3 {
        loss += trainer.step(&data);
    }
    let after = allocations();
    assert!(loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state training steps performed {} heap allocations",
        after - before
    );
}

#[test]
fn steady_state_frozen_inference_is_allocation_free() {
    let model = fixture_model(32);
    let archs = fixture_archs(SearchSpaceId::NasBench201, 40);
    // chunk size 16 leaves an uneven final chunk of 8, so both chunk
    // shapes get warmed into the arena's buffer pool
    model.freeze_with_batch(16);
    let mut scores = Vec::new();
    // warm-up: encodes the architectures into the cache, grows the
    // arena's pool/scratch and the output buffer to steady state
    for _ in 0..3 {
        scores.clear();
        model
            .predict_scores_into(&archs, Platform::EdgeGpu, &mut scores)
            .unwrap();
    }
    let before = allocations();
    let mut sum = 0.0;
    for _ in 0..3 {
        scores.clear();
        model
            .predict_scores_into(&archs, Platform::EdgeGpu, &mut scores)
            .unwrap();
        sum += scores.iter().sum::<f64>();
    }
    let after = allocations();
    assert!(sum.is_finite());
    assert_eq!(scores.len(), archs.len());
    assert_eq!(
        after - before,
        0,
        "steady-state frozen inference performed {} heap allocations",
        after - before
    );
}
