//! Central parameter store and per-pass tape binding.

use crate::Result;
use hwpr_autograd::{Tape, Var};
use hwpr_tensor::{Init, Matrix};

/// Identifier of a parameter inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns every trainable matrix of a model.
///
/// Layers are constructed against a `&mut Params` and keep only
/// [`ParamId`]s; optimizers mutate the store in place between passes.
#[derive(Debug, Default, Clone)]
pub struct Params {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter initialised by `init` with the given `seed`.
    pub fn add(&mut self, name: &str, rows: usize, cols: usize, init: Init, seed: u64) -> ParamId {
        self.add_matrix(name, init.matrix(rows, cols, seed))
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add_matrix(&mut self, name: &str, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.to_string());
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (matrices, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The registered name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this store.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// The ids of all registered parameters, in registration order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.values.len()).map(ParamId).collect()
    }

    /// The id at position `idx` in registration order (the allocation-free
    /// alternative to [`Params::ids`] for optimizer loops).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn id_at(&self, idx: usize) -> ParamId {
        assert!(idx < self.values.len(), "parameter index out of range");
        ParamId(idx)
    }

    /// Iterator over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    pub(crate) fn index(id: ParamId) -> usize {
        id.0
    }
}

/// Binds parameters from a [`Params`] store onto a [`Tape`] for one
/// forward/backward pass, then routes gradients back.
///
/// Layers call [`Binder::param`] during `forward`; the binder inserts each
/// parameter as a tape leaf at most once per pass. [`Binder::finish`] runs
/// the backward pass and returns gradients aligned with the store.
#[derive(Debug)]
pub struct Binder<'t, 'p> {
    tape: &'t mut Tape,
    params: &'p Params,
    bound: Vec<Option<Var>>,
    /// Whether stochastic layers (dropout) should be active.
    pub train: bool,
}

impl<'t, 'p> Binder<'t, 'p> {
    /// Creates a binder in inference mode (dropout disabled).
    pub fn new(tape: &'t mut Tape, params: &'p Params) -> Self {
        Self {
            tape,
            params,
            bound: vec![None; params.len()],
            train: false,
        }
    }

    /// Creates a binder in training mode (dropout enabled).
    pub fn for_training(tape: &'t mut Tape, params: &'p Params) -> Self {
        let mut b = Self::new(tape, params);
        b.train = true;
        b
    }

    /// Creates a binder that reuses a binding buffer returned by
    /// [`Binder::finish_into`], avoiding the per-pass `Vec` allocation of
    /// [`Binder::new`]. The buffer is cleared and resized to the store.
    pub fn rebind(
        tape: &'t mut Tape,
        params: &'p Params,
        mut bound: Vec<Option<Var>>,
        train: bool,
    ) -> Self {
        bound.clear();
        bound.resize(params.len(), None);
        Self {
            tape,
            params,
            bound,
            train,
        }
    }

    /// The tape being recorded onto.
    pub fn tape(&mut self) -> &mut Tape {
        self.tape
    }

    /// Inserts an input (non-parameter) leaf.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.tape.leaf(value)
    }

    /// Inserts an input leaf holding a pooled copy of `value` — the
    /// allocation-free form of [`Binder::input`] for reused tapes.
    pub fn input_copy(&mut self, value: &Matrix) -> Var {
        self.tape.leaf_copy(value)
    }

    /// The tape variable for parameter `id`, binding it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the bound store.
    pub fn param(&mut self, id: ParamId) -> Var {
        let idx = Params::index(id);
        if let Some(v) = self.bound[idx] {
            return v;
        }
        let v = self.tape.leaf_copy(self.params.get(id));
        self.bound[idx] = Some(v);
        v
    }

    /// Runs the backward pass from `loss` and returns per-parameter
    /// gradients aligned with the store (`None` for parameters that did not
    /// participate in this pass).
    ///
    /// # Errors
    ///
    /// Propagates [`hwpr_autograd::AutogradError`] from the backward pass.
    pub fn finish(self, loss: Var) -> Result<Vec<Option<Matrix>>> {
        self.tape.backward(loss)?;
        let grads = self
            .bound
            .iter()
            .map(|slot| slot.and_then(|v| self.tape.grad(v).cloned()))
            .collect();
        Ok(grads)
    }

    /// Runs the backward pass from `loss` and copies per-parameter
    /// gradients into `grads` (resized to the store), reusing each entry's
    /// storage when its shape already matches. Returns the binding buffer
    /// for reuse via [`Binder::rebind`].
    ///
    /// Together with [`Tape::reset`] this keeps a fixed-shape training loop
    /// free of per-step allocations: both the binding `Vec` and every
    /// gradient matrix persist across steps.
    ///
    /// # Errors
    ///
    /// Propagates [`hwpr_autograd::AutogradError`] from the backward pass.
    pub fn finish_into(
        self,
        loss: Var,
        grads: &mut Vec<Option<Matrix>>,
    ) -> Result<Vec<Option<Var>>> {
        self.tape.backward(loss)?;
        grads.resize_with(self.params.len(), || None);
        for (slot, dst) in self.bound.iter().zip(grads.iter_mut()) {
            let src = slot.and_then(|v| self.tape.grad(v));
            match (src, dst) {
                (Some(g), Some(existing)) if existing.shape() == g.shape() => {
                    existing.as_mut_slice().copy_from_slice(g.as_slice());
                }
                (Some(g), dst) => *dst = Some(g.clone()),
                (None, dst) => *dst = None,
            }
        }
        Ok(self.bound)
    }

    /// Releases the tape borrow and returns the binding buffer for reuse
    /// via [`Binder::rebind`] — the inference-path counterpart of
    /// [`Binder::finish_into`] (no backward pass, no gradients).
    pub fn into_bound(self) -> Vec<Option<Var>> {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_registration_and_access() {
        let mut p = Params::new();
        assert!(p.is_empty());
        let w = p.add("w", 2, 3, Init::Zeros, 0);
        let b = p.add_matrix("b", Matrix::ones(1, 3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 9);
        assert_eq!(p.name(w), "w");
        assert_eq!(p.get(b), &Matrix::ones(1, 3));
        p.get_mut(w).set(0, 0, 5.0);
        assert_eq!(p.get(w)[(0, 0)], 5.0);
        let collected: Vec<_> = p.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(collected, vec!["w", "b"]);
    }

    #[test]
    fn binder_binds_each_param_once() {
        let mut p = Params::new();
        let w = p.add_matrix("w", Matrix::filled(1, 1, 2.0));
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &p);
        let v1 = binder.param(w);
        let v2 = binder.param(w);
        assert_eq!(v1, v2);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn finish_routes_gradients_to_store_order() {
        let mut p = Params::new();
        let w = p.add_matrix("w", Matrix::filled(1, 1, 2.0));
        let unused = p.add_matrix("unused", Matrix::filled(1, 1, 1.0));
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &p);
        let x = binder.input(Matrix::filled(1, 1, 3.0));
        let wv = binder.param(w);
        let y = binder.tape().mul(x, wv).unwrap();
        let grads = binder.finish(y).unwrap();
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[Params::index(w)].as_ref().unwrap()[(0, 0)], 3.0);
        assert!(grads[Params::index(unused)].is_none());
    }

    #[test]
    fn training_mode_flag() {
        let p = Params::new();
        let mut tape = Tape::new();
        let b = Binder::for_training(&mut tape, &p);
        assert!(b.train);
        let mut tape = Tape::new();
        let b = Binder::new(&mut tape, &p);
        assert!(!b.train);
    }
}
