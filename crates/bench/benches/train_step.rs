//! Full training-step throughput on the paper-sized LSTM latency
//! surrogate (Table II: batch 128, 2x225 LSTM, [256, 128] head). Two
//! implementations of the same step:
//!
//! - `baseline_pr1` — the PR-1 shape: a fresh tape every step, per-gate
//!   LSTM graph, per-op linear layers, cloned gradients.
//! - `fused_reused` — the PR-2 hot path: fused LSTM-step/linear/loss
//!   kernels on a persistent, `reset`-recycled tape arena.
//!
//! The PR-2 acceptance point: `fused_reused` must be >= 2x the baseline's
//! per-step throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::train_step::{step_data, BaselineTrainer, FusedTrainer, StepConfig};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let config = StepConfig::paper();
    let data = step_data(&config);
    let mut fused = FusedTrainer::new(&config);
    // warm the arena (pools, optimizer state) so the bench measures the
    // steady state the training loop actually runs in
    for _ in 0..2 {
        fused.step(&data);
    }
    group.bench_function("fused_reused", |b| b.iter(|| fused.step(&data)));
    let mut baseline = BaselineTrainer::new(&config);
    for _ in 0..2 {
        baseline.step(&data);
    }
    group.bench_function("baseline_pr1", |b| b.iter(|| baseline.step(&data)));
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
