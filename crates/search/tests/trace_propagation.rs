//! Cross-thread trace connectivity: a multi-threaded MOEA run must
//! capture as **one** connected span tree — a single `search.moea` root
//! and zero orphan spans — regardless of how many evaluation workers the
//! frozen engine fans out to. Orphans are the failure signature of a
//! worker thread opening spans without the spawner's
//! [`hwpr_obs::SpanContext`].

use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_obs::sink::MemorySink;
use hwpr_obs::{Event, Recorder};
use hwpr_search::{Evaluator, HwPrNasEvaluator, IslandConfig, IslandSearch, Moea, MoeaConfig};
use hwpr_tensor::Precision;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The recorder slot is process-global; tests that install one serialise
/// on this lock.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn trained_model() -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(48),
        seed: 3,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)
        .expect("fixture dataset");
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("tiny fit");
    Arc::new(model)
}

/// Runs a short seeded search at `threads` workers and returns the
/// captured events. Training happens before the sink is installed, so
/// the capture holds only the search.
fn run_instrumented_search(model: &Arc<HwPrNas>, threads: usize) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    hwpr_obs::install(Arc::clone(&sink) as Arc<dyn Recorder>);
    let cfg = MoeaConfig {
        generations: 2,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(7);
    let mut evaluator =
        HwPrNasEvaluator::new(Arc::clone(model), Platform::EdgeGpu).with_threads(threads);
    Moea::new(cfg)
        .expect("valid config")
        .run(&mut evaluator)
        .expect("search runs");
    hwpr_obs::shutdown();
    sink.events()
}

#[test]
fn multi_threaded_search_captures_one_connected_trace() {
    let _guard = recorder_lock();
    let model = trained_model();
    // a small compiled batch forces predict_full_parallel to actually
    // split the population across workers (the default 256-wide batch
    // would collapse a small population onto one worker thread)
    model.freeze_with(4, Precision::F32);

    for threads in [1usize, 2, 8] {
        let events = run_instrumented_search(&model, threads);
        let stats = hwpr_obs::trace::stats(&events);
        assert!(stats.spans > 0, "threads={threads}: no spans captured");
        assert_eq!(
            stats.roots, 1,
            "threads={threads}: expected exactly the search.moea root, got {stats:?}"
        );
        assert_eq!(
            stats.orphans, 0,
            "threads={threads}: cross-thread span propagation broke, {stats:?}"
        );
        // the root really is the search span
        let root = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart {
                    parent: 0, name, ..
                } => Some(name.clone()),
                _ => None,
            })
            .expect("a root span start");
        assert_eq!(root, "search.moea");
        // the evaluation layer shows up inside the tree
        for expected in ["search.generation", "search.eval", "infer.frozen"] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::SpanStart { name, .. } if name == expected)),
                "threads={threads}: span {expected} missing from the capture"
            );
        }
        if threads > 1 {
            // real fan-out: worker spans on more than one thread lane
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "infer.worker")),
                "threads={threads}: no infer.worker spans captured"
            );
            assert!(
                stats.threads > 1,
                "threads={threads}: all spans landed on one lane, {stats:?}"
            );
        }
        // the exporters accept the capture end-to-end
        let chrome = hwpr_obs::trace::chrome_trace(&events);
        assert!(chrome.contains("\"traceEvents\""));
        let tree = hwpr_obs::trace::span_tree(&events);
        assert!(tree.contains("search.moea"), "{tree}");
    }
}

/// Runs a short seeded island search at `islands` islands (one worker
/// lane per island) and returns the captured events.
fn run_instrumented_island_search(model: &Arc<HwPrNas>, islands: usize) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    hwpr_obs::install(Arc::clone(&sink) as Arc<dyn Recorder>);
    let cfg = IslandConfig {
        islands,
        workers: islands,
        generations: 4,
        migration_every: 2,
        ..IslandConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(7);
    IslandSearch::new(cfg)
        .expect("valid config")
        .run(|_| {
            Box::new(HwPrNasEvaluator::new(Arc::clone(model), Platform::EdgeGpu))
                as Box<dyn Evaluator + Send>
        })
        .expect("search runs");
    hwpr_obs::shutdown();
    sink.events()
}

#[test]
fn island_search_captures_one_connected_trace() {
    let _guard = recorder_lock();
    let model = trained_model();
    for islands in [1usize, 2, 8] {
        let migrants_before = hwpr_obs::metrics::registry()
            .counter("search.migrants")
            .get();
        let events = run_instrumented_island_search(&model, islands);
        let stats = hwpr_obs::trace::stats(&events);
        assert!(stats.spans > 0, "islands={islands}: no spans captured");
        assert_eq!(
            stats.roots, 1,
            "islands={islands}: expected exactly the search.islands root, got {stats:?}"
        );
        assert_eq!(
            stats.orphans, 0,
            "islands={islands}: worker-lane span propagation broke, {stats:?}"
        );
        let root = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart {
                    parent: 0, name, ..
                } => Some(name.clone()),
                _ => None,
            })
            .expect("a root span start");
        assert_eq!(root, "search.islands");
        // one labelled island span per island per epoch (2 epochs here)
        let island_spans: Vec<&Option<String>> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, label, .. } if name == "search.island" => Some(label),
                _ => None,
            })
            .collect();
        assert_eq!(
            island_spans.len(),
            islands * 2,
            "islands={islands}: wrong search.island span count"
        );
        for id in 0..islands {
            let expect = Some(id.to_string());
            assert!(
                island_spans.iter().any(|l| **l == expect),
                "islands={islands}: no span labelled for island {id}"
            );
        }
        // the migration barrier is spanned (it runs between epochs only)
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "search.migration")),
            "islands={islands}: no search.migration span"
        );
        if islands > 1 {
            assert!(
                stats.threads > 1,
                "islands={islands}: all island spans landed on one lane, {stats:?}"
            );
            // ring migration on identically-scored islands accepts migrants
            let migrants_after = hwpr_obs::metrics::registry()
                .counter("search.migrants")
                .get();
            assert!(
                migrants_after > migrants_before,
                "islands={islands}: search.migrants counter never moved"
            );
        }
        // per-generation island timings flow into the histogram
        assert!(
            hwpr_obs::metrics::registry()
                .snapshot()
                .histograms
                .iter()
                .any(|e| matches!(
                    e,
                    Event::Hist { name, count, .. }
                        if name == "search.island.gen.us" && *count > 0
                )),
            "islands={islands}: search.island.gen.us histogram empty"
        );
        let tree = hwpr_obs::trace::span_tree(&events);
        assert!(tree.contains("search.islands"), "{tree}");
    }
}
