//! Integration tests for the telemetry pipeline: span nesting and timing,
//! histogram bucket placement, JSONL round-trips and concurrent metric
//! updates.

use hwpr_obs::metrics::{Counter, Histogram, Registry};
use hwpr_obs::sink::MemorySink;
use hwpr_obs::{Event, Recorder, Value};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The recorder slot is process-global; tests that install one serialise
/// on this lock so they never observe each other's events.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with a fresh [`MemorySink`] installed and returns the events
/// it captured.
fn with_memory_sink(f: impl FnOnce()) -> Vec<Event> {
    let _guard = recorder_lock();
    let sink = Arc::new(MemorySink::new());
    hwpr_obs::install(Arc::clone(&sink) as Arc<dyn Recorder>);
    f();
    hwpr_obs::shutdown();
    sink.events()
}

#[test]
fn spans_nest_and_time_monotonically() {
    let events = with_memory_sink(|| {
        let _outer = hwpr_obs::span("t.outer");
        let _inner = hwpr_obs::span("t.inner");
    });
    assert_eq!(events.len(), 4, "2 starts + 2 ends: {events:?}");

    let find_start = |name: &str| {
        events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart {
                    id,
                    parent,
                    name: n,
                    t_us,
                    ..
                } if n == name => Some((*id, *parent, *t_us)),
                _ => None,
            })
            .expect("span start present")
    };
    let find_end = |name: &str| {
        events
            .iter()
            .find_map(|e| match e {
                Event::SpanEnd {
                    id,
                    parent,
                    name: n,
                    t_us,
                    dur_us,
                    ..
                } if n == name => Some((*id, *parent, *t_us, *dur_us)),
                _ => None,
            })
            .expect("span end present")
    };

    let (outer_id, outer_parent, outer_t) = find_start("t.outer");
    let (inner_id, inner_parent, inner_t) = find_start("t.inner");
    assert_eq!(outer_parent, 0, "outer span must be a root");
    assert_eq!(inner_parent, outer_id, "inner span must nest under outer");
    assert_ne!(inner_id, outer_id);
    assert!(inner_t >= outer_t, "children start after their parent");

    let (end_inner_id, _, inner_end_t, inner_dur) = find_end("t.inner");
    let (end_outer_id, _, outer_end_t, outer_dur) = find_end("t.outer");
    assert_eq!(end_inner_id, inner_id);
    assert_eq!(end_outer_id, outer_id);
    // monotonic timing: ends at or after the start, outer covers inner
    assert!(inner_end_t >= inner_t);
    assert!(outer_end_t >= inner_end_t, "drop order: inner ends first");
    assert!(outer_dur >= inner_dur, "outer span contains the inner one");

    // the whole event stream is time-ordered
    let times: Vec<u64> = events.iter().map(Event::t_us).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
}

#[test]
fn span_restores_parent_after_drop() {
    let events = with_memory_sink(|| {
        let _outer = hwpr_obs::span("t.root");
        {
            let _a = hwpr_obs::span("t.first_child");
        }
        {
            let _b = hwpr_obs::span("t.second_child");
        }
    });
    let root_id = events
        .iter()
        .find_map(|e| match e {
            Event::SpanStart { id, name, .. } if name == "t.root" => Some(*id),
            _ => None,
        })
        .expect("root start");
    // both siblings report the root as parent: dropping the first child
    // restored the thread's current span
    for child in ["t.first_child", "t.second_child"] {
        let parent = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart { parent, name, .. } if name == child => Some(*parent),
                _ => None,
            })
            .expect("child start");
        assert_eq!(parent, root_id, "{child} must hang off the root span");
    }
}

#[test]
fn span_context_propagates_across_threads() {
    let events = with_memory_sink(|| {
        let root = hwpr_obs::span("t.fanout");
        let ctx = root.context();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let _worker = hwpr_obs::span_with_parent("t.worker", ctx);
                    let _inner = hwpr_obs::span("t.worker_inner");
                });
            }
        });
    });
    let root_id = events
        .iter()
        .find_map(|e| match e {
            Event::SpanStart { id, name, .. } if name == "t.fanout" => Some(*id),
            _ => None,
        })
        .expect("root start");
    // every worker span hangs off the spawning thread's span, and the
    // workers' own children nest under the worker (thread-local nesting
    // keeps working under an explicit parent)
    let worker_starts: Vec<(u64, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanStart {
                id,
                parent,
                name,
                tid,
                ..
            } if name == "t.worker" => Some((*id, *parent, *tid)),
            _ => None,
        })
        .collect();
    assert_eq!(worker_starts.len(), 4);
    for (_, parent, _) in &worker_starts {
        assert_eq!(*parent, root_id, "worker must parent to the fan-out span");
    }
    // the four workers ran on distinct threads with distinct lane ids,
    // none of them the root's lane
    let root_tid = events
        .iter()
        .find_map(|e| match e {
            Event::SpanStart { name, tid, .. } if name == "t.fanout" => Some(*tid),
            _ => None,
        })
        .unwrap();
    let mut worker_tids: Vec<u64> = worker_starts.iter().map(|(_, _, tid)| *tid).collect();
    worker_tids.sort_unstable();
    worker_tids.dedup();
    assert_eq!(worker_tids.len(), 4, "one lane per worker thread");
    assert!(!worker_tids.contains(&root_tid));
    for (worker_id, _, worker_tid) in &worker_starts {
        let inner = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart {
                    parent, name, tid, ..
                } if name == "t.worker_inner" && tid == worker_tid => Some(*parent),
                _ => None,
            })
            .expect("worker inner span");
        assert_eq!(inner, *worker_id, "inner span nests under its worker");
    }
    // the capture is one connected tree: one root, no orphans
    let stats = hwpr_obs::trace::stats(&events);
    assert_eq!(stats.roots, 1, "{stats:?}");
    assert_eq!(stats.orphans, 0, "{stats:?}");
    assert_eq!(stats.spans, 9, "1 root + 4 workers + 4 inners");
    assert_eq!(stats.threads, 5, "main + 4 workers");
}

#[test]
fn jsonl_spec_creates_missing_directories_and_opens_with_trace_meta() {
    let _guard = recorder_lock();
    let dir = std::env::temp_dir().join(format!("hwpr-obs-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("deeply/nested/run.jsonl");
    let spec = hwpr_obs::TelemetrySpec::Jsonl(path.clone());
    assert!(spec.install_or_warn(), "nested dirs must be created");
    {
        let _probe = hwpr_obs::span("t.config_probe");
    }
    hwpr_obs::shutdown();
    let text = std::fs::read_to_string(&path).expect("run record written");
    let events = hwpr_obs::report::parse_jsonl(&text).expect("valid JSONL");
    // the capture opens with the run-identifying trace.meta record
    assert!(
        matches!(&events[0], Event::Record { name, fields, .. }
            if name == "trace.meta"
                && fields.iter().any(|(k, _)| k == "trace_id")
                && fields.iter().any(|(k, _)| k == "pid")),
        "{events:?}"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "t.config_probe")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_jsonl_spec_degrades_to_a_warning() {
    let _guard = recorder_lock();
    // /proc/version exists and is definitely not a directory, so creating
    // a file beneath it must fail on any Linux runner
    let spec = hwpr_obs::TelemetrySpec::Jsonl("/proc/version/nope/run.jsonl".into());
    assert!(spec.install().is_err(), "sanity: the path is unwritable");
    assert!(!spec.install_or_warn(), "degrades instead of panicking");
    assert!(
        !hwpr_obs::enabled(),
        "telemetry stays off after the failure"
    );
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
    let h = Histogram::new("t.bounds", &Histogram::exponential_bounds(1.0, 10.0, 3));
    assert_eq!(h.bounds(), &[1.0, 10.0, 100.0]);
    h.observe(1.0); // boundary value: lower bucket
    h.observe(10.0); // boundary value: second bucket
    h.observe(100.0); // boundary value: third bucket
    h.observe(100.0001); // just past the last bound: overflow
    assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
    assert_eq!(h.count(), 4);
}

#[test]
fn every_event_kind_round_trips_through_jsonl() {
    // non-integral floats by design: the vendored JSON shim re-parses
    // integral floats as integers, which the numeric getters coerce back,
    // but exact Event equality needs fractional values
    let events = vec![
        Event::SpanStart {
            id: 7,
            parent: 3,
            name: "search.moea".into(),
            label: None,
            tid: 1,
            t_us: 12,
        },
        Event::SpanEnd {
            id: 7,
            parent: 3,
            name: "search.moea".into(),
            label: Some("f16".into()),
            tid: 2,
            t_us: 90,
            dur_us: 78,
        },
        Event::Counter {
            name: "tensor.gemm.calls".into(),
            value: 42,
            t_us: 100,
        },
        Event::Gauge {
            name: "autograd.pool.reuse_ratio".into(),
            value: 0.875,
            t_us: 100,
        },
        Event::Hist {
            name: "search.eval_ms".into(),
            count: 3,
            sum: 7.5,
            bounds: vec![0.5, 2.5],
            counts: vec![1, 1, 1],
            t_us: 101,
        },
        Event::Warn {
            message: "invalid HWPR_THREADS".into(),
            t_us: 5,
        },
        Event::Record {
            name: "train.epoch".into(),
            t_us: 200,
            fields: vec![
                ("epoch".into(), Value::UInt(3)),
                ("loss".into(), Value::Float(0.25)),
                ("note".into(), Value::String("ok".into())),
            ],
        },
    ];
    let jsonl: String = events
        .iter()
        .map(|e| e.to_json() + "\n")
        .collect::<Vec<_>>()
        .join("");
    let parsed = hwpr_obs::report::parse_jsonl(&jsonl).expect("well-formed JSONL");
    assert_eq!(parsed, events);
}

#[test]
fn concurrent_counter_updates_are_never_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::default();
    let counter = registry.register_counter(Counter::new("t.concurrent"));
    let histogram = registry.register_histogram(Histogram::new("t.conc_hist", &[0.5]));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // alternate buckets so both slots and the CAS'd sum
                    // see contention
                    histogram.observe(if (i + t as u64).is_multiple_of(2) {
                        0.25
                    } else {
                        1.0
                    });
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(histogram.count(), THREADS as u64 * PER_THREAD);
    let buckets = histogram.bucket_counts();
    assert_eq!(buckets.iter().sum::<u64>(), THREADS as u64 * PER_THREAD);
    assert_eq!(buckets[0], THREADS as u64 * PER_THREAD / 2);
    let expected_sum = (THREADS as u64 * PER_THREAD / 2) as f64 * (0.25 + 1.0);
    assert!(
        (histogram.sum() - expected_sum).abs() < 1e-6,
        "lost CAS update: {} != {expected_sum}",
        histogram.sum()
    );
}

#[test]
fn registry_snapshot_feeds_the_event_stream() {
    let events = with_memory_sink(|| {
        let registry = hwpr_obs::metrics::registry();
        registry.counter("t.snapshot.counter").add(5);
        registry.gauge("t.snapshot.gauge").set(1.5);
        registry.emit();
    });
    assert!(events.iter().any(
        |e| matches!(e, Event::Counter { name, value, .. } if name == "t.snapshot.counter" && *value >= 5)
    ));
    assert!(events.iter().any(
        |e| matches!(e, Event::Gauge { name, value, .. } if name == "t.snapshot.gauge" && *value == 1.5)
    ));
}
