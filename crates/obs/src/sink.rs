//! Event sinks: the [`Recorder`] trait and its built-in implementations.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives every telemetry event. Implementations must be thread-safe:
/// instrumented code records from worker threads concurrently.
pub trait Recorder: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (called by [`crate::shutdown`] and
    /// [`crate::flush`]).
    fn flush(&self) {}
}

/// Writes one JSON object per line. Every record is flushed through to
/// the underlying writer so a crashed or killed run keeps its telemetry.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Streams JSONL to (truncating) the file at `path`, creating missing
    /// parent directories — `jsonl:runs/today/run.jsonl` must not fail
    /// just because `runs/today/` does not exist yet.
    ///
    /// # Errors
    ///
    /// Propagates the directory- or file-creation error.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self::to_writer(Box::new(File::create(path)?)))
    }

    /// Streams JSONL to stderr.
    pub fn to_stderr() -> Self {
        Self::to_writer(Box::new(io::stderr()))
    }

    /// Streams JSONL to an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock().expect("sink lock poisoned");
        // IO failures must not crash the instrumented run; telemetry is
        // best-effort by design
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("sink lock poisoned").flush();
    }
}

/// Buffers events in memory; the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("sink lock poisoned").clear();
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("sink lock poisoned")
            .push(event.clone());
    }
}

/// Accepts and discards every event while keeping telemetry *enabled* —
/// the `telemetry_overhead` bench uses it to measure pure instrumentation
/// cost without sink IO.
#[derive(Debug, Default)]
pub struct NullSink;

impl Recorder for NullSink {
    fn record(&self, _event: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_stores_events() {
        let sink = MemorySink::new();
        sink.record(&Event::Warn {
            message: "x".into(),
            t_us: 1,
        });
        assert_eq!(sink.events().len(), 1);
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        /// Shared in-memory writer so the test can inspect sink output.
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonlSink::to_writer(Box::new(buf.clone()));
        sink.record(&Event::Counter {
            name: "a".into(),
            value: 1,
            t_us: 2,
        });
        sink.record(&Event::Counter {
            name: "b".into(),
            value: 3,
            t_us: 4,
        });
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"name\":\"b\""));
    }
}
