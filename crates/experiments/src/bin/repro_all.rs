//! Runs every experiment in sequence, regenerating all tables and figures.
type Experiment = (&'static str, fn(&hwpr_experiments::Harness) -> String);

fn main() {
    let harness = hwpr_experiments::Harness::new();
    let experiments: [Experiment; 13] = [
        ("fig1_motivation", hwpr_experiments::exps::fig1::run),
        ("table1_regressors", hwpr_experiments::exps::table1::run),
        ("fig4_encodings", hwpr_experiments::exps::fig4::run),
        (
            "latency_correlation",
            hwpr_experiments::exps::latency_corr::run,
        ),
        ("fig6_pareto_fronts", hwpr_experiments::exps::fig6::run),
        ("table3_hypervolume", hwpr_experiments::exps::table3::run),
        ("fig7_search_time", hwpr_experiments::exps::fig7::run),
        ("table4_proportions", hwpr_experiments::exps::table4::run),
        ("fig8_architectures", hwpr_experiments::exps::fig8::run),
        ("fig9_three_objectives", hwpr_experiments::exps::fig9::run),
        ("ablation_loss", hwpr_experiments::exps::ablation_loss::run),
        (
            "proxy_transfer",
            hwpr_experiments::exps::proxy_transfer::run,
        ),
        (
            "hv_convergence",
            hwpr_experiments::exps::hv_convergence::run,
        ),
    ];
    for (name, exp) in experiments {
        eprintln!("=== running {name} ===");
        let started = std::time::Instant::now();
        let report = exp(&harness);
        hwpr_experiments::write_report(name, &report);
        eprintln!(
            "=== {name} finished in {:.1} s ===",
            started.elapsed().as_secs_f64()
        );
    }
}
