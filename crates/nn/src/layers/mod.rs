//! Layer implementations used by the HW-PR-NAS predictors.

mod dropout;
mod embedding;
mod gcn;
mod linear;
mod lstm;
mod mlp;

pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gcn::{normalize_adjacency, GcnLayer};
pub use linear::Linear;
pub use lstm::Lstm;
pub use mlp::{Activation, Mlp, MlpConfig};

/// The deterministic RNG threaded through stochastic layers (dropout).
pub type LayerRng = rand_chacha::ChaCha8Rng;
