//! GEMM kernel instrumentation: call/FLOP counters and timing histograms.
//!
//! Every hook is gated on [`hwpr_obs::enabled`] before touching a clock or
//! a metric handle, so with telemetry off the cost per GEMM is one relaxed
//! atomic load and zero allocation — the property the `alloc-count`
//! harness in `hwpr-bench` asserts for the training hot path. The handles
//! themselves are named registry metrics created lazily on the first
//! *enabled* call.

use hwpr_obs::metrics::{registry, Counter, Histogram};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct GemmMetrics {
    /// "tensor.gemm.calls": GEMM driver invocations (packed + unpacked).
    calls: Arc<Counter>,
    /// "tensor.gemm.flops": multiply-add work, `2 * m * n * k` per call.
    flops: Arc<Counter>,
    /// "tensor.pack.calls": full `B` prepack invocations.
    pack_calls: Arc<Counter>,
    /// "tensor.pack.static": prepacks that bound a monomorphized
    /// fixed-shape kernel (subset of `tensor.pack.calls`).
    static_packs: Arc<Counter>,
    /// "tensor.gemm.static_calls": GEMMs dispatched to a monomorphized
    /// fixed-shape kernel instead of the blocked driver.
    static_calls: Arc<Counter>,
    /// "tensor.gemm.us": per-call wall time in microseconds.
    time_us: Arc<Histogram>,
}

fn metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        calls: registry().counter("tensor.gemm.calls"),
        flops: registry().counter("tensor.gemm.flops"),
        pack_calls: registry().counter("tensor.pack.calls"),
        static_packs: registry().counter("tensor.pack.static"),
        static_calls: registry().counter("tensor.gemm.static_calls"),
        time_us: registry().histogram(
            "tensor.gemm.us",
            &Histogram::exponential_bounds(1.0, 4.0, 10),
        ),
    })
}

/// RAII timer around one GEMM driver call. Inert (no clock read, no
/// allocation) when telemetry is off.
pub(crate) struct KernelTimer {
    start: Option<Instant>,
}

impl KernelTimer {
    /// Starts timing a `(m, n, k)` GEMM and counts its FLOPs.
    pub(crate) fn gemm((m, n, k): (usize, usize, usize)) -> Self {
        if !hwpr_obs::enabled() {
            return Self { start: None };
        }
        let metrics = metrics();
        metrics.calls.inc();
        metrics.flops.add(2 * (m * n * k) as u64);
        Self {
            start: Some(Instant::now()),
        }
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            metrics()
                .time_us
                .observe(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// Counts one full-`B` prepack (no timing: packing is memory-bound and
/// already covered by the surrounding GEMM span).
pub(crate) fn note_pack() {
    if hwpr_obs::enabled() {
        metrics().pack_calls.inc();
    }
}

/// Counts a prepack that resolved a monomorphized fixed-shape kernel.
pub(crate) fn note_static_pack() {
    if hwpr_obs::enabled() {
        metrics().static_packs.inc();
    }
}

/// Counts a GEMM served by a monomorphized fixed-shape kernel and its
/// FLOPs (the static path bypasses the driver's [`KernelTimer`]).
pub(crate) fn note_static_gemm((m, n, k): (usize, usize, usize)) {
    if hwpr_obs::enabled() {
        let metrics = metrics();
        metrics.static_calls.inc();
        metrics.flops.add(2 * (m * n * k) as u64);
    }
}
