//! Hierarchical timed spans.
//!
//! A [`Span`] is an RAII guard: creating it emits [`Event::SpanStart`],
//! dropping it emits [`Event::SpanEnd`] with a monotonic duration.
//! Nesting is tracked per thread, so `span("a")` inside `span("b")`
//! records `b` as the parent; worker threads start their own root spans.
//!
//! With telemetry off, [`span`] is one relaxed atomic load and returns an
//! inert guard — no clock read, no allocation, no thread-local touch.

use crate::event::Event;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-unique span id source (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 at the root).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// An open span; the region ends (and the end event is emitted) when the
/// guard drops.
#[must_use = "a span measures the region until the guard is dropped"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent: u64,
    name: &'static str,
    label: Option<&'static str>,
    start: Instant,
}

/// Opens a span named `name`. Inert (and allocation-free) when telemetry
/// is off.
pub fn span(name: &'static str) -> Span {
    open(name, None)
}

/// Opens a span named `name` carrying a variant `label` (e.g. the panel
/// precision of an `"infer.frozen"` span). The label rides on both the
/// start and end events and is rendered as `name[label]` by the report.
/// Inert (and allocation-free) when telemetry is off.
pub fn span_labeled(name: &'static str, label: &'static str) -> Span {
    open(name, Some(label))
}

fn open(name: &'static str, label: Option<&'static str>) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|current| current.replace(id));
    crate::emit(Event::SpanStart {
        id,
        parent,
        name: name.to_string(),
        label: label.map(str::to_string),
        t_us: crate::now_us(),
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            label,
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// The span id (`None` when telemetry was off at creation).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT_SPAN.with(|current| current.set(inner.parent));
        crate::emit(Event::SpanEnd {
            id: inner.id,
            parent: inner.parent,
            name: inner.name.to_string(),
            label: inner.label.map(str::to_string),
            t_us: crate::now_us(),
            dur_us: inner.start.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // no recorder installed in this unit-test context
        let guard = span("t.disabled");
        assert_eq!(guard.id(), None);
        drop(guard);
        CURRENT_SPAN.with(|current| assert_eq!(current.get(), 0));
    }
}
