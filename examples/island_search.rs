//! Island-model search: train the surrogate once, then run the sharded
//! MOEA across parallel islands with ring migration and a mid-run
//! checkpoint, and verify the resumed run reproduces the uninterrupted
//! one bit-for-bit.
//!
//! ```text
//! cargo run --release --example island_search
//! HWPR_ISLANDS=8 cargo run --release --example island_search
//! ```

use hw_pr_nas::core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::search::{Evaluator, HwPrNasEvaluator, IslandConfig, IslandSearch};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the fused surrogate on a synthetic benchmark slice.
    println!("generating benchmark table ...");
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(400),
        seed: 7,
    });
    let platform = Platform::EdgeGpu;
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, platform)?;
    println!("training HW-PR-NAS on {} architectures ...", data.len());
    let (model, report) = HwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::fast())?;
    println!(
        "trained in {} epochs; validation rank tau = {:.3}",
        report.epochs_run, report.val_rank_tau
    );
    let model = Arc::new(model);
    let factory = |_id: usize| {
        Box::new(HwPrNasEvaluator::new(Arc::clone(&model), platform)) as Box<dyn Evaluator + Send>
    };

    // 2. Run the island search; HWPR_ISLANDS / HWPR_MIGRATION_EVERY
    //    override the defaults.
    let checkpoint = std::env::temp_dir().join("hwpr_island_example_snapshot.json");
    let config = IslandConfig {
        islands: 4,
        population: 24,
        generations: 12,
        migration_every: 3,
        migrants: 2,
        checkpoint_every: 2,
        checkpoint_path: Some(checkpoint.to_string_lossy().into_owned()),
        ..IslandConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(42)
    .with_env_overrides();
    println!(
        "running {} islands x {} generations (migrate every {}) ...",
        config.islands, config.generations, config.migration_every
    );
    let result = IslandSearch::new(config)?.run(factory)?;
    println!(
        "search finished: {} evaluations, {} epochs, {} migrants accepted, {:.1} ms wall",
        result.evaluations,
        result.epochs,
        result.migrants_accepted,
        result.wall_time.as_secs_f64() * 1e3
    );

    // 3. The global archive is the union Pareto front over all islands.
    println!("\nglobal archive ({} architectures):", result.archive.len());
    for member in &result.archive {
        println!(
            "  {:6.2} % error @ {:7.3} ms  {}",
            member.objectives[0],
            member.objectives[1],
            member.arch.to_arch_string()
        );
    }
    if let Some(hv) = result.hypervolume {
        println!("hypervolume at budget: {hv:.3}");
    }

    // 4. Resume the checkpoint the run left behind and verify the replay
    //    is exact: same archive, same hypervolume.
    let snapshot = IslandSearch::load_snapshot(&checkpoint)?;
    println!(
        "\nresuming from the generation-{} checkpoint ...",
        snapshot.generations_done
    );
    let resumed = IslandSearch::resume(&snapshot, factory)?;
    assert_eq!(resumed.archive, result.archive, "resume diverged");
    assert_eq!(resumed.hypervolume, result.hypervolume);
    println!(
        "resume replayed generations {}..{} bit-identically",
        snapshot.generations_done, resumed.generations
    );
    std::fs::remove_file(&checkpoint).ok();
    Ok(())
}
