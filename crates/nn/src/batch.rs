//! Deterministic mini-batch index generation.

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Produces shuffled mini-batches of indices `0..n`.
///
/// The final batch may be smaller than `batch_size`. Batches are
/// deterministic for a given `(n, batch_size, seed)`.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
///
/// # Examples
///
/// ```
/// let batches = hwpr_nn::batch::shuffled_batches(10, 4, 7);
/// assert_eq!(batches.len(), 3);
/// let total: usize = batches.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
pub fn shuffled_batches(n: usize, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

/// Splits `0..n` into train/validation index sets with a deterministic
/// shuffle; `val_fraction` of samples (rounded down, at least one when
/// `n > 1`) go to validation.
///
/// # Panics
///
/// Panics unless `0.0 <= val_fraction < 1.0`.
pub fn train_val_split(n: usize, val_fraction: f32, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..1.0).contains(&val_fraction),
        "validation fraction must be in [0, 1)"
    );
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut val_len = (n as f32 * val_fraction) as usize;
    if val_len == 0 && val_fraction > 0.0 && n > 1 {
        val_len = 1;
    }
    let val = order.split_off(n - val_len);
    (order, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn batches_cover_all_indices_once() {
        let batches = shuffled_batches(23, 5, 1);
        let all: Vec<usize> = batches.concat();
        assert_eq!(all.len(), 23);
        let set: HashSet<usize> = all.into_iter().collect();
        assert_eq!(set.len(), 23);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(shuffled_batches(10, 3, 9), shuffled_batches(10, 3, 9));
        assert_ne!(shuffled_batches(100, 10, 1), shuffled_batches(100, 10, 2));
    }

    #[test]
    fn empty_input_gives_no_batches() {
        assert!(shuffled_batches(0, 4, 0).is_empty());
    }

    #[test]
    fn split_sizes() {
        let (train, val) = train_val_split(100, 0.2, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        let joined: HashSet<usize> = train.iter().chain(&val).copied().collect();
        assert_eq!(joined.len(), 100);
    }

    #[test]
    fn tiny_split_gets_at_least_one_validation_sample() {
        let (train, val) = train_val_split(3, 0.1, 0);
        assert_eq!(val.len(), 1);
        assert_eq!(train.len(), 2);
    }

    #[test]
    fn zero_fraction_keeps_everything_in_train() {
        let (train, val) = train_val_split(5, 0.0, 0);
        assert_eq!(train.len(), 5);
        assert!(val.is_empty());
    }
}
