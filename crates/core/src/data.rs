//! Training data containers and the per-architecture encoding cache.

use crate::{CoreError, Result};
use hwpr_hwmodel::{BenchEntry, Platform, SimBench};
use hwpr_nasbench::features::ArchFeatures;
use hwpr_nasbench::graph::{self, ArchGraph};
use hwpr_nasbench::{tokens, Architecture, Dataset, SearchSpaceId};
use hwpr_tensor::Matrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One labelled architecture: the supervision HW-PR-NAS trains on.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSample {
    /// The architecture.
    pub arch: Architecture,
    /// Measured (here: simulated-benchmark) accuracy in percent.
    pub accuracy: f64,
    /// Measured latency on the target platform in milliseconds.
    pub latency_ms: f64,
    /// Measured energy on the target platform in millijoules.
    pub energy_mj: f64,
}

impl ArchSample {
    /// The minimisation objectives `[error %, latency ms]`.
    pub fn objectives(&self) -> Vec<f64> {
        vec![100.0 - self.accuracy, self.latency_ms]
    }

    /// The three-objective vector `[error %, latency ms, energy mJ]`.
    pub fn objectives3(&self) -> Vec<f64> {
        vec![100.0 - self.accuracy, self.latency_ms, self.energy_mj]
    }
}

/// A labelled dataset bound to one image dataset and one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateDataset {
    samples: Vec<ArchSample>,
    dataset: Dataset,
    platform: Platform,
}

impl SurrogateDataset {
    /// Builds a dataset from benchmark rows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] when `bench` is empty.
    pub fn from_simbench(bench: &SimBench, dataset: Dataset, platform: Platform) -> Result<Self> {
        Self::from_entries(bench.entries(), dataset, platform)
    }

    /// Builds a dataset from a subset of benchmark rows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] when `entries` is empty.
    pub fn from_entries(
        entries: &[BenchEntry],
        dataset: Dataset,
        platform: Platform,
    ) -> Result<Self> {
        if entries.is_empty() {
            return Err(CoreError::Data("no benchmark entries".into()));
        }
        let samples = entries
            .iter()
            .map(|e| ArchSample {
                arch: e.arch().clone(),
                accuracy: e.accuracy(dataset),
                latency_ms: e.latency_on(dataset, platform),
                energy_mj: e.energy_on(dataset, platform),
            })
            .collect();
        Ok(Self {
            samples,
            dataset,
            platform,
        })
    }

    /// Builds a dataset directly from samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] when `samples` is empty.
    pub fn from_samples(
        samples: Vec<ArchSample>,
        dataset: Dataset,
        platform: Platform,
    ) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::Data("no samples".into()));
        }
        Ok(Self {
            samples,
            dataset,
            platform,
        })
    }

    /// The labelled samples.
    pub fn samples(&self) -> &[ArchSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The image dataset the accuracies refer to.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The platform the latencies refer to.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Largest latency in the set (used to normalise regression targets).
    pub fn max_latency(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.latency_ms)
            .fold(0.0, f64::max)
    }

    /// Deterministic train/validation split.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] if either side would be empty.
    pub fn split(&self, val_fraction: f32, seed: u64) -> Result<(Self, Self)> {
        let (train_idx, val_idx) = hwpr_nn::batch::train_val_split(self.len(), val_fraction, seed);
        if train_idx.is_empty() || val_idx.is_empty() {
            return Err(CoreError::Data(format!(
                "split {val_fraction} of {} samples leaves one side empty",
                self.len()
            )));
        }
        let pick = |idx: &[usize]| Self {
            samples: idx.iter().map(|&i| self.samples[i].clone()).collect(),
            dataset: self.dataset,
            platform: self.platform,
        };
        Ok((pick(&train_idx), pick(&val_idx)))
    }
}

/// All three encodings of one architecture, computed once.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEncoding {
    /// Graph encoding (padded to the cache's node count).
    pub graph: ArchGraph,
    /// Token sequence (padded to the cache's sequence length).
    pub tokens: Vec<usize>,
    /// Raw (unnormalised) architecture features.
    pub af: Vec<f32>,
    /// First-layer GCN aggregation `A @ X` (`nodes x NODE_FEATURE_DIM`):
    /// weight-independent, so it is computed once per architecture here
    /// instead of once per chunk in the inference hot loop. Produced by
    /// the same accumulation kernel the live path runs
    /// ([`Matrix::block_left_matmul_each_into`] on a single block), so
    /// consuming it is bit-identical to aggregating in place.
    pub agg: Matrix,
}

/// Multiply-fold hasher for the cache key. The entries map is probed for
/// every architecture of every inference chunk, and the default SipHash
/// showed up in the frozen sweep profile; the key is a tiny
/// `(space, index)` pair that needs no DoS resistance (indices come from
/// the bounded search spaces, not attacker input).
#[derive(Default)]
struct ArchKeyHasher(u64);

impl ArchKeyHasher {
    #[inline]
    fn fold(&mut self, v: u64) {
        // golden-ratio multiply-fold (FxHash-style): two rounds cover the
        // u128 index, one the space discriminant
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(5);
    }
}

impl std::hash::Hasher for ArchKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    fn write_isize(&mut self, v: isize) {
        self.fold(v as u64);
    }
}

type ArchKeyMap = HashMap<
    (SearchSpaceId, u128),
    Arc<CachedEncoding>,
    std::hash::BuildHasherDefault<ArchKeyHasher>,
>;

/// Thread-safe memoisation of architecture encodings.
///
/// Encoding an architecture (profiling + graph building) costs far more
/// than a surrogate forward pass, and the MOEA re-scores populations every
/// generation; the cache makes repeat scoring cheap.
#[derive(Debug)]
pub struct EncodingCache {
    dataset: Dataset,
    nodes: usize,
    seq_len: usize,
    entries: Mutex<ArchKeyMap>,
}

impl EncodingCache {
    /// Creates a cache that pads graphs to `nodes` and token sequences to
    /// `seq_len`; `dataset` fixes the input resolution for AF extraction.
    pub fn new(dataset: Dataset, nodes: usize, seq_len: usize) -> Self {
        Self {
            dataset,
            nodes,
            seq_len,
            entries: Mutex::new(ArchKeyMap::default()),
        }
    }

    /// A cache sized for a single search space (natural node count and
    /// sequence length — no padding waste).
    pub fn for_space(space: SearchSpaceId, dataset: Dataset) -> Self {
        match space {
            SearchSpaceId::NasBench201 => Self::new(dataset, graph::NB201_NODES, 6),
            SearchSpaceId::FBNet => Self::new(dataset, graph::FBNET_NODES, 22),
        }
    }

    /// A cache sized to hold both spaces in one batch layout.
    pub fn for_mixed(dataset: Dataset) -> Self {
        Self::new(dataset, graph::FBNET_NODES, tokens::MAX_SEQUENCE_LEN)
    }

    /// Graph node count used by this cache.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Token sequence length used by this cache.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The dataset (input resolution) AF features are extracted at.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The encoding of `arch`, computed on first use.
    ///
    /// Returned behind an [`Arc`] so repeat lookups (every training batch,
    /// every MOEA generation) share one materialised encoding instead of
    /// deep-cloning matrices and token buffers.
    pub fn encoding(&self, arch: &Architecture) -> Arc<CachedEncoding> {
        let key = (arch.space(), arch.index());
        if let Some(hit) = self.entries.lock().get(&key) {
            return Arc::clone(hit);
        }
        let enc = self.build(arch);
        self.entries.lock().insert(key, Arc::clone(&enc));
        enc
    }

    /// The encodings of a whole batch under **one** cache lock.
    ///
    /// The inference hot loop looks up every architecture of every chunk;
    /// taking the entries lock (and paying its fence) per architecture
    /// showed up as a top-three cost in the frozen sweep profile. The
    /// batch form locks once for the warm all-hits case (allocation-free
    /// when `out` keeps its capacity); any miss falls back to the
    /// per-architecture path, which happens at most once per architecture
    /// ever.
    pub fn encodings_into(&self, archs: &[Architecture], out: &mut Vec<Arc<CachedEncoding>>) {
        out.clear();
        out.reserve(archs.len());
        {
            let entries = self.entries.lock();
            for arch in archs {
                match entries.get(&(arch.space(), arch.index())) {
                    Some(hit) => out.push(Arc::clone(hit)),
                    None => break,
                }
            }
        }
        if out.len() == archs.len() {
            return;
        }
        // cold path: at least one architecture has never been encoded
        out.clear();
        out.extend(archs.iter().map(|a| self.encoding(a)));
    }

    fn build(&self, arch: &Architecture) -> Arc<CachedEncoding> {
        let graph = graph::encode_padded(arch, self.nodes);
        let mut agg = Matrix::zeros(self.nodes, graph.features.cols());
        graph
            .features
            .block_left_matmul_each_into(1, self.nodes, |_| &graph.adjacency, &mut agg)
            .expect("encoding shapes are cache-consistent");
        Arc::new(CachedEncoding {
            graph,
            tokens: tokens::padded_tokens(arch, self.seq_len),
            af: ArchFeatures::extract(arch, self.dataset).to_vec(),
            agg,
        })
    }

    /// Number of memoised architectures.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::SimBenchConfig;

    fn bench() -> SimBench {
        SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(24),
            seed: 1,
        })
    }

    #[test]
    fn dataset_from_simbench() {
        let ds =
            SurrogateDataset::from_simbench(&bench(), Dataset::Cifar10, Platform::EdgeGpu).unwrap();
        assert_eq!(ds.len(), 24);
        assert_eq!(ds.dataset(), Dataset::Cifar10);
        assert_eq!(ds.platform(), Platform::EdgeGpu);
        assert!(ds.max_latency() > 0.0);
        let s = &ds.samples()[0];
        assert_eq!(s.objectives().len(), 2);
        assert_eq!(s.objectives3().len(), 3);
        assert!((s.objectives()[0] - (100.0 - s.accuracy)).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_samples() {
        let ds =
            SurrogateDataset::from_simbench(&bench(), Dataset::Cifar10, Platform::Pixel3).unwrap();
        let (train, val) = ds.split(0.25, 0).unwrap();
        assert_eq!(train.len() + val.len(), 24);
        assert_eq!(val.len(), 6);
        assert!(ds.split(0.0, 0).is_err());
    }

    #[test]
    fn empty_sources_rejected() {
        assert!(SurrogateDataset::from_entries(&[], Dataset::Cifar10, Platform::EdgeGpu).is_err());
        assert!(
            SurrogateDataset::from_samples(vec![], Dataset::Cifar10, Platform::EdgeGpu).is_err()
        );
    }

    #[test]
    fn cache_memoises() {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let arch = Architecture::nb201_from_index(11).unwrap();
        assert!(cache.is_empty());
        let a = cache.encoding(&arch);
        let b = cache.encoding(&arch);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.tokens.len(), 6);
        assert_eq!(a.graph.node_count(), graph::NB201_NODES);
        assert_eq!(a.af.len(), hwpr_nasbench::features::ARCH_FEATURE_DIM);
    }

    #[test]
    fn mixed_cache_pads_both_spaces() {
        let cache = EncodingCache::for_mixed(Dataset::Cifar100);
        let nb = Architecture::nb201_from_index(0).unwrap();
        let enc = cache.encoding(&nb);
        assert_eq!(enc.graph.node_count(), graph::FBNET_NODES);
        assert_eq!(enc.tokens.len(), tokens::MAX_SEQUENCE_LEN);
        assert_eq!(cache.nodes(), graph::FBNET_NODES);
        assert_eq!(cache.seq_len(), 22);
        assert_eq!(cache.dataset(), Dataset::Cifar100);
    }
}
