//! Search algorithms for the HW-PR-NAS reproduction.
//!
//! Implements the paper's two search baselines (§IV-C1):
//!
//! - [`random_search`] — uniform sampling from the space, ranked by the
//!   chosen evaluator;
//! - [`Moea`] — the multi-objective evolutionary algorithm of
//!   Algorithm 1: tournament parent selection, crossover + mutation
//!   (rate 0.9), elitist survivor selection over `P_t ∪ Q_t`, population
//!   150, 250 generations, 24-hour budget.
//!
//! Three [`Evaluator`]s mirror the paper's comparison:
//!
//! - [`MeasuredEvaluator`] — true benchmark values; charges simulated
//!   measurement time against the budget (the paper's "Measured Values"),
//! - [`ScoreEvaluator`] — the HW-PR-NAS Pareto score (one call per
//!   architecture, elitist top-k selection),
//! - [`PairEvaluator`] — two per-objective surrogates (BRP-NAS/GATES
//!   style; two calls per architecture plus non-dominated sorting in the
//!   selection step).
//!
//! [`IslandSearch`] scales the MOEA across parallel islands with ring
//! migration, a global Pareto archive, deterministic replay at any
//! worker-lane count, and checkpoint/resume (see the [`island`] module
//! docs).

#![warn(missing_docs)]
mod channel;
mod clock;
mod evaluator;
pub mod island;
mod moea;
mod random;
mod rng;
mod telemetry;

pub use channel::MigrationChannel;
pub use clock::SearchClock;
pub use evaluator::{
    evaluation_threads, share_objectives, CacheEntry, Evaluator, Fitness, HwPrNasEvaluator,
    MeasuredEvaluator, PairEvaluator, ScoreCache, ScoreEvaluator, ScoreFn, SharedObjectives,
};
pub use island::{
    ArchiveMember, FitnessKind, IslandConfig, IslandSearch, IslandSearchResult, SearchSnapshot,
};
pub use moea::{GenerationStats, Moea, MoeaConfig, SearchResult};
pub use random::{random_search, RandomSearchConfig};
pub use rng::SplitMix64;

use std::error::Error;
use std::fmt;

/// Error produced by search runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The surrogate model failed to evaluate a batch.
    Surrogate(String),
    /// The configuration is unusable (zero population, no spaces, ...).
    Config(String),
    /// Multi-objective machinery failed (degenerate objectives).
    Moo(hwpr_moo::MooError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Surrogate(msg) => write!(f, "surrogate evaluation failed: {msg}"),
            SearchError::Config(msg) => write!(f, "invalid search configuration: {msg}"),
            SearchError::Moo(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Moo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hwpr_moo::MooError> for SearchError {
    fn from(e: hwpr_moo::MooError) -> Self {
        SearchError::Moo(e)
    }
}

impl From<hwpr_core::CoreError> for SearchError {
    fn from(e: hwpr_core::CoreError) -> Self {
        SearchError::Surrogate(e.to_string())
    }
}

/// Convenience alias for fallible search operations.
pub type Result<T> = std::result::Result<T, SearchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        let e: SearchError = hwpr_moo::MooError::EmptySet.into();
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        let e = SearchError::Config("pop 0".into());
        assert!(e.to_string().contains("pop 0"));
        let e: SearchError = hwpr_core::CoreError::Data("d".into()).into();
        assert!(e.to_string().contains('d'));
    }
}
