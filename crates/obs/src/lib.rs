//! Zero-overhead structured telemetry for the HW-PR-NAS workspace.
//!
//! The crate provides three primitives behind one process-global switch:
//!
//! - **Spans** ([`span`]) — hierarchical, monotonically timed regions
//!   ("search.moea" contains "search.generation" contains the evaluator
//!   call), emitted as start/end event pairs. Fan-outs stay connected
//!   across threads through explicit [`SpanContext`] propagation
//!   ([`current_context`] → [`span_with_parent`]); the whole process
//!   shares one [`trace_id`], and the [`trace`] module renders a capture
//!   as a Chrome Trace Event file, a self-time-attributed span tree or
//!   folded flamegraph stacks.
//! - **Metrics** ([`metrics`]) — typed counters, gauges and histograms in
//!   a process-global [`metrics::Registry`]; instrumented subsystems hold
//!   `Arc` handles and the registry can snapshot every live metric into
//!   the event stream.
//! - **Events** ([`Event`]) — a JSON-lines record stream behind the
//!   [`Recorder`] trait ([`sink::JsonlSink`] writes to a file or stderr);
//!   free-form [`Event::Record`] rows carry per-epoch training metrics
//!   and per-generation search metrics.
//!
//! # Overhead model
//!
//! Telemetry is off until a [`Recorder`] is installed. Every
//! instrumentation point is gated on [`enabled`], a single relaxed atomic
//! load, so a disabled instrumentation point costs one predictable branch
//! and performs **no heap allocation** — the property the `alloc-count`
//! harness in `hwpr-bench` asserts for the training hot path. With a
//! recorder installed, instrumentation points may allocate (event
//! construction, JSON encoding); the `telemetry_overhead` bench bounds
//! that cost.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(hwpr_obs::sink::MemorySink::new());
//! hwpr_obs::install(sink.clone());
//! {
//!     let _outer = hwpr_obs::span("demo.outer");
//!     let _inner = hwpr_obs::span("demo.inner");
//! }
//! hwpr_obs::warn("something odd");
//! hwpr_obs::shutdown();
//! assert_eq!(sink.events().len(), 5); // 2 starts, 2 ends, 1 warning
//! ```
//!
//! Run-level wiring goes through [`TelemetrySpec`], which parses the
//! `HWPR_TELEMETRY` environment variable (`jsonl:PATH`, `stderr`, `off`).

#![warn(missing_docs)]

pub mod benchdiff;
pub mod config;
pub mod event;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;

pub use config::{env_or_else, init_from_env, spec_or, TelemetrySpec};
pub use event::Event;
pub use serde::Value;
pub use sink::Recorder;
pub use span::{
    current_context, span, span_labeled, span_labeled_with, span_with_parent,
    span_with_parent_labeled, thread_id, Span, SpanContext,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Process-global on/off switch, mirrored from "a recorder is installed".
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a recorder is installed. One relaxed atomic load — this is the
/// branch every instrumentation point pays when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn recorder_slot() -> &'static RwLock<Option<Arc<dyn Recorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The process-wide event timeline origin; every event timestamp is
/// microseconds since this instant ([`Instant`] is monotonic, so event
/// times never run backwards).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process telemetry epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The process-wide trace id: every span this process emits belongs to
/// one logical trace, identified by this value. Fixed for the process
/// lifetime; derived from wall clock and pid (then bit-mixed) so two runs
/// practically never collide, and never 0.
pub fn trace_id() -> u64 {
    static TRACE_ID: OnceLock<u64> = OnceLock::new();
    *TRACE_ID.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        // splitmix64 finalizer spreads the timestamp/pid bits
        let mut z = nanos ^ ((std::process::id() as u64) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)).max(1)
    })
}

/// Emits the run-identifying `trace.meta` record (trace id + pid). Called
/// by [`TelemetrySpec::install`] right after the sink goes live so every
/// JSONL capture opens with it; trace exporters read it back into the
/// exported trace's metadata. A no-op when telemetry is off.
pub fn emit_run_metadata() {
    record_with("trace.meta", || {
        vec![
            field("trace_id", format!("{:016x}", trace_id())),
            field("pid", std::process::id() as u64),
        ]
    });
}

/// Installs `recorder` as the process-global event sink and turns
/// telemetry on. Replaces (and flushes) any previous recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    epoch(); // pin the timeline origin before the first event
    let previous = recorder_slot()
        .write()
        .expect("recorder lock poisoned")
        .replace(recorder);
    ENABLED.store(true, Ordering::SeqCst);
    if let Some(prev) = previous {
        prev.flush();
    }
}

/// Removes the installed recorder (flushing it) and turns telemetry off.
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    let previous = recorder_slot()
        .write()
        .expect("recorder lock poisoned")
        .take();
    if let Some(prev) = previous {
        prev.flush();
    }
}

/// Flushes the installed recorder, if any.
pub fn flush() {
    if let Some(recorder) = recorder_slot()
        .read()
        .expect("recorder lock poisoned")
        .as_ref()
    {
        recorder.flush();
    }
}

/// Hands `event` to the installed recorder. A no-op (one relaxed load)
/// when telemetry is off.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = recorder_slot()
        .read()
        .expect("recorder lock poisoned")
        .as_ref()
    {
        recorder.record(&event);
    }
}

/// Emits a [`Event::Warn`] when telemetry is on; otherwise prints the
/// warning to stderr so it is never silently dropped.
pub fn warn(message: impl Into<String>) {
    let message = message.into();
    if enabled() {
        emit(Event::Warn {
            t_us: now_us(),
            message,
        });
    } else {
        eprintln!("[hwpr warn] {message}");
    }
}

/// Emits a free-form [`Event::Record`] named `name`; `fields` is only
/// evaluated when telemetry is on, so call sites can defer all field
/// construction (and its allocation) behind the enabled branch.
pub fn record_with(name: &str, fields: impl FnOnce() -> Vec<(String, serde::Value)>) {
    if !enabled() {
        return;
    }
    emit(Event::Record {
        name: name.to_string(),
        t_us: now_us(),
        fields: fields(),
    });
}

/// Builds a `(key, value)` record field from anything serialisable.
pub fn field(key: &str, value: impl serde::Serialize) -> (String, serde::Value) {
    (key.to_string(), value.serialize_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_is_inert() {
        // other tests in this binary install recorders behind a lock; this
        // one only checks that emitting without a recorder never panics
        emit(Event::Warn {
            t_us: 0,
            message: "dropped".into(),
        });
        flush();
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn field_serialises_primitives() {
        assert_eq!(field("x", 3u64), ("x".to_string(), serde::Value::UInt(3)));
        assert_eq!(
            field("y", 0.5f64),
            ("y".to_string(), serde::Value::Float(0.5))
        );
    }
}
