//! Branch-free, **division-free** `tanh`/`sigmoid` for the fused kernels.
//!
//! `f32::tanh` and `f32::exp` lower to scalar libm calls the
//! auto-vectoriser cannot touch; in the fused LSTM gate pass they cost
//! more than the gate GEMM itself. The first replacement (PR 2) was a
//! clamped degree-13/6 rational whose single `p / q` divide vectorised —
//! but `vdivps` on a 512-bit vector is not pipelined (one result every
//! ~16 cycles on Skylake-X against two FMAs per cycle), and once the
//! frozen engine's GEMMs were batched and quantised (PR 6) that divide
//! became the dominant term of the inference profile.
//!
//! [`fast_tanh`] therefore evaluates the same minimax rational but
//! replaces the divide with a Newton–Raphson reciprocal (SLEEF lineage):
//! a bit-trick seed refined by three multiply/subtract iterations, which
//! converges to within ~2 ULP of the exactly rounded quotient. Every
//! operation is a multiply, add or integer subtract, so a whole
//! activation panel compiles to full-width FMA chains with no `vdivps`
//! and no libm edge. Maximum absolute error stays below `1e-6` over the
//! full range (the unit tests sweep it at `1e-3` steps), far inside the
//! tolerance of the gradchecks and the fused-vs-reference differentials.
//!
//! [`fast_tanh_block`]/[`fast_sigmoid_block`] apply the same scalar to a
//! whole slice — the `[batch, width]` activation panels the frozen
//! engine stages — guaranteeing the vectorisable loop shape regardless
//! of how the caller iterates rows. Block and scalar forms are
//! bit-identical lane for lane (tested).
//!
//! The retired rational-divide forms live on as
//! [`crate::reference::rational_tanh`]/[`rational_sigmoid`]
//! (ground truth for the differential tests), and the true libm ops
//! (`Tape::tanh`, `Tape::sigmoid`, [`crate::reference`]) remain the
//! accuracy anchor.
//!
//! [`rational_sigmoid`]: crate::reference::rational_sigmoid

/// Reciprocal of a strictly positive, normal `d` without a divide:
/// bit-trick seed (max relative error ~0.05) plus three Newton–Raphson
/// steps (`y ← y·(2 − d·y)` squares the error: 5e-2 → 2.5e-3 → 6e-6 →
/// ~4e-11, below f32 rounding). NaN propagates through the `d · y`
/// products.
///
/// Only sound for the range it is used on: the tanh denominator `q` is
/// an even polynomial with all-positive coefficients, bounded to
/// `[4.89e-3, 0.38]` by the clamp, where the seed constant is valid.
#[inline(always)]
fn recip_positive(d: f32) -> f32 {
    let y = f32::from_bits(0x7EF3_11C3u32.wrapping_sub(d.to_bits()));
    let y = y * (2.0 - d * y);
    let y = y * (2.0 - d * y);
    y * (2.0 - d * y)
}

/// `tanh(x)` as a degree-13/6 rational approximation on the clamped
/// range `|x| <= 7.90531` (beyond which `tanh` saturates to `±1` in
/// f32), evaluated without a divide. Coefficients are the widely used
/// minimax set (Eigen/XNNPACK lineage); the quotient comes from
/// [`recip_positive`] instead of `vdivps`.
#[inline(always)]
pub fn fast_tanh(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_31;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619e-4;
    p = p * x2 + 4.893_524_6e-3;
    p *= x;
    let mut q = 1.198_258_4e-6;
    q = q * x2 + 1.185_347_1e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525e-3;
    p * recip_positive(q)
}

/// `1 / (1 + exp(-x))` via the tanh identity
/// `sigmoid(x) = (1 + tanh(x / 2)) / 2` — the pre-scale and the affine
/// are exact (powers of two), so this inherits [`fast_tanh`]'s
/// division-free arithmetic and sub-`1e-6` absolute error.
#[inline(always)]
pub fn fast_sigmoid(x: f32) -> f32 {
    0.5 + 0.5 * fast_tanh(0.5 * x)
}

/// [`fast_tanh`] over a whole activation panel in place. The loop body
/// is branch-free scalar arithmetic, so the compiler unrolls it into
/// full-width FMA chains; each lane is bit-identical to the scalar call.
pub fn fast_tanh_block(xs: &mut [f32]) {
    for x in xs {
        *x = fast_tanh(*x);
    }
}

/// [`fast_sigmoid`] over a whole activation panel in place; each lane is
/// bit-identical to the scalar call.
pub fn fast_sigmoid_block(xs: &mut [f32]) {
    for x in xs {
        *x = fast_sigmoid(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            worst = worst.max((fast_tanh(x) - x.tanh()).abs());
            x += 1e-3;
        }
        assert!(worst < 1e-6, "max |fast_tanh - tanh| = {worst}");
    }

    #[test]
    fn sigmoid_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let exact = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((fast_sigmoid(x) - exact).abs());
            x += 1e-3;
        }
        assert!(worst < 1e-6, "max |fast_sigmoid - sigmoid| = {worst}");
    }

    #[test]
    fn matches_the_retired_rational_form() {
        // the Newton reciprocal replaces an exactly rounded divide, so
        // the division-free form may differ from the rational by a few
        // ULPs but no more
        let mut x = -12.0f32;
        while x <= 12.0 {
            let df = fast_tanh(x);
            let rational = crate::reference::rational_tanh(x);
            assert!(
                (df - rational).abs() <= 5e-7,
                "fast_tanh({x}) = {df} vs rational {rational}"
            );
            x += 1e-3;
        }
    }

    #[test]
    fn saturates_cleanly() {
        // the clamped rational lands within an ULP of the saturation
        // values rather than exactly on them
        assert!((fast_tanh(40.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-40.0) + 1.0).abs() < 1e-6);
        assert!((fast_sigmoid(40.0) - 1.0).abs() < 1e-6);
        assert!(fast_sigmoid(-40.0).abs() < 1e-6);
        assert!((fast_tanh(f32::INFINITY) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(f32::NEG_INFINITY) + 1.0).abs() < 1e-6);
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
    }

    #[test]
    fn propagates_nan() {
        assert!(fast_tanh(f32::NAN).is_nan());
        assert!(fast_sigmoid(f32::NAN).is_nan());
    }

    #[test]
    fn preserves_signed_zero_and_subnormals() {
        assert_eq!(fast_tanh(0.0f32).to_bits(), 0.0f32.to_bits());
        assert_eq!(fast_tanh(-0.0f32).to_bits(), (-0.0f32).to_bits());
        // near the origin tanh(x) ≈ x: subnormal inputs must come back
        // finite, sign-correct and tiny (the polynomial degenerates to
        // p0·x with p0/q0 ≈ 1)
        for &x in &[f32::MIN_POSITIVE / 2.0, 1.0e-40, -1.0e-40, 1.0e-44] {
            let y = fast_tanh(x);
            assert!(y.is_finite(), "fast_tanh({x:e}) = {y}");
            // the p0/q0 ratio is within a few ULPs of one, so the result
            // tracks x itself up to reciprocal rounding noise
            assert!(y.abs() <= x.abs() * 1.001, "fast_tanh({x:e}) = {y:e} grew");
            assert_eq!(
                y.is_sign_negative(),
                x.is_sign_negative(),
                "sign flipped at {x:e}"
            );
        }
    }

    #[test]
    fn monotone_on_the_active_range() {
        // tanh is strictly increasing; the approximation must be
        // monotone across [-8, 8] up to its own rounding noise. The
        // Newton reciprocal jitters each sample by a few ULPs of the
        // quotient, so adjacent 1e-3 steps may tie or dip by less than
        // the approximation's own error bound — but never walk
        // backwards by a visible amount.
        let mut x = -8.0f32;
        let mut prev = fast_tanh(x);
        while x <= 8.0 {
            x += 1e-3;
            let y = fast_tanh(x);
            assert!(
                y >= prev - 1e-6,
                "fast_tanh not monotone at {x}: {y} < {prev}"
            );
            prev = y.max(prev);
        }
    }

    #[test]
    fn block_forms_are_bit_identical_to_scalar() {
        let xs: Vec<f32> = (0..4097)
            .map(|i| (i as f32 - 2048.0) * 4.0e-3)
            .chain([f32::NAN, 0.0, -0.0, 17.0, -17.0, 1.0e-40])
            .collect();
        let mut t = xs.clone();
        fast_tanh_block(&mut t);
        for (&x, &y) in xs.iter().zip(&t) {
            assert_eq!(y.to_bits(), fast_tanh(x).to_bits(), "tanh lane at {x}");
        }
        let mut s = xs.clone();
        fast_sigmoid_block(&mut s);
        for (&x, &y) in xs.iter().zip(&s) {
            assert_eq!(
                y.to_bits(),
                fast_sigmoid(x).to_bits(),
                "sigmoid lane at {x}"
            );
        }
    }
}
