//! The scalable ≥3-objective variant of HW-PR-NAS (§III-F, Fig. 5).
//!
//! All three encodings (AF ++ GNN ++ LSTM) are concatenated and a single
//! MLP predicts the Pareto score directly, without per-objective branch
//! predictions. Adding a new objective (e.g. energy) only requires
//! fine-tuning the MLP for five epochs with the encoders frozen.

use crate::config::{ModelConfig, TrainConfig};
use crate::data::{EncodingCache, SurrogateDataset};
use crate::encoders::{EncoderChoice, EncoderSet};
use crate::Result;
use hwpr_autograd::Tape;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::Architecture;
use hwpr_nn::batch::shuffled_batches;
use hwpr_nn::layers::{LayerRng, Mlp, MlpConfig};
use hwpr_nn::optim::{AdamW, CosineAnnealing, Optimizer};
use hwpr_nn::{Binder, Params};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;

/// The scalable HW-PR-NAS: concatenated encoders + a single score MLP.
#[derive(Debug)]
pub struct ScalableHwPrNas {
    params: Params,
    encoder: EncoderSet,
    head: Mlp,
    cache: EncodingCache,
    /// Number of parameters registered before the head (everything below
    /// this watermark is frozen during fine-tuning).
    encoder_param_count: usize,
    objectives: usize,
}

impl ScalableHwPrNas {
    /// Trains the scalable model on two objectives (error, latency).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on data or training failures.
    pub fn fit(
        data: &SurrogateDataset,
        model_config: &ModelConfig,
        train_config: &TrainConfig,
    ) -> Result<Self> {
        let space = data.samples()[0].arch.space();
        let cache = EncodingCache::for_space(space, data.dataset());
        let train_archs: Vec<Architecture> =
            data.samples().iter().map(|s| s.arch.clone()).collect();
        let mut params = Params::new();
        let encoder = EncoderSet::new(
            &mut params,
            "enc",
            model_config,
            EncoderChoice::ALL,
            &cache,
            &train_archs,
        )?;
        let encoder_param_count = params.len();
        let head = Mlp::new(
            &mut params,
            "score_head",
            &MlpConfig {
                input_dim: encoder.output_dim(),
                hidden: model_config.mlp_hidden.clone(),
                output_dim: 1,
                activation: Default::default(),
                dropout: model_config.dropout,
                seed: model_config.seed.wrapping_add(77),
            },
        )?;
        let mut model = Self {
            params,
            encoder,
            head,
            cache,
            encoder_param_count,
            objectives: 2,
        };
        let objectives: Vec<Vec<f64>> = data.samples().iter().map(|s| s.objectives()).collect();
        model.train_ranking(data, &objectives, train_config, false)?;
        Ok(model)
    }

    /// Extends the model to three objectives (error, latency, energy) by
    /// fine-tuning **only the MLP head** for `epochs` epochs (the paper
    /// uses five) with frozen encoders.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on data or training failures.
    pub fn extend_to_three_objectives(
        &mut self,
        data: &SurrogateDataset,
        epochs: usize,
        seed: u64,
    ) -> Result<()> {
        let objectives: Vec<Vec<f64>> = data.samples().iter().map(|s| s.objectives3()).collect();
        let mut config = TrainConfig::fast();
        config.epochs = epochs;
        config.seed = seed;
        self.train_ranking(data, &objectives, &config, true)?;
        self.objectives = 3;
        Ok(())
    }

    /// Number of objectives the model currently ranks by.
    pub fn objectives(&self) -> usize {
        self.objectives
    }

    /// Pareto scores (higher = more dominant).
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn predict_scores(&self, archs: &[Architecture]) -> Result<Vec<f64>> {
        let mut rng = LayerRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(archs.len());
        for chunk in archs.chunks(crate::model::infer_batch()) {
            let mut tape = Tape::new();
            let mut binder = Binder::new(&mut tape, &self.params);
            let repr = self
                .encoder
                .forward(&mut binder, &self.cache, chunk, &mut rng)?;
            let score = self.head.forward(&mut binder, repr, &mut rng)?;
            out.extend(tape.value(score).as_slice().iter().map(|&v| v as f64));
        }
        Ok(out)
    }

    /// Listwise ranking training over arbitrary objective vectors; when
    /// `freeze_encoders` is set, gradients below the parameter watermark
    /// are dropped so only the head moves.
    fn train_ranking(
        &mut self,
        data: &SurrogateDataset,
        objectives: &[Vec<f64>],
        config: &TrainConfig,
        freeze_encoders: bool,
    ) -> Result<()> {
        let samples = data.samples();
        let mut optimizer = AdamW::new(config.learning_rate).with_weight_decay(config.weight_decay);
        let schedule = CosineAnnealing::new(
            config.learning_rate,
            config.learning_rate * 0.01,
            config.epochs,
        );
        let mut rng = LayerRng::seed_from_u64(config.seed);
        // reused across every batch's Pareto ranking
        let mut moo = MooWorkspace::new();
        for epoch in 0..config.epochs {
            optimizer.set_learning_rate(schedule.learning_rate_at(epoch));
            let batches = shuffled_batches(
                samples.len(),
                config.batch_size,
                config.seed.wrapping_add(epoch as u64),
            );
            for batch in &batches {
                if batch.len() < 2 {
                    continue;
                }
                let archs: Vec<Architecture> =
                    batch.iter().map(|&i| samples[i].arch.clone()).collect();
                let batch_objs: Vec<Vec<f64>> =
                    batch.iter().map(|&i| objectives[i].clone()).collect();
                let ranks = moo.pareto_ranks(&batch_objs)?;
                let mut order: Vec<usize> = (0..batch.len()).collect();
                order.shuffle(&mut rng);
                order.sort_by_key(|&i| ranks[i]);
                let mut tape = Tape::new();
                let mut binder = Binder::for_training(&mut tape, &self.params);
                let repr = self
                    .encoder
                    .forward(&mut binder, &self.cache, &archs, &mut rng)?;
                let score = self.head.forward(&mut binder, repr, &mut rng)?;
                let tape_ref = binder.tape();
                let loss = tape_ref.list_mle(score, &order)?;
                let loss = tape_ref.scale(loss, 1.0 / batch.len() as f32);
                let mut grads = binder.finish(loss)?;
                if freeze_encoders {
                    for g in grads.iter_mut().take(self.encoder_param_count) {
                        *g = None;
                    }
                }
                optimizer.step(&mut self.params, &grads);
            }
        }
        Ok(())
    }

    #[cfg(test)]
    pub(crate) fn encoder_snapshot(&self) -> Vec<hwpr_tensor::Matrix> {
        self.params
            .ids()
            .into_iter()
            .take(self.encoder_param_count)
            .map(|id| self.params.get(id).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
    use hwpr_nasbench::{Dataset, SearchSpaceId};

    fn data(n: usize) -> SurrogateDataset {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(n),
            seed: 6,
        });
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap()
    }

    #[test]
    fn fit_and_score() {
        let d = data(48);
        let model = ScalableHwPrNas::fit(&d, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        assert_eq!(model.objectives(), 2);
        let archs: Vec<Architecture> = d.samples().iter().take(5).map(|s| s.arch.clone()).collect();
        let scores = model.predict_scores(&archs).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn fine_tune_freezes_encoders() {
        let d = data(48);
        let mut model =
            ScalableHwPrNas::fit(&d, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let before = model.encoder_snapshot();
        model.extend_to_three_objectives(&d, 2, 0).unwrap();
        let after = model.encoder_snapshot();
        assert_eq!(before, after, "encoder parameters moved during fine-tune");
        assert_eq!(model.objectives(), 3);
        // scores still computable
        let archs = vec![d.samples()[0].arch.clone()];
        assert!(model.predict_scores(&archs).is_ok());
    }
}
