//! A single regression tree trained on gradient/hessian statistics.

use crate::binning::FeatureBins;
use crate::boosting::GrowthStrategy;
use serde::{Deserialize, Serialize};

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Growth strategy (level-wise depth budget or leaf-wise leaf budget).
    pub growth: GrowthStrategy,
    /// L2 regularisation on leaf weights (XGBoost's λ).
    pub lambda: f32,
    /// Minimum gain required to keep a split (XGBoost's γ).
    pub min_gain: f32,
    /// Minimum number of samples on each side of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            growth: GrowthStrategy::LevelWise { max_depth: 6 },
            lambda: 1.0,
            min_gain: 0.0,
            min_samples_leaf: 2,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        weight: f32,
    },
}

/// A trained regression tree; predictions are leaf weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    total_gain: Vec<f64>,
}

struct SplitCandidate {
    gain: f64,
    feature: usize,
    threshold: f32,
    left_rows: Vec<usize>,
    right_rows: Vec<usize>,
}

/// A leaf awaiting expansion during growth.
struct OpenLeaf {
    node: usize,
    rows: Vec<usize>,
    depth: usize,
}

impl RegressionTree {
    /// Fits a tree to gradient statistics `grad`/`hess` over the rows
    /// listed in `rows` (hessian is 1 for squared loss; the general form
    /// supports other losses).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or statistics lengths disagree with the
    /// dataset.
    pub fn fit(
        data: &[Vec<f32>],
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        bins: &FeatureBins,
        config: &TreeConfig,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(data.len(), grad.len(), "grad length mismatch");
        assert_eq!(data.len(), hess.len(), "hess length mismatch");
        let mut tree = Self {
            nodes: Vec::new(),
            total_gain: vec![0.0; bins.features()],
        };
        let root_weight = leaf_weight(grad, hess, rows, config.lambda);
        tree.nodes.push(Node::Leaf {
            weight: root_weight,
        });
        let root = OpenLeaf {
            node: 0,
            rows: rows.to_vec(),
            depth: 0,
        };
        match config.growth {
            GrowthStrategy::LevelWise { max_depth } => {
                tree.grow_level_wise(data, grad, hess, bins, config, root, max_depth);
            }
            GrowthStrategy::LeafWise { max_leaves } => {
                tree.grow_leaf_wise(data, grad, hess, bins, config, root, max_leaves);
            }
        }
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_level_wise(
        &mut self,
        data: &[Vec<f32>],
        grad: &[f32],
        hess: &[f32],
        bins: &FeatureBins,
        config: &TreeConfig,
        root: OpenLeaf,
        max_depth: usize,
    ) {
        let mut frontier = vec![root];
        while let Some(leaf) = frontier.pop() {
            if leaf.depth >= max_depth {
                continue;
            }
            if let Some((left, right)) = self.try_split(data, grad, hess, bins, config, &leaf) {
                frontier.push(left);
                frontier.push(right);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_leaf_wise(
        &mut self,
        data: &[Vec<f32>],
        grad: &[f32],
        hess: &[f32],
        bins: &FeatureBins,
        config: &TreeConfig,
        root: OpenLeaf,
        max_leaves: usize,
    ) {
        // best-first expansion: keep splitting the leaf with the highest gain
        let mut leaves = 1usize;
        let mut open = vec![root];
        while leaves < max_leaves && !open.is_empty() {
            // find the openable leaf with the best candidate split
            let mut best: Option<(usize, SplitCandidate)> = None;
            for (i, leaf) in open.iter().enumerate() {
                if let Some(cand) = best_split(data, grad, hess, bins, config, &leaf.rows) {
                    if best.as_ref().is_none_or(|(_, b)| cand.gain > b.gain) {
                        best = Some((i, cand));
                    }
                }
            }
            let Some((i, cand)) = best else { break };
            let leaf = open.swap_remove(i);
            let (left, right) = self.apply_split(grad, hess, config, &leaf, cand);
            open.push(left);
            open.push(right);
            leaves += 1;
        }
    }

    /// Attempts the best split of `leaf`; on success rewrites the leaf node
    /// into a split and returns the two children as open leaves.
    fn try_split(
        &mut self,
        data: &[Vec<f32>],
        grad: &[f32],
        hess: &[f32],
        bins: &FeatureBins,
        config: &TreeConfig,
        leaf: &OpenLeaf,
    ) -> Option<(OpenLeaf, OpenLeaf)> {
        let cand = best_split(data, grad, hess, bins, config, &leaf.rows)?;
        Some(self.apply_split(grad, hess, config, leaf, cand))
    }

    fn apply_split(
        &mut self,
        grad: &[f32],
        hess: &[f32],
        config: &TreeConfig,
        leaf: &OpenLeaf,
        cand: SplitCandidate,
    ) -> (OpenLeaf, OpenLeaf) {
        self.total_gain[cand.feature] += cand.gain;
        let left_weight = leaf_weight(grad, hess, &cand.left_rows, config.lambda);
        let right_weight = leaf_weight(grad, hess, &cand.right_rows, config.lambda);
        let left_id = self.nodes.len();
        self.nodes.push(Node::Leaf {
            weight: left_weight,
        });
        let right_id = self.nodes.len();
        self.nodes.push(Node::Leaf {
            weight: right_weight,
        });
        self.nodes[leaf.node] = Node::Split {
            feature: cand.feature,
            threshold: cand.threshold,
            left: left_id,
            right: right_id,
        };
        (
            OpenLeaf {
                node: left_id,
                rows: cand.left_rows,
                depth: leaf.depth + 1,
            },
            OpenLeaf {
                node: right_id,
                rows: cand.right_rows,
                depth: leaf.depth + 1,
            },
        )
    }

    /// Predicts the leaf weight for a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than a feature index used by the tree.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Total split gain attributed to each feature.
    pub fn feature_gain(&self) -> &[f64] {
        &self.total_gain
    }
}

fn leaf_weight(grad: &[f32], hess: &[f32], rows: &[usize], lambda: f32) -> f32 {
    let g: f64 = rows.iter().map(|&i| grad[i] as f64).sum();
    let h: f64 = rows.iter().map(|&i| hess[i] as f64).sum();
    (-g / (h + lambda as f64)) as f32
}

/// Finds the best histogram split of `rows`, if any split clears the
/// configured gain and leaf-size thresholds.
fn best_split(
    data: &[Vec<f32>],
    grad: &[f32],
    hess: &[f32],
    bins: &FeatureBins,
    config: &TreeConfig,
    rows: &[usize],
) -> Option<SplitCandidate> {
    if rows.len() < 2 * config.min_samples_leaf {
        return None;
    }
    let total_g: f64 = rows.iter().map(|&i| grad[i] as f64).sum();
    let total_h: f64 = rows.iter().map(|&i| hess[i] as f64).sum();
    let lambda = config.lambda as f64;
    let parent_score = total_g * total_g / (total_h + lambda);

    let mut best: Option<(f64, usize, f32)> = None;
    #[allow(clippy::needless_range_loop)] // `f` also indexes the data rows
    for f in 0..bins.features() {
        let edges = bins.thresholds(f);
        if edges.is_empty() {
            continue;
        }
        let nb = bins.bin_count(f);
        let mut hist_g = vec![0.0f64; nb];
        let mut hist_h = vec![0.0f64; nb];
        let mut hist_n = vec![0usize; nb];
        for &i in rows {
            let b = bins.bin_of(f, data[i][f]);
            hist_g[b] += grad[i] as f64;
            hist_h[b] += hess[i] as f64;
            hist_n[b] += 1;
        }
        let mut left_g = 0.0;
        let mut left_h = 0.0;
        let mut left_n = 0usize;
        for (b, &edge) in edges.iter().enumerate() {
            left_g += hist_g[b];
            left_h += hist_h[b];
            left_n += hist_n[b];
            let right_n = rows.len() - left_n;
            if left_n < config.min_samples_leaf || right_n < config.min_samples_leaf {
                continue;
            }
            let right_g = total_g - left_g;
            let right_h = total_h - left_h;
            let gain = 0.5
                * (left_g * left_g / (left_h + lambda) + right_g * right_g / (right_h + lambda)
                    - parent_score)
                - config.min_gain as f64;
            if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, edge));
            }
        }
    }
    let (gain, feature, threshold) = best?;
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&i| data[i][feature] <= threshold);
    Some(SplitCandidate {
        gain,
        feature,
        threshold,
        left_rows,
        right_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f32>>, Vec<f32>, Vec<f32>, Vec<usize>) {
        // target is a step function of x0
        let data: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i % 3) as f32]).collect();
        let targets: Vec<f32> = (0..40).map(|i| if i < 20 { -1.0 } else { 1.0 }).collect();
        // squared-loss stats with initial prediction 0
        let grad: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; 40];
        (data, grad, hess, (0..40).collect())
    }

    #[test]
    fn learns_step_function() {
        let (data, grad, hess, rows) = step_data();
        let bins = FeatureBins::from_rows(&data, 32);
        let tree = RegressionTree::fit(&data, &grad, &hess, &rows, &bins, &TreeConfig::default());
        assert!(tree.predict(&[5.0, 0.0]) < -0.8);
        assert!(tree.predict(&[35.0, 0.0]) > 0.8);
        // the informative feature gets all the gain
        assert!(tree.feature_gain()[0] > 0.0);
        assert_eq!(tree.feature_gain()[1], 0.0);
    }

    #[test]
    fn leaf_wise_respects_leaf_budget() {
        let (data, grad, hess, rows) = step_data();
        let bins = FeatureBins::from_rows(&data, 32);
        let config = TreeConfig {
            growth: GrowthStrategy::LeafWise { max_leaves: 4 },
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &grad, &hess, &rows, &bins, &config);
        assert!(tree.leaf_count() <= 4);
    }

    #[test]
    fn level_wise_depth_zero_is_single_leaf() {
        let (data, grad, hess, rows) = step_data();
        let bins = FeatureBins::from_rows(&data, 32);
        let config = TreeConfig {
            growth: GrowthStrategy::LevelWise { max_depth: 0 },
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &grad, &hess, &rows, &bins, &config);
        assert_eq!(tree.leaf_count(), 1);
        // root weight is -mean(grad)/(n+lambda) ≈ 0 here (balanced labels)
        assert!(tree.predict(&[0.0, 0.0]).abs() < 0.1);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0]];
        let grad = vec![-1.0, 0.0, 1.0];
        let hess = vec![1.0; 3];
        let bins = FeatureBins::from_rows(&data, 8);
        let config = TreeConfig {
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &grad, &hess, &[0, 1, 2], &bins, &config);
        // only one split is possible that leaves >= 2 on a side: none (3 rows)
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn constant_target_produces_stump() {
        let data: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let grad = vec![0.5f32; 10];
        let hess = vec![1.0f32; 10];
        let bins = FeatureBins::from_rows(&data, 8);
        let tree = RegressionTree::fit(
            &data,
            &grad,
            &hess,
            &(0..10).collect::<Vec<_>>(),
            &bins,
            &TreeConfig::default(),
        );
        assert_eq!(tree.leaf_count(), 1);
    }
}
