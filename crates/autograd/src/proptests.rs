//! Property-based tests for the ranking losses and core tape invariants.

use crate::tape::Tape;
use hwpr_tensor::Matrix;
use proptest::prelude::*;

fn scores_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, 2..12)
}

fn permutation_of(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    /// ListMLE is shift-invariant, so its score gradients must sum to 0:
    /// adding a constant to every score cannot change the loss.
    #[test]
    fn listmle_gradients_sum_to_zero(scores in scores_strategy()) {
        let n = scores.len();
        let order: Vec<usize> = (0..n).collect();
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&scores));
        let loss = tape.list_mle(s, &order).unwrap();
        tape.backward(loss).unwrap();
        let grad_sum: f32 = tape.grad(s).unwrap().as_slice().iter().sum();
        prop_assert!(grad_sum.abs() < 1e-4, "gradient sum {grad_sum}");
    }

    /// Shift invariance of the ListMLE value itself.
    #[test]
    fn listmle_value_is_shift_invariant(scores in scores_strategy(), shift in -3.0f32..3.0) {
        let n = scores.len();
        let order: Vec<usize> = (0..n).collect();
        let value = |v: &[f32]| {
            let mut tape = Tape::new();
            let s = tape.leaf(Matrix::col_vector(v));
            let l = tape.list_mle(s, &order).unwrap();
            tape.value(l)[(0, 0)]
        };
        let shifted: Vec<f32> = scores.iter().map(|x| x + shift).collect();
        let a = value(&scores);
        let b = value(&shifted);
        prop_assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "{a} vs {b}");
    }

    /// The pairwise hinge gradients also sum to zero (each active pair
    /// contributes +w to one score and -w to another).
    #[test]
    fn hinge_gradients_sum_to_zero(scores in scores_strategy()) {
        let n = scores.len();
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&scores));
        let loss = tape.pairwise_hinge(s, &pairs, 0.1).unwrap();
        tape.backward(loss).unwrap();
        if let Some(g) = tape.grad(s) {
            let sum: f32 = g.as_slice().iter().sum();
            prop_assert!(sum.abs() < 1e-5, "gradient sum {sum}");
        }
    }

    /// The best-first permutation minimises ListMLE over all permutations
    /// (checked against random permutations).
    #[test]
    fn sorted_order_minimises_listmle(
        scores in scores_strategy().prop_filter("distinct", |s| {
            let mut v = s.clone();
            v.sort_by(f32::total_cmp);
            v.windows(2).all(|w| w[1] - w[0] > 1e-3)
        }),
    ) {
        let n = scores.len();
        let mut best_first: Vec<usize> = (0..n).collect();
        best_first.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let value = |order: &[usize]| {
            let mut tape = Tape::new();
            let s = tape.leaf(Matrix::col_vector(&scores));
            let l = tape.list_mle(s, order).unwrap();
            tape.value(l)[(0, 0)]
        };
        let optimal = value(&best_first);
        // any rotation of the best order is no better
        let mut rotated = best_first.clone();
        rotated.rotate_left(1);
        prop_assert!(optimal <= value(&rotated) + 1e-5);
    }

    /// Backward through compositions never changes forward values.
    #[test]
    fn backward_does_not_mutate_values(data in proptest::collection::vec(-2.0f32..2.0, 4)) {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(2, 2, data.clone()).unwrap());
        let t = tape.tanh(x);
        let m = tape.mean_all(t);
        let before = tape.value(t).clone();
        tape.backward(m).unwrap();
        prop_assert_eq!(tape.value(t), &before);
    }
}

proptest! {
    /// Random permutations round-trip through the validator inside
    /// `list_mle` (any true permutation is accepted).
    #[test]
    fn valid_permutations_accepted(order in permutation_of(8)) {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[0.0; 8]));
        prop_assert!(tape.list_mle(s, &order).is_ok());
    }
}
