//! Regenerates Table IV (benchmark proportions in the final front).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::table4::run(&harness);
    hwpr_experiments::write_report("table4_proportions", &report);
}
