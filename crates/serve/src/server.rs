//! The blocking TCP runtime: one acceptor thread, one reader thread per
//! connection, and a pool of prediction workers draining the admission
//! queue. Everything is std-only (no async runtime): the workloads this
//! serves are compute-bound microsecond forwards, so thread-per-
//! connection readers + a shared worker pool is the simplest shape that
//! keeps the hot path allocation-free.

use crate::config::ServeConfig;
use crate::protocol::{
    self, DecodeError, RequestHead, MAX_FRAME, OP_LIST_MODELS, OP_PREDICT_OBJECTIVES,
    OP_PREDICT_SCORES, STATUS_ERROR, STATUS_OVERLOADED,
};
use crate::queue::{BatchQueue, Pending, ReplySink, WorkerState};
use crate::registry::{ModelRegistry, RegistryCache};
use crate::telemetry::metrics;
use crate::ServeError;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

struct Shared {
    registry: Arc<ModelRegistry>,
    queue: BatchQueue,
    shutdown: AtomicBool,
    /// Acceptor-side clones of live connections so `stop` can unblock
    /// reader threads parked in `read_frame`; keyed so a finished reader
    /// can drop its own entry.
    conns: parking_lot::Mutex<Vec<(u64, TcpStream)>>,
    next_conn: std::sync::atomic::AtomicU64,
    ctx: hwpr_obs::SpanContext,
}

/// A running prediction server bound to a local TCP port.
///
/// Dropping the server (or calling [`Server::stop`]) shuts down the
/// acceptor, drains the workers and closes every connection.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    _root: Option<hwpr_obs::Span>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds to an ephemeral loopback port and starts serving `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> crate::Result<Self> {
        Self::bind("127.0.0.1:0", registry, config)
    }

    /// Binds to `addr` and starts serving `registry`.
    pub fn bind(
        addr: &str,
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
    ) -> crate::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let root = hwpr_obs::span("serve.server");
        let ctx = root.context();
        let shared = Arc::new(Shared {
            registry,
            queue: BatchQueue::new(&config),
            shutdown: AtomicBool::new(false),
            conns: parking_lot::Mutex::new(Vec::new()),
            next_conn: std::sync::atomic::AtomicU64::new(1),
            ctx,
        });
        let mut workers = Vec::new();
        for i in 0..config.worker_count() {
            let shared = Arc::clone(&shared);
            let worker_config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hwpr-serve-worker-{i}"))
                    .spawn(move || {
                        let mut state = WorkerState::new(&worker_config, shared.ctx);
                        while state.run_once(&shared.queue) {}
                    })
                    .map_err(ServeError::Io)?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hwpr-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(ServeError::Io)?
        };
        Ok(Self {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers,
            _root: Some(root),
        })
    }

    /// The bound address (use this to connect a [`crate::ServeClient`]).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server resolves models from. Publishing to it
    /// hot-swaps what subsequent requests see.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Stops accepting, drains the workers and closes every connection.
    /// Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // the acceptor is parked in accept(): poke it with a throwaway
        // connection so it observes the shutdown flag
        let _ = TcpStream::connect(self.addr);
        self.shared.queue.shutdown();
        for (_, conn) in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                hwpr_obs::warn(format!("serve: accept failed: {e}"));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push((conn_id, clone));
        }
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hwpr-serve-conn".to_string())
            .spawn(move || {
                handle_conn(&stream, &shared);
                // close the socket even though `conns` still holds a
                // clone — a peer mid-write must see the connection die,
                // not block against a full buffer nobody drains
                let _ = stream.shutdown(Shutdown::Both);
                shared.conns.lock().retain(|(id, _)| *id != conn_id);
            });
        if let Err(e) = spawned {
            hwpr_obs::warn(format!("serve: could not spawn connection thread: {e}"));
        }
    }
}

/// The write half of a connection, shared by every worker that owes this
/// client a reply. Write failures (client went away mid-request) warn
/// once and drop subsequent frames — the prediction still completes for
/// the batch's other riders.
struct TcpReplySink {
    stream: parking_lot::Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ReplySink for TcpReplySink {
    fn send(&self, frame: &[u8]) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut stream = self.stream.lock();
        if let Err(e) = stream.write_all(frame) {
            if !self.dead.swap(true, Ordering::Relaxed) {
                hwpr_obs::warn(format!("serve: client write failed, dropping replies: {e}"));
            }
        }
    }
}

fn handle_conn(mut stream: &TcpStream, shared: &Arc<Shared>) {
    let reply = Arc::new(TcpReplySink {
        stream: parking_lot::Mutex::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(e) => {
                hwpr_obs::warn(format!("serve: could not clone connection: {e}"));
                return;
            }
        }),
        dead: AtomicBool::new(false),
    });
    let mut cache = RegistryCache::new();
    let mut frame = Vec::new();
    let mut reply_buf = Vec::new();
    loop {
        match protocol::read_frame(&mut stream, &mut frame, MAX_FRAME) {
            Ok(true) => {}
            Ok(false) => return, // clean close at a frame boundary
            Err(e) => {
                // mid-frame disconnects and oversized frames end the
                // connection; during shutdown that's expected silence
                if !shared.shutdown.load(Ordering::SeqCst) {
                    hwpr_obs::warn(format!("serve: dropping connection: {e}"));
                }
                return;
            }
        }
        let _span = hwpr_obs::span_with_parent("serve.request", shared.ctx);
        let mut archs = shared.queue.take_arch_buf();
        let head = match protocol::decode_request(&frame, &mut archs) {
            Ok(head) => head,
            Err(DecodeError {
                request_id,
                message,
            }) => {
                // request-level garbage: reply with the error, keep the
                // connection (the framing itself was intact)
                if hwpr_obs::enabled() {
                    metrics().errors.inc();
                }
                hwpr_obs::warn(format!("serve: malformed request: {message}"));
                protocol::encode_error_response(&mut reply_buf, request_id, STATUS_ERROR, &message);
                reply.send(&reply_buf);
                shared.queue.recycle_arch_buf(archs);
                continue;
            }
        };
        match head.opcode {
            OP_LIST_MODELS => {
                protocol::encode_list_response(
                    &mut reply_buf,
                    head.request_id,
                    &shared.registry.list(),
                );
                reply.send(&reply_buf);
                shared.queue.recycle_arch_buf(archs);
            }
            OP_PREDICT_SCORES | OP_PREDICT_OBJECTIVES => {
                admit(shared, &mut cache, &head, archs, &reply, &mut reply_buf);
            }
            other => {
                // decode_request validated opcodes, so this is
                // unreachable in practice; answer defensively anyway
                protocol::encode_error_response(
                    &mut reply_buf,
                    head.request_id,
                    STATUS_ERROR,
                    &format!("unsupported opcode {other}"),
                );
                reply.send(&reply_buf);
                shared.queue.recycle_arch_buf(archs);
            }
        }
    }
}

fn admit(
    shared: &Arc<Shared>,
    cache: &mut RegistryCache,
    head: &RequestHead<'_>,
    archs: Vec<hwpr_nasbench::Architecture>,
    reply: &Arc<TcpReplySink>,
    reply_buf: &mut Vec<u8>,
) {
    let kind = if head.opcode == OP_PREDICT_SCORES {
        crate::PredictKind::Scores
    } else {
        crate::PredictKind::Objectives
    };
    let model = match cache.resolve(&shared.registry, head.model) {
        Ok(model) => model,
        Err(e) => {
            if hwpr_obs::enabled() {
                metrics().errors.inc();
            }
            protocol::encode_error_response(
                reply_buf,
                head.request_id,
                STATUS_ERROR,
                &e.to_string(),
            );
            reply.send(reply_buf);
            shared.queue.recycle_arch_buf(archs);
            return;
        }
    };
    let Some(slot) = model.slot(head.platform) else {
        if hwpr_obs::enabled() {
            metrics().errors.inc();
        }
        protocol::encode_error_response(
            reply_buf,
            head.request_id,
            STATUS_ERROR,
            &format!(
                "model {:?} has no latency head for platform {:?}",
                head.model, head.platform
            ),
        );
        reply.send(reply_buf);
        shared.queue.recycle_arch_buf(archs);
        return;
    };
    let pending = Pending {
        request_id: head.request_id,
        kind,
        model,
        slot,
        archs,
        reply: Arc::clone(reply) as Arc<dyn ReplySink>,
        arrived: Instant::now(),
    };
    if let Err(bounced) = shared.queue.push(pending) {
        if hwpr_obs::enabled() {
            metrics().overloaded.inc();
        }
        protocol::encode_error_response(
            reply_buf,
            bounced.request_id,
            STATUS_OVERLOADED,
            "admission queue full",
        );
        reply.send(reply_buf);
        shared.queue.recycle_arch_buf(bounced.archs);
    }
}
