//! Baseline surrogates the paper compares against (§IV-C2): BRP-NAS-style
//! per-objective GCN regressors and a GATES-style ranking surrogate.

use crate::config::{ModelConfig, TrainConfig};
use crate::data::SurrogateDataset;
use crate::encoders::EncoderChoice;
use crate::predictor::{Predictor, PredictorConfig, PredictorReport, RegressorKind, TargetMetric};
use crate::Result;
use hwpr_nasbench::Architecture;

/// A pair of independent per-objective surrogates — the design HW-PR-NAS
/// argues against. Each objective gets its own model; the search combines
/// the two predictions with non-dominated sorting.
#[derive(Debug)]
pub struct SurrogatePair {
    accuracy: Predictor,
    latency: Predictor,
    name: &'static str,
}

/// Validation quality of both members of a [`SurrogatePair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairReport {
    /// Accuracy-model quality.
    pub accuracy: PredictorReport,
    /// Latency-model quality.
    pub latency: PredictorReport,
}

impl SurrogatePair {
    /// BRP-NAS-style pair: GCN encoders (with the BRP-NAS global node) and
    /// MSE-trained MLP regressors for both accuracy and latency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on data or training failures.
    pub fn brp_nas(
        data: &SurrogateDataset,
        model: &ModelConfig,
        train: &TrainConfig,
    ) -> Result<(Self, PairReport)> {
        let make = |target| PredictorConfig {
            encoders: EncoderChoice::GCN,
            regressor: RegressorKind::Mlp,
            target,
            model: model.clone(),
            train: train.clone(),
            hinge_weight: 0.0,
        };
        let (accuracy, acc_report) = Predictor::fit(data, &make(TargetMetric::Accuracy))?;
        let (latency, lat_report) = Predictor::fit(data, &make(TargetMetric::Latency))?;
        Ok((
            Self {
                accuracy,
                latency,
                name: "BRP-NAS",
            },
            PairReport {
                accuracy: acc_report,
                latency: lat_report,
            },
        ))
    }

    /// GATES-style pair: GCN encoders trained with the margin-0.1 pairwise
    /// hinge ranking loss (plus a small MSE anchor so predictions stay in
    /// the objective's units).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on data or training failures.
    pub fn gates(
        data: &SurrogateDataset,
        model: &ModelConfig,
        train: &TrainConfig,
    ) -> Result<(Self, PairReport)> {
        let make = |target| PredictorConfig {
            encoders: EncoderChoice::GCN,
            regressor: RegressorKind::Mlp,
            target,
            model: model.clone(),
            train: train.clone(),
            hinge_weight: 1.0,
        };
        let (accuracy, acc_report) = Predictor::fit(data, &make(TargetMetric::Accuracy))?;
        let (latency, lat_report) = Predictor::fit(data, &make(TargetMetric::Latency))?;
        Ok((
            Self {
                accuracy,
                latency,
                name: "GATES",
            },
            PairReport {
                accuracy: acc_report,
                latency: lat_report,
            },
        ))
    }

    /// The baseline's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Predicted minimisation objectives `[error %, latency ms]` for each
    /// architecture. Note this costs **two** model evaluations per
    /// architecture — the overhead Fig. 7 measures.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn predict_objectives(&self, archs: &[Architecture]) -> Result<Vec<Vec<f64>>> {
        let acc = self.accuracy.predict(archs)?;
        let lat = self.latency.predict(archs)?;
        Ok(acc
            .into_iter()
            .zip(lat)
            .map(|(a, l)| vec![(100.0 - a).clamp(0.0, 100.0), l.max(0.0)])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
    use hwpr_nasbench::{Dataset, SearchSpaceId};

    fn data() -> SurrogateDataset {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(96),
            seed: 4,
        });
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap()
    }

    #[test]
    fn brp_nas_predicts_two_objectives() {
        let d = data();
        let (pair, report) =
            SurrogatePair::brp_nas(&d, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        assert_eq!(pair.name(), "BRP-NAS");
        assert!(report.accuracy.rmse.is_finite());
        assert!(report.latency.rmse.is_finite());
        let archs: Vec<Architecture> = d.samples().iter().take(6).map(|s| s.arch.clone()).collect();
        let objs = pair.predict_objectives(&archs).unwrap();
        assert_eq!(objs.len(), 6);
        for o in objs {
            assert_eq!(o.len(), 2);
            assert!((0.0..=100.0).contains(&o[0]));
            assert!(o[1] >= 0.0);
        }
    }

    #[test]
    fn gates_trains_with_hinge() {
        let d = data();
        let (pair, _) =
            SurrogatePair::gates(&d, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        assert_eq!(pair.name(), "GATES");
        let archs = vec![d.samples()[0].arch.clone()];
        assert_eq!(pair.predict_objectives(&archs).unwrap().len(), 1);
    }
}
