//! Regenerates Figure 8 (least-latency architectures per platform).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig8::run(&harness);
    hwpr_experiments::write_report("fig8_architectures", &report);
}
