//! Reference (naive loop nest) vs cache-tiled, register-blocked GEMM —
//! the kernels behind every surrogate forward pass. The 256x256x256 row
//! is the PR-1 acceptance point: the blocked kernel must be >= 2x the
//! reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_tensor::{reference, Matrix};

/// Deterministic dense matrix (no RNG, so runs are comparable).
fn filled(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| (((i * 37 + salt * 101) % 97) as f32 - 48.0) / 24.0)
            .collect(),
    )
    .expect("shape matches data")
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = filled(n, n, 1);
        let b = filled(n, n, 2);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
            bench.iter(|| reference::matmul(&a, &b).expect("shapes agree"));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).expect("shapes agree"));
        });
    }
    // the transposed entry points share the blocked driver via packing
    let n = 256;
    let a = filled(n, n, 3);
    let b = filled(n, n, 4);
    group.bench_with_input(BenchmarkId::new("reference_tn", n), &n, |bench, _| {
        bench.iter(|| reference::matmul_tn(&a, &b).expect("shapes agree"));
    });
    group.bench_with_input(BenchmarkId::new("blocked_tn", n), &n, |bench, _| {
        bench.iter(|| a.matmul_tn(&b).expect("shapes agree"));
    });
    group.bench_with_input(BenchmarkId::new("reference_nt", n), &n, |bench, _| {
        bench.iter(|| reference::matmul_nt(&a, &b).expect("shapes agree"));
    });
    group.bench_with_input(BenchmarkId::new("blocked_nt", n), &n, |bench, _| {
        bench.iter(|| a.matmul_nt(&b).expect("shapes agree"));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
