//! **Surrogate-as-a-service**: a dependency-free prediction server that
//! puts the frozen HW-PR-NAS engine behind a long-running TCP endpoint.
//!
//! The single-process frozen path is fast (PRs 4–7), and its profile says
//! the remaining per-sweep cost is staging + small-GEMM dispatch — so the
//! serving layer's job is to **batch across requests** before entering
//! the engine. The pieces:
//!
//! - [`protocol`] — a versioned length-prefixed binary protocol over TCP
//!   (`predict_scores` / `predict_objectives` batches keyed by model
//!   name, plus model listing);
//! - [`registry`] — a model registry holding `Arc`-shared frozen engines
//!   with atomic hot-swap when a retrained model is published or
//!   persisted (in-flight batches finish on the old `Arc`; the hot path
//!   never takes the registry lock);
//! - [`queue`] — an admission queue with **adaptive micro-batching**:
//!   concurrent requests for the same (model, platform, kind) coalesce
//!   into one batched SoA forward before a configurable deadline
//!   (`HWPR_SERVE_MAX_BATCH` / `HWPR_SERVE_BATCH_DEADLINE_US`), so the
//!   server enters the frozen engine at batch 64 even when every client
//!   sends batch 1;
//! - [`server`] / [`client`] — the blocking TCP acceptor/worker runtime
//!   and a pipelining-capable client.
//!
//! Worker loops own pooled [`hwpr_core::InferArena`]s and recycle every
//! request buffer, so the warm serving loop performs zero heap
//! allocations (pinned by the `alloc-count` harness in `hwpr-bench`).
//! Telemetry follows the workspace conventions: `serve.request` /
//! `serve.batch` spans under one `serve.server` trace, latency
//! histograms, queue-depth/in-flight gauges and coalesce counters, all
//! rendered by `hwpr-report`.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod protocol;
pub mod queue;
pub mod registry;
pub(crate) mod telemetry;

mod server;

pub use client::ServeClient;
pub use config::ServeConfig;
pub use protocol::PredictKind;
pub use queue::{BatchQueue, Pending, ReplySink, WorkerState};
pub use registry::{ModelRegistry, ServedModel};
pub use server::Server;

use std::error::Error;
use std::fmt;
use std::io;

/// Error produced by the serving client and server plumbing.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(io::Error),
    /// A frame violated the wire protocol.
    Protocol(String),
    /// The server shed the request (queue full or request timeout).
    Overloaded,
    /// The server reported a request-level error (unknown model,
    /// unknown platform, malformed batch).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "serve protocol error: {msg}"),
            ServeError::Overloaded => write!(f, "server overloaded: request shed"),
            ServeError::Remote(msg) => write!(f, "server rejected request: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Convenience alias for fallible serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ServeError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(Error::source(&e).is_some());
        assert!(ServeError::Overloaded.to_string().contains("overloaded"));
        assert!(ServeError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
        assert!(Error::source(&ServeError::Remote("x".into())).is_none());
    }
}
