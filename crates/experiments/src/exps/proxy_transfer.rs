//! Extension of §III-E: latency-predictor transfer across platforms
//! ("one proxy device is enough" — the paper's citation [24]). A latency
//! predictor trained on one platform is evaluated, without retraining, on
//! every other platform's true latencies; transfer quality should follow
//! the correlation families of the §III-E study.

use crate::{Harness, MarkdownTable};
use hwpr_core::encoders::EncoderChoice;
use hwpr_core::predictor::{Predictor, PredictorConfig, TargetMetric};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the study and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let space = SearchSpaceId::NasBench201;
    let sources = [Platform::RaspberryPi4, Platform::FpgaZcu102];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Extension — proxy-device latency transfer (§III-E)\n"
    );
    let _ = writeln!(
        out,
        "A latency predictor trained on the *source* platform ranks \
         architectures for every *target* platform (Kendall τ against the \
         target's true latencies). High transfer within the correlated \
         family {{Pi 4, Pixel 3, ZC706}}; poor transfer to/from the odd \
         systolic platforms — matching the correlation matrix.\n"
    );
    let mut t = MarkdownTable::new(
        vec!["Source \\ Target"]
            .into_iter()
            .map(String::from)
            .chain(Platform::ALL.iter().map(|p| p.name().to_string()))
            .collect::<Vec<String>>(),
    );
    for source in sources {
        let data = h.dataset(space, dataset, source);
        let config = PredictorConfig {
            model: h.scale.model_config(),
            train: h.scale.train_config(),
            ..PredictorConfig::mlp(EncoderChoice::LSTM_AF, TargetMetric::Latency)
        };
        let (predictor, _) = Predictor::fit(&data, &config).expect("training failed");
        // score a held-out slice against every platform's true latency
        let eval_archs: Vec<Architecture> = h
            .nb201()
            .entries()
            .iter()
            .rev()
            .take(150.min(h.nb201().len() / 2))
            .map(|e| e.arch().clone())
            .collect();
        let preds: Vec<f32> = predictor
            .predict(&eval_archs)
            .expect("prediction failed")
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let mut row = vec![source.name().to_string()];
        for target in Platform::ALL {
            let truth: Vec<f32> = eval_archs
                .iter()
                .map(|a| hwpr_hwmodel::latency_ms(a, dataset, target) as f32)
                .collect();
            let tau = hwpr_metrics::kendall_tau(&preds, &truth).unwrap_or(0.0);
            row.push(format!("{tau:.2}"));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}
