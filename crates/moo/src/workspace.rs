//! [`MooWorkspace`]: a reusable flat arena for the Pareto kernels.
//!
//! Every public kernel in this crate ultimately runs through a workspace.
//! The workspace owns all scratch the kernels need — a flat
//! structure-of-arrays mirror of the objective vectors, a CSR-style
//! dominance edge list, per-objective index sort buffers, and pooled WFG
//! recursion levels — so that on *warm* calls (same or smaller problem
//! size as a previous call) the kernels perform **zero heap allocations**.
//! `crates/bench/tests/alloc_free.rs` proves this with a counting
//! allocator, and `crates/moo/tests/differential.rs` proves every kernel
//! equivalent to the original implementations in [`crate::reference`].
//!
//! Algorithmic upgrades over the reference path:
//!
//! - **One comparison per pair**: the M ≥ 3 sort classifies each (i, j)
//!   pair with a single objective pass instead of two `dominates` calls,
//!   and stores the result in a flat edge list bucketed into CSR form.
//! - **O(N log N) two-objective sort**: the paper's dominant
//!   accuracy+latency configuration is layered by a lexicographic sweep
//!   with a binary search over per-front minima instead of the O(N²)
//!   pairwise pass (the 1-D case rides the same sweep).
//! - **First-front-only scan**: [`MooWorkspace::pareto_front`] stops once
//!   front 0 is known instead of layering the whole set.
//! - **Single validation**: each public entry point validates its input
//!   exactly once; internal kernels are unchecked.
//!
//! Front ordering: the workspace lists every front in ascending index
//! order (the reference lists later fronts in traversal order). Ranks,
//! front *membership* and crowding distances are bit-identical.

use crate::dominance::{compare, DomOrdering};
use crate::{validate_points, MooError, Result};
use std::borrow::Borrow;
use std::sync::Arc;

/// Pareto fronts as a flat CSR-style index list, reusable across calls.
///
/// `flat` concatenates the fronts; `offsets[k]..offsets[k + 1]` delimits
/// front `k`. Produced by
/// [`MooWorkspace::fast_non_dominated_sort_into`]; callers keep one
/// `Fronts` alive across generations so the sort never reallocates.
#[derive(Debug, Clone, Default)]
pub struct Fronts {
    flat: Vec<usize>,
    offsets: Vec<usize>,
}

impl Fronts {
    /// Creates an empty front list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fronts.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when no sort has populated this list.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point indices of front `k` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn front(&self, k: usize) -> &[usize] {
        &self.flat[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Iterates over the fronts, best front first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &[usize]> + '_ {
        self.offsets.windows(2).map(|w| &self.flat[w[0]..w[1]])
    }

    fn clear(&mut self) {
        self.flat.clear();
        self.offsets.clear();
    }
}

/// Pooled scratch for one WFG recursion level: the point set handed to
/// that level, an index buffer for sorting it, and a staging buffer for
/// building the next level's limit set.
#[derive(Debug, Default)]
struct WfgLevel {
    pts: Vec<f64>,
    idx: Vec<u32>,
    tmp: Vec<f64>,
}

/// A reusable arena for the Pareto kernels (see the [module
/// docs](self)).
///
/// # Examples
///
/// ```
/// use hwpr_moo::MooWorkspace;
///
/// let mut ws = MooWorkspace::new();
/// let points = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![3.0, 3.0]];
/// assert_eq!(ws.pareto_ranks(&points).unwrap(), &[0, 0, 1]);
/// assert_eq!(ws.pareto_front(&points).unwrap(), &[0, 1]);
/// // warm calls reuse every buffer — no further heap allocations
/// assert_eq!(ws.pareto_ranks(&points).unwrap(), &[0, 0, 1]);
/// ```
#[derive(Debug, Default)]
pub struct MooWorkspace {
    /// Flat row-major SoA mirror of the loaded objective vectors.
    objs: Vec<f64>,
    n: usize,
    dim: usize,
    /// Pareto rank per point.
    ranks: Vec<usize>,
    /// Domination counts (M ≥ 3) / per-rank counters for front bucketing.
    counts: Vec<usize>,
    /// Decisive (dominator, dominated) pairs before CSR bucketing.
    edges: Vec<(u32, u32)>,
    /// CSR offsets (per dominator) into `adj`.
    heads: Vec<u32>,
    /// CSR cursor scratch while filling `adj`.
    cursors: Vec<u32>,
    /// CSR edge targets.
    adj: Vec<u32>,
    /// BFS queue for front propagation.
    queue: Vec<u32>,
    /// Index sort buffer (lexicographic sweep, crowding, hv2).
    order: Vec<u32>,
    /// 2-D sweep: minimum second objective per front so far.
    front_min_y: Vec<f64>,
    /// 2-D sweep: first objective of the point achieving that minimum.
    front_min_x: Vec<f64>,
    /// Internal fronts for [`Self::pareto_ranks`].
    fronts: Fronts,
    /// Crowding-distance output buffer.
    crowd: Vec<f64>,
    /// First-front indices for hypervolume / `pareto_front`.
    front_buf: Vec<usize>,
    /// Dominated flags for the M ≥ 3 first-front scan.
    dominated: Vec<bool>,
    /// Pooled WFG recursion levels.
    wfg: Vec<WfgLevel>,
    /// Kernel invocations served by this workspace (first call = cold).
    calls: u64,
    /// Cached telemetry handles (resolved once, only with telemetry on).
    sort_hist: Option<Arc<hwpr_obs::metrics::Histogram>>,
    hv_hist: Option<Arc<hwpr_obs::metrics::Histogram>>,
    reuse_counter: Option<Arc<hwpr_obs::metrics::Counter>>,
}

/// Kind of kernel timed by [`MooWorkspace::finish_timer`].
#[derive(Clone, Copy)]
enum Kernel {
    Sort,
    Hv,
}

impl MooWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Partitions `points` into Pareto fronts, writing them into the
    /// caller-owned `out` (each front in ascending index order).
    ///
    /// Keeping `out` outside the workspace lets callers hold the fronts
    /// while continuing to use the workspace (e.g. per-front
    /// [`Self::crowding_distance_of`] calls).
    ///
    /// # Errors
    ///
    /// Returns [`MooError`] when the set is empty, dimensions are
    /// inconsistent, or values are non-finite.
    pub fn fast_non_dominated_sort_into<P: Borrow<Vec<f64>>>(
        &mut self,
        points: &[P],
        out: &mut Fronts,
    ) -> Result<()> {
        let timer = self.start_call();
        self.load(points)?;
        self.rank_impl();
        self.bucket_fronts_from_ranks(false);
        out.clear();
        out.flat.extend_from_slice(&self.fronts.flat);
        out.offsets.extend_from_slice(&self.fronts.offsets);
        self.finish_timer(timer, Kernel::Sort);
        Ok(())
    }

    /// The Pareto rank (0-based front index) of every point; the slice is
    /// valid until the next workspace call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::fast_non_dominated_sort_into`].
    pub fn pareto_ranks<P: Borrow<Vec<f64>>>(&mut self, points: &[P]) -> Result<&[usize]> {
        let timer = self.start_call();
        self.load(points)?;
        self.rank_impl();
        self.finish_timer(timer, Kernel::Sort);
        Ok(&self.ranks)
    }

    /// Indices of the non-dominated (first-front) points, ascending; the
    /// slice is valid until the next workspace call.
    ///
    /// Unlike the reference path this never layers the full set: the 2-D
    /// case is a single lexicographic sweep and the M ≥ 3 case stops at
    /// the first-front membership test.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::fast_non_dominated_sort_into`].
    pub fn pareto_front<P: Borrow<Vec<f64>>>(&mut self, points: &[P]) -> Result<&[usize]> {
        let timer = self.start_call();
        self.load(points)?;
        self.first_front_impl();
        self.finish_timer(timer, Kernel::Sort);
        Ok(&self.front_buf)
    }

    /// NSGA-II crowding distance of each point *within one front*; the
    /// slice is valid until the next workspace call.
    ///
    /// # Errors
    ///
    /// Returns [`MooError`] for empty/inconsistent inputs.
    pub fn crowding_distance<P: Borrow<Vec<f64>>>(&mut self, points: &[P]) -> Result<&[f64]> {
        let timer = self.start_call();
        self.load(points)?;
        self.crowding_impl();
        self.finish_timer(timer, Kernel::Sort);
        Ok(&self.crowd)
    }

    /// Crowding distance of the front `points[subset[0]], points[subset[1]],
    /// …` without materialising the subset: `result[slot]` corresponds to
    /// `points[subset[slot]]`. Bit-identical to calling
    /// [`Self::crowding_distance`] on the gathered subset.
    ///
    /// # Errors
    ///
    /// Returns [`MooError`] for empty/inconsistent subsets; panics if a
    /// subset index is out of bounds (caller bug, like slice indexing).
    pub fn crowding_distance_of<P: Borrow<Vec<f64>>>(
        &mut self,
        points: &[P],
        subset: &[usize],
    ) -> Result<&[f64]> {
        let timer = self.start_call();
        self.load_subset(points, subset)?;
        self.crowding_impl();
        self.finish_timer(timer, Kernel::Sort);
        Ok(&self.crowd)
    }

    /// The hypervolume dominated by `points` with respect to `reference`
    /// (minimization; the reference must be weakly worse than every point
    /// in every objective).
    ///
    /// Validates once, extracts the first front with the dedicated scan,
    /// and dispatches to the 2-D sweep or the pooled-scratch WFG
    /// recursion. Matches [`crate::reference::hypervolume`] to 1e-12.
    ///
    /// # Errors
    ///
    /// Returns [`MooError`] for empty/inconsistent input, a reference
    /// point of the wrong dimension, or a reference that does not bound
    /// the points.
    pub fn hypervolume<P: Borrow<Vec<f64>>>(
        &mut self,
        points: &[P],
        reference: &[f64],
    ) -> Result<f64> {
        let timer = self.start_call();
        self.load(points)?;
        if reference.len() != self.dim {
            return Err(MooError::DimensionMismatch {
                expected: self.dim,
                found: reference.len(),
            });
        }
        if reference.iter().any(|v| !v.is_finite()) {
            return Err(MooError::NonFinite);
        }
        for i in 0..self.n {
            if self.point(i).iter().zip(reference).any(|(x, r)| x > r) {
                return Err(MooError::ReferenceNotDominating);
            }
        }
        self.first_front_impl();
        let hv = match self.dim {
            1 => {
                let best = self
                    .front_buf
                    .iter()
                    .map(|&i| self.objs[i])
                    .fold(f64::INFINITY, f64::min);
                reference[0] - best
            }
            2 => self.hv2_impl(reference),
            _ => self.wfg_impl(reference),
        };
        self.finish_timer(timer, Kernel::Hv);
        Ok(hv)
    }

    // ------------------------------------------------------------------
    // loading & validation
    // ------------------------------------------------------------------

    /// Validates `points` and mirrors them into the flat SoA buffer.
    fn load<P: Borrow<Vec<f64>>>(&mut self, points: &[P]) -> Result<()> {
        let dim = validate_points(points)?;
        self.n = points.len();
        self.dim = dim;
        self.objs.clear();
        self.objs.reserve(self.n * dim);
        for p in points {
            self.objs.extend_from_slice(p.borrow());
        }
        Ok(())
    }

    /// Validates and mirrors the subset `points[subset[..]]` only, exactly
    /// as if the caller had gathered it into a fresh slice.
    fn load_subset<P: Borrow<Vec<f64>>>(&mut self, points: &[P], subset: &[usize]) -> Result<()> {
        let first = subset.first().ok_or(MooError::EmptySet)?;
        let dim = points[*first].borrow().len();
        if dim == 0 {
            return Err(MooError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        self.n = subset.len();
        self.dim = dim;
        self.objs.clear();
        self.objs.reserve(self.n * dim);
        for &i in subset {
            let p = points[i].borrow();
            if p.len() != dim {
                return Err(MooError::DimensionMismatch {
                    expected: dim,
                    found: p.len(),
                });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(MooError::NonFinite);
            }
            self.objs.extend_from_slice(p);
        }
        Ok(())
    }

    #[inline]
    fn point(&self, i: usize) -> &[f64] {
        &self.objs[i * self.dim..(i + 1) * self.dim]
    }

    // ------------------------------------------------------------------
    // non-dominated sorting
    // ------------------------------------------------------------------

    /// Fills `self.ranks` for the loaded point set.
    fn rank_impl(&mut self) {
        if self.dim <= 2 {
            self.rank_sweep();
        } else {
            self.rank_general();
        }
    }

    /// O(N log N) layering for 1-D/2-D: process points in lexicographic
    /// order; each point lands on the first front whose running minimum
    /// does not dominate it (binary search — the per-front minima are
    /// non-decreasing). Matches the pairwise sort exactly, including
    /// duplicates and ties.
    fn rank_sweep(&mut self) {
        let n = self.n;
        let dim = self.dim;
        let objs = &self.objs;
        let order = &mut self.order;
        order.clear();
        order.extend(0..n as u32);
        let xy = |i: u32| {
            let base = i as usize * dim;
            let x = objs[base];
            let y = if dim == 2 { objs[base + 1] } else { 0.0 };
            (x, y)
        };
        order.sort_unstable_by(|&a, &b| {
            let (ax, ay) = xy(a);
            let (bx, by) = xy(b);
            ax.total_cmp(&bx).then(ay.total_cmp(&by)).then(a.cmp(&b))
        });
        self.front_min_y.clear();
        self.front_min_x.clear();
        self.ranks.clear();
        self.ranks.resize(n, 0);
        for &iu in order.iter() {
            let (x, y) = xy(iu);
            // all processed points have x' <= x, so front f dominates
            // (x, y) iff its minimum y is strictly below y, or equals y
            // with a strictly smaller x at that minimum
            let nf = self.front_min_y.len();
            let (mut lo, mut hi) = (0usize, nf);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let dominates_q = self.front_min_y[mid] < y
                    || (self.front_min_y[mid] == y && self.front_min_x[mid] < x);
                if dominates_q {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo == nf {
                self.front_min_y.push(y);
                self.front_min_x.push(x);
            } else if y < self.front_min_y[lo] {
                self.front_min_y[lo] = y;
                self.front_min_x[lo] = x;
            }
            self.ranks[iu as usize] = lo;
        }
    }

    /// O(M·N²) layering for M ≥ 3: one dominance comparison per pair into
    /// a flat edge list, CSR bucketing, then a BFS release over the
    /// domination counts (the releasing dominator is always on the
    /// deepest front among a point's dominators, so its rank + 1 is the
    /// point's rank).
    fn rank_general(&mut self) {
        let n = self.n;
        self.edges.clear();
        self.counts.clear();
        self.counts.resize(n, 0);
        for i in 0..n {
            for j in (i + 1)..n {
                match compare(self.point(i), self.point(j)) {
                    DomOrdering::Left => {
                        self.edges.push((i as u32, j as u32));
                        self.counts[j] += 1;
                    }
                    DomOrdering::Right => {
                        self.edges.push((j as u32, i as u32));
                        self.counts[i] += 1;
                    }
                    DomOrdering::Neither => {}
                }
            }
        }
        // CSR: bucket edge targets by dominator
        self.heads.clear();
        self.heads.resize(n + 1, 0);
        for &(w, _) in &self.edges {
            self.heads[w as usize + 1] += 1;
        }
        for i in 0..n {
            self.heads[i + 1] += self.heads[i];
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.heads[..n]);
        self.adj.clear();
        self.adj.resize(self.edges.len(), 0);
        for &(w, l) in &self.edges {
            let c = &mut self.cursors[w as usize];
            self.adj[*c as usize] = l;
            *c += 1;
        }
        // BFS release in front order
        self.ranks.clear();
        self.ranks.resize(n, 0);
        self.queue.clear();
        for i in 0..n {
            if self.counts[i] == 0 {
                self.queue.push(i as u32);
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            let rank_v = self.ranks[v];
            for e in self.heads[v] as usize..self.heads[v + 1] as usize {
                let u = self.adj[e] as usize;
                self.counts[u] -= 1;
                if self.counts[u] == 0 {
                    self.ranks[u] = rank_v + 1;
                    self.queue.push(u as u32);
                }
            }
        }
    }

    /// Buckets `self.ranks` into `self.fronts` (counting sort, so every
    /// front lists its indices in ascending order). With
    /// `first_front_only` set, stops after front 0 (into `front_buf`).
    fn bucket_fronts_from_ranks(&mut self, first_front_only: bool) {
        if first_front_only {
            self.front_buf.clear();
            for (i, &r) in self.ranks.iter().enumerate() {
                if r == 0 {
                    self.front_buf.push(i);
                }
            }
            return;
        }
        let nf = self.ranks.iter().copied().max().map_or(0, |r| r + 1);
        self.counts.clear();
        self.counts.resize(nf, 0);
        for &r in &self.ranks {
            self.counts[r] += 1;
        }
        self.fronts.clear();
        self.fronts.offsets.reserve(nf + 1);
        self.fronts.offsets.push(0);
        let mut total = 0usize;
        for k in 0..nf {
            total += self.counts[k];
            self.fronts.offsets.push(total);
        }
        // reuse `counts` as per-front fill cursors
        for k in 0..nf {
            self.counts[k] = self.fronts.offsets[k];
        }
        self.fronts.flat.clear();
        self.fronts.flat.resize(self.n, 0);
        for (i, &r) in self.ranks.iter().enumerate() {
            self.fronts.flat[self.counts[r]] = i;
            self.counts[r] += 1;
        }
    }

    /// Fills `front_buf` with the ascending first-front indices without
    /// layering the rest of the set.
    fn first_front_impl(&mut self) {
        if self.dim <= 2 {
            self.first_front_sweep();
        } else {
            self.first_front_scan();
        }
    }

    /// 1-D/2-D first front by lexicographic sweep: a point survives iff
    /// its second objective strictly improves the running minimum, or it
    /// duplicates the point achieving it.
    fn first_front_sweep(&mut self) {
        let n = self.n;
        let dim = self.dim;
        let objs = &self.objs;
        let order = &mut self.order;
        order.clear();
        order.extend(0..n as u32);
        let xy = |i: u32| {
            let base = i as usize * dim;
            let x = objs[base];
            let y = if dim == 2 { objs[base + 1] } else { 0.0 };
            (x, y)
        };
        order.sort_unstable_by(|&a, &b| {
            let (ax, ay) = xy(a);
            let (bx, by) = xy(b);
            ax.total_cmp(&bx).then(ay.total_cmp(&by)).then(a.cmp(&b))
        });
        self.front_buf.clear();
        let mut min_y = f64::INFINITY;
        let mut min_x = f64::INFINITY;
        for &iu in order.iter() {
            let (x, y) = xy(iu);
            if y < min_y {
                min_y = y;
                min_x = x;
                self.front_buf.push(iu as usize);
            } else if y == min_y && x == min_x {
                // exact duplicate of the front point achieving the
                // minimum: equal points never dominate each other
                self.front_buf.push(iu as usize);
            }
        }
        self.front_buf.sort_unstable();
    }

    /// M ≥ 3 first front: pairwise scan with dominated flags; pairs where
    /// both points are already dominated are skipped.
    fn first_front_scan(&mut self) {
        let n = self.n;
        self.dominated.clear();
        self.dominated.resize(n, false);
        for i in 0..n {
            for j in (i + 1)..n {
                if self.dominated[i] && self.dominated[j] {
                    continue;
                }
                match compare(self.point(i), self.point(j)) {
                    DomOrdering::Left => self.dominated[j] = true,
                    DomOrdering::Right => self.dominated[i] = true,
                    DomOrdering::Neither => {}
                }
            }
        }
        self.front_buf.clear();
        for (i, &d) in self.dominated.iter().enumerate() {
            if !d {
                self.front_buf.push(i);
            }
        }
    }

    // ------------------------------------------------------------------
    // crowding distance
    // ------------------------------------------------------------------

    /// Crowding over the loaded set, bit-identical to the reference: the
    /// per-objective stable value sort is reproduced by an unstable sort
    /// with an index tie-break, and the gap accumulation order is
    /// unchanged.
    fn crowding_impl(&mut self) {
        let n = self.n;
        let dim = self.dim;
        self.crowd.clear();
        if n <= 2 {
            self.crowd.resize(n, f64::INFINITY);
            return;
        }
        self.crowd.resize(n, 0.0);
        let objs = &self.objs;
        let at = |i: u32, d: usize| objs[i as usize * dim + d];
        for d in 0..dim {
            let order = &mut self.order;
            order.clear();
            order.extend(0..n as u32);
            order.sort_unstable_by(|&i, &j| at(i, d).total_cmp(&at(j, d)).then(i.cmp(&j)));
            let span = at(order[n - 1], d) - at(order[0], d);
            self.crowd[order[0] as usize] = f64::INFINITY;
            self.crowd[order[n - 1] as usize] = f64::INFINITY;
            if span <= 0.0 {
                continue;
            }
            for w in 1..n - 1 {
                let gap = (at(order[w + 1], d) - at(order[w - 1], d)) / span;
                self.crowd[order[w] as usize] += gap;
            }
        }
    }

    // ------------------------------------------------------------------
    // hypervolume
    // ------------------------------------------------------------------

    /// 2-D sweep over the first front (`front_buf`), summing boxes in the
    /// same order as the reference (x ascending, front order on ties).
    fn hv2_impl(&mut self, reference: &[f64]) -> f64 {
        let dim = self.dim;
        let objs = &self.objs;
        let front = &self.front_buf;
        let order = &mut self.order;
        order.clear();
        order.extend(0..front.len() as u32);
        // `front_buf` is ascending, so tie-breaking on the slot position
        // reproduces the reference's stable sort over the front points
        order.sort_unstable_by(|&a, &b| {
            let xa = objs[front[a as usize] * dim];
            let xb = objs[front[b as usize] * dim];
            xa.total_cmp(&xb).then(a.cmp(&b))
        });
        let mut hv = 0.0;
        let mut prev_y = reference[1];
        for &slot in order.iter() {
            let base = front[slot as usize] * dim;
            let width = reference[0] - objs[base];
            let height = prev_y - objs[base + 1];
            if height > 0.0 {
                hv += width * height;
                prev_y = objs[base + 1];
            }
        }
        hv
    }

    /// WFG recursion over pooled per-level scratch: no point-set clones,
    /// no per-level `Vec<Vec<f64>>` — each recursion depth owns a flat
    /// buffer that is reused across calls.
    fn wfg_impl(&mut self, reference: &[f64]) -> f64 {
        let dim = self.dim;
        if self.wfg.is_empty() {
            self.wfg.push(WfgLevel::default());
        }
        let level0 = &mut self.wfg[0];
        level0.pts.clear();
        level0.pts.reserve(self.front_buf.len() * dim);
        for &i in &self.front_buf {
            level0
                .pts
                .extend_from_slice(&self.objs[i * dim..(i + 1) * dim]);
        }
        wfg_rec(&mut self.wfg, 0, dim, reference)
    }

    // ------------------------------------------------------------------
    // telemetry
    // ------------------------------------------------------------------

    /// Starts a kernel timer and counts workspace reuse; inert with
    /// telemetry off (one relaxed atomic load).
    fn start_call(&mut self) -> Option<std::time::Instant> {
        let warm = self.calls > 0;
        self.calls += 1;
        if !hwpr_obs::enabled() {
            return None;
        }
        if warm {
            self.reuse_counter
                .get_or_insert_with(|| hwpr_obs::metrics::registry().counter("moo.workspace.reuse"))
                .inc();
        }
        Some(std::time::Instant::now())
    }

    /// Records the elapsed µs into `moo.sort.us` / `moo.hv.us`.
    fn finish_timer(&mut self, timer: Option<std::time::Instant>, kernel: Kernel) {
        let Some(start) = timer else { return };
        let us = start.elapsed().as_secs_f64() * 1e6;
        let registry = hwpr_obs::metrics::registry();
        let hist = match kernel {
            Kernel::Sort => self.sort_hist.get_or_insert_with(|| {
                registry.histogram(
                    "moo.sort.us",
                    &hwpr_obs::metrics::Histogram::exponential_bounds(1.0, 4.0, 10),
                )
            }),
            Kernel::Hv => self.hv_hist.get_or_insert_with(|| {
                registry.histogram(
                    "moo.hv.us",
                    &hwpr_obs::metrics::Histogram::exponential_bounds(1.0, 4.0, 10),
                )
            }),
        };
        hist.observe(us);
    }
}

/// One WFG level: sorts its point set worst-first on the last objective,
/// then accumulates each point's exclusive hypervolume, building the
/// limit set for the next level in that level's pooled buffers.
fn wfg_rec(levels: &mut Vec<WfgLevel>, level: usize, dim: usize, reference: &[f64]) -> f64 {
    let mut cur = std::mem::take(&mut levels[level]);
    if levels.len() <= level + 1 {
        levels.push(WfgLevel::default());
    }
    let count = cur.pts.len() / dim;
    // sort worst-first on the last objective (stable via slot tie-break,
    // matching the reference's stable sort)
    cur.idx.clear();
    cur.idx.extend(0..count as u32);
    {
        let pts = &cur.pts;
        cur.idx.sort_unstable_by(|&a, &b| {
            let ka = pts[a as usize * dim + dim - 1];
            let kb = pts[b as usize * dim + dim - 1];
            kb.total_cmp(&ka).then(a.cmp(&b))
        });
    }
    // permute into sorted order through the staging buffer
    cur.tmp.clear();
    for &slot in &cur.idx {
        let base = slot as usize * dim;
        cur.tmp.extend_from_slice(&cur.pts[base..base + dim]);
    }
    std::mem::swap(&mut cur.pts, &mut cur.tmp);

    let mut total = 0.0;
    for i in 0..count {
        let (p, rest) = {
            let after = &cur.pts[i * dim..];
            after.split_at(dim)
        };
        let box_vol: f64 = p.iter().zip(reference).map(|(x, r)| r - x).product();
        if rest.is_empty() {
            total += box_vol;
            continue;
        }
        // limit set: clip the remaining points into p's dominated box,
        // then keep only its non-dominated subset (same incremental
        // keep/retain order as the reference)
        let next = &mut levels[level + 1];
        next.tmp.clear();
        for q in rest.chunks_exact(dim) {
            next.tmp
                .extend(q.iter().zip(p).map(|(&qv, &pv)| qv.max(pv)));
        }
        next.pts.clear();
        'candidate: for c in 0..rest.len() / dim {
            let cand = &next.tmp[c * dim..(c + 1) * dim];
            let kept = next.pts.len() / dim;
            for k in 0..kept {
                if weakly_dominates_slice(&next.pts[k * dim..(k + 1) * dim], cand) {
                    continue 'candidate;
                }
            }
            // retain: drop kept points weakly dominated by the candidate
            let mut write = 0usize;
            for k in 0..kept {
                let dominated = weakly_dominates_slice(cand, &next.pts[k * dim..(k + 1) * dim]);
                if !dominated {
                    if write != k {
                        let (head, tail) = next.pts.split_at_mut(k * dim);
                        head[write * dim..write * dim + dim].copy_from_slice(&tail[..dim]);
                    }
                    write += 1;
                }
            }
            next.pts.truncate(write * dim);
            next.pts.extend_from_slice(cand);
        }
        let nd_count = next.pts.len() / dim;
        let inner = if nd_count == 0 {
            0.0
        } else if dim == 2 {
            hv2_flat(next, dim, reference)
        } else {
            debug_assert!(dim >= 3);
            wfg_rec(levels, level + 1, dim, reference)
        };
        total += box_vol - inner;
    }
    levels[level] = cur;
    total
}

/// Reference-ordered 2-D sweep over a level's flat point list (the WFG
/// recursion bottoms out here when called with two objectives; the
/// workspace's own 2-D path never reaches it).
fn hv2_flat(level: &mut WfgLevel, dim: usize, reference: &[f64]) -> f64 {
    let count = level.pts.len() / dim;
    level.idx.clear();
    level.idx.extend(0..count as u32);
    {
        let pts = &level.pts;
        level.idx.sort_unstable_by(|&a, &b| {
            let xa = pts[a as usize * dim];
            let xb = pts[b as usize * dim];
            xa.total_cmp(&xb).then(a.cmp(&b))
        });
    }
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &slot in &level.idx {
        let base = slot as usize * dim;
        let width = reference[0] - level.pts[base];
        let height = prev_y - level.pts[base + 1];
        if height > 0.0 {
            hv += width * height;
            prev_y = level.pts[base + 1];
        }
    }
    hv
}

#[inline]
fn weakly_dominates_slice(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use crate::reference;

    fn sample() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 1.0],
            vec![3.0, 4.0],
            vec![5.0, 5.0],
            vec![2.0, 3.0], // duplicate of a front-0 point
        ]
    }

    #[test]
    fn sweep_matches_reference_ranks() {
        let mut ws = MooWorkspace::new();
        let ranks = ws.pareto_ranks(&sample()).unwrap();
        assert_eq!(ranks, reference::pareto_ranks(&sample()).unwrap());
    }

    #[test]
    fn fronts_are_ascending_and_partition() {
        let mut ws = MooWorkspace::new();
        let mut fronts = Fronts::new();
        ws.fast_non_dominated_sort_into(&sample(), &mut fronts)
            .unwrap();
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts.front(0), &[0, 1, 2, 5]);
        assert_eq!(fronts.front(1), &[3]);
        assert_eq!(fronts.front(2), &[4]);
        let total: usize = fronts.iter().map(<[usize]>::len).sum();
        assert_eq!(total, sample().len());
    }

    #[test]
    fn first_front_only_matches_full_sort() {
        let mut ws = MooWorkspace::new();
        let front = ws.pareto_front(&sample()).unwrap();
        assert_eq!(front, &[0, 1, 2, 5]);
    }

    #[test]
    fn three_d_paths_match_reference() {
        let pts = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![2.0, 2.0, 2.0],
            vec![3.0, 3.0, 3.0],
            vec![1.0, 2.0, 3.0], // duplicate
        ];
        let mut ws = MooWorkspace::new();
        assert_eq!(
            ws.pareto_ranks(&pts).unwrap(),
            reference::pareto_ranks(&pts).unwrap()
        );
        let mut expected = reference::pareto_front(&pts).unwrap();
        expected.sort_unstable();
        assert_eq!(ws.pareto_front(&pts).unwrap(), expected.as_slice());
        let reference_pt = [4.0, 4.0, 4.0];
        let hv_ws = ws.hypervolume(&pts, &reference_pt).unwrap();
        let hv_ref = reference::hypervolume(&pts, &reference_pt).unwrap();
        assert!((hv_ws - hv_ref).abs() < 1e-12, "{hv_ws} vs {hv_ref}");
    }

    #[test]
    fn crowding_bit_identical_to_reference() {
        let front = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 3.0],
            vec![3.0, 2.0],
            vec![5.0, 1.0],
        ];
        let mut ws = MooWorkspace::new();
        let got = ws.crowding_distance(&front).unwrap().to_vec();
        let expected = reference::crowding_distance(&front).unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.to_bits(), e.to_bits(), "{g} vs {e}");
        }
    }

    #[test]
    fn crowding_of_subset_matches_materialised_call() {
        let pts = vec![
            vec![9.0, 9.0],
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![7.0, 7.0],
            vec![3.0, 2.0],
            vec![5.0, 1.0],
        ];
        let subset = [1usize, 2, 4, 5];
        let gathered: Vec<Vec<f64>> = subset.iter().map(|&i| pts[i].clone()).collect();
        let mut ws = MooWorkspace::new();
        let direct = ws.crowding_distance(&gathered).unwrap().to_vec();
        let via_subset = ws.crowding_distance_of(&pts, &subset).unwrap();
        assert_eq!(direct, via_subset);
    }

    #[test]
    fn one_dimensional_ties_share_fronts() {
        let pts = vec![vec![2.0], vec![1.0], vec![2.0], vec![3.0], vec![1.0]];
        let mut ws = MooWorkspace::new();
        assert_eq!(ws.pareto_ranks(&pts).unwrap(), &[1, 0, 1, 2, 0]);
        assert_eq!(ws.pareto_front(&pts).unwrap(), &[1, 4]);
    }

    #[test]
    fn errors_validate_once_and_propagate() {
        let mut ws = MooWorkspace::new();
        let mut fronts = Fronts::new();
        assert_eq!(
            ws.fast_non_dominated_sort_into::<Vec<f64>>(&[], &mut fronts)
                .unwrap_err(),
            MooError::EmptySet
        );
        assert!(ws.pareto_ranks(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(ws.crowding_distance(&[vec![f64::NAN]]).is_err());
        assert!(matches!(
            ws.hypervolume(&[vec![1.0, 1.0]], &[0.5, 2.0]).unwrap_err(),
            MooError::ReferenceNotDominating
        ));
        assert!(matches!(
            ws.hypervolume(&[vec![1.0, 1.0]], &[2.0]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        // a failed call must not poison the workspace
        assert_eq!(ws.pareto_ranks(&sample()).unwrap().len(), 6);
    }

    #[test]
    fn workspace_survives_shape_changes() {
        let mut ws = MooWorkspace::new();
        let two = sample();
        let three = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        for _ in 0..3 {
            assert_eq!(
                ws.pareto_ranks(&two).unwrap(),
                reference::pareto_ranks(&two).unwrap()
            );
            assert_eq!(
                ws.pareto_ranks(&three).unwrap(),
                reference::pareto_ranks(&three).unwrap()
            );
        }
    }

    // `dominates` is used by the first-front scan's flag invariants only
    // indirectly; keep a direct guard that the scan agrees with it
    #[test]
    fn first_front_scan_agrees_with_dominates() {
        let pts = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![2.0, 2.0, 4.0],
            vec![0.5, 3.0, 3.0],
        ];
        let mut ws = MooWorkspace::new();
        let front = ws.pareto_front(&pts).unwrap().to_vec();
        for (i, p) in pts.iter().enumerate() {
            let dominated = pts.iter().any(|q| dominates(q, p));
            assert_eq!(front.contains(&i), !dominated, "point {i}");
        }
    }
}
