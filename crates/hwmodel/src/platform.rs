//! The seven target platforms and their roofline latency/energy models.

use hwpr_nasbench::profile::{profile, NetworkProfile, OpProfile};
use hwpr_nasbench::{Architecture, Dataset, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The hardware platforms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// NVIDIA Jetson-class edge GPU.
    EdgeGpu,
    /// Google Edge TPU (int8 systolic accelerator).
    EdgeTpu,
    /// Raspberry Pi 4 (Cortex-A72 CPU).
    RaspberryPi4,
    /// Xilinx ZC706 FPGA accelerator.
    FpgaZc706,
    /// Xilinx ZCU102 FPGA accelerator.
    FpgaZcu102,
    /// Google Pixel 3 (mobile big.LITTLE CPU).
    Pixel3,
    /// Eyeriss (row-stationary CNN ASIC).
    Eyeriss,
}

impl Platform {
    /// All seven platforms, in the paper's order.
    pub const ALL: [Platform; 7] = [
        Platform::EdgeGpu,
        Platform::EdgeTpu,
        Platform::RaspberryPi4,
        Platform::FpgaZc706,
        Platform::FpgaZcu102,
        Platform::Pixel3,
        Platform::Eyeriss,
    ];

    /// Canonical index (0..7).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("in ALL")
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::EdgeGpu => "Edge GPU",
            Platform::EdgeTpu => "Edge TPU",
            Platform::RaspberryPi4 => "Raspberry Pi 4",
            Platform::FpgaZc706 => "FPGA ZC706",
            Platform::FpgaZcu102 => "FPGA ZCU102",
            Platform::Pixel3 => "Pixel 3",
            Platform::Eyeriss => "Eyeriss",
        }
    }

    /// The analytical cost-model parameters of this platform.
    pub fn spec(self) -> PlatformSpec {
        match self {
            // Wide SIMT device: huge peak, large kernel-launch overhead,
            // depthwise kernels badly underutilise the SMs.
            Platform::EdgeGpu => PlatformSpec {
                peak_gflops: 2000.0,
                bandwidth_gbps: 58.0,
                op_overhead_us: 25.0,
                lanes: 60_000.0,
                conv_eff: 0.60,
                depthwise_eff: 0.07,
                grouped_eff: 0.25,
                pool_eff: 0.15,
                linear_eff: 0.35,
                kernel1_eff: 0.75,
                kernel3_eff: 1.0,
                kernel5_eff: 0.95,
                skip_is_free: false,
                pool_host_us: 0.0,
                power_w: 10.0,
                dram_nj_per_byte: 20.0,
            },
            // Int8 systolic array: enormous dense-conv throughput, rigid
            // dataflow that hates depthwise and pooling, moderate overhead.
            Platform::EdgeTpu => PlatformSpec {
                peak_gflops: 4000.0,
                bandwidth_gbps: 25.0,
                op_overhead_us: 4.0,
                lanes: 120_000.0,
                conv_eff: 0.55,
                depthwise_eff: 0.05,
                grouped_eff: 0.15,
                pool_eff: 0.05,
                linear_eff: 0.50,
                kernel1_eff: 0.90,
                kernel3_eff: 1.0,
                kernel5_eff: 0.70,
                skip_is_free: false,
                pool_host_us: 60.0,
                power_w: 2.0,
                dram_nj_per_byte: 15.0,
            },
            // In-order-ish CPU: tiny peak, but NEON handles depthwise almost
            // as efficiently as dense convolution; negligible dispatch cost.
            Platform::RaspberryPi4 => PlatformSpec {
                peak_gflops: 24.0,
                bandwidth_gbps: 4.0,
                op_overhead_us: 0.4,
                lanes: 256.0,
                conv_eff: 0.50,
                depthwise_eff: 0.42,
                grouped_eff: 0.45,
                pool_eff: 0.35,
                linear_eff: 0.45,
                kernel1_eff: 0.95,
                kernel3_eff: 1.0,
                kernel5_eff: 0.9,
                skip_is_free: true,
                pool_host_us: 0.0,
                power_w: 6.0,
                dram_nj_per_byte: 40.0,
            },
            // Mid-size FPGA overlay: modest compute, narrow array that is
            // well utilised even on CIFAR maps, flexible dataflow — its
            // latency profile tracks dense-conv work like the mobile CPUs.
            Platform::FpgaZc706 => PlatformSpec {
                peak_gflops: 60.0,
                bandwidth_gbps: 4.2,
                op_overhead_us: 3.0,
                lanes: 1_024.0,
                conv_eff: 0.70,
                depthwise_eff: 0.10,
                grouped_eff: 0.30,
                pool_eff: 0.25,
                linear_eff: 0.40,
                kernel1_eff: 0.90,
                kernel3_eff: 1.0,
                kernel5_eff: 0.60,
                skip_is_free: false,
                pool_host_us: 0.0,
                power_w: 9.0,
                dram_nj_per_byte: 25.0,
            },
            // Large FPGA with a wide 3x3-tuned systolic array: heavily
            // underutilised by small maps, 1x1 convs map almost as badly
            // as 3x3 maps well, and pooling falls back to the host CPU —
            // so its ranking disagrees with every other platform (the
            // paper measures only 0.23 correlation against the ZC706).
            Platform::FpgaZcu102 => PlatformSpec {
                peak_gflops: 900.0,
                bandwidth_gbps: 19.0,
                op_overhead_us: 20.0,
                lanes: 200_000.0,
                conv_eff: 0.78,
                depthwise_eff: 0.08,
                grouped_eff: 0.22,
                pool_eff: 0.10,
                linear_eff: 0.30,
                kernel1_eff: 0.12,
                kernel3_eff: 1.0,
                kernel5_eff: 0.85,
                skip_is_free: false,
                pool_host_us: 320.0,
                power_w: 20.0,
                dram_nj_per_byte: 22.0,
            },
            // Mobile big-core CPU: like the Pi but faster and with better
            // bandwidth; depthwise-friendly.
            Platform::Pixel3 => PlatformSpec {
                peak_gflops: 40.0,
                bandwidth_gbps: 12.0,
                op_overhead_us: 0.3,
                lanes: 512.0,
                conv_eff: 0.48,
                depthwise_eff: 0.44,
                grouped_eff: 0.42,
                pool_eff: 0.35,
                linear_eff: 0.45,
                kernel1_eff: 0.95,
                kernel3_eff: 1.0,
                kernel5_eff: 0.9,
                skip_is_free: true,
                pool_host_us: 0.0,
                power_w: 4.0,
                dram_nj_per_byte: 35.0,
            },
            // Row-stationary ASIC: modest peak, excellent 3x3 reuse, weak
            // on 1x1 (no filter reuse) and depthwise (PE underuse).
            Platform::Eyeriss => PlatformSpec {
                peak_gflops: 84.0,
                bandwidth_gbps: 3.0,
                op_overhead_us: 1.5,
                lanes: 3_000.0,
                conv_eff: 0.80,
                depthwise_eff: 0.12,
                grouped_eff: 0.30,
                pool_eff: 0.20,
                linear_eff: 0.35,
                kernel1_eff: 0.15,
                kernel3_eff: 1.0,
                kernel5_eff: 0.75,
                skip_is_free: false,
                pool_host_us: 0.0,
                power_w: 0.45,
                dram_nj_per_byte: 18.0,
            },
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Roofline parameters of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Peak compute throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Main-memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-op dispatch/launch overhead in microseconds.
    pub op_overhead_us: f64,
    /// Parallel width: output elements needed to saturate the device.
    pub lanes: f64,
    /// Efficiency (fraction of peak) for dense convolutions.
    pub conv_eff: f64,
    /// Efficiency for depthwise convolutions.
    pub depthwise_eff: f64,
    /// Efficiency for grouped convolutions.
    pub grouped_eff: f64,
    /// Efficiency for pooling.
    pub pool_eff: f64,
    /// Efficiency for fully-connected layers.
    pub linear_eff: f64,
    /// Kernel-size multiplier for 1x1 kernels.
    pub kernel1_eff: f64,
    /// Kernel-size multiplier for 3x3 kernels.
    pub kernel3_eff: f64,
    /// Kernel-size multiplier for 5x5 kernels.
    pub kernel5_eff: f64,
    /// Whether identity ops are fused away (CPUs) or cost a copy.
    pub skip_is_free: bool,
    /// Extra fixed cost per pooling op in microseconds (host fallback on
    /// accelerators without a pooling engine).
    pub pool_host_us: f64,
    /// Average active power in watts (energy model).
    pub power_w: f64,
    /// DRAM access energy in nanojoules per byte.
    pub dram_nj_per_byte: f64,
}

impl PlatformSpec {
    /// Latency of one op in seconds under this spec.
    pub fn op_latency_s(&self, op: &OpProfile) -> f64 {
        match op.kind {
            OpKind::Zero => return 0.0,
            OpKind::Skip => {
                if self.skip_is_free {
                    return 0.0;
                }
                // identity costs one activation copy
                let bytes = (op.input_hw * op.input_hw * op.in_channels * 4) as f64;
                return bytes / (self.bandwidth_gbps * 1e9) + self.op_overhead_us * 1e-6;
            }
            _ => {}
        }
        let eff = self.kind_efficiency(op.kind) * self.kernel_efficiency(op.kernel);
        let concurrency = (op.output_hw * op.output_hw * op.out_channels) as f64;
        let utilisation = concurrency / (concurrency + self.lanes);
        let compute_s = op.flops / (self.peak_gflops * 1e9 * eff * utilisation.max(1e-6));
        let memory_s = op.memory_bytes() / (self.bandwidth_gbps * 1e9);
        let fallback_s = if op.kind == OpKind::Pool {
            self.pool_host_us * 1e-6
        } else {
            0.0
        };
        compute_s.max(memory_s) + self.op_overhead_us * 1e-6 + fallback_s
    }

    fn kind_efficiency(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Conv => self.conv_eff,
            OpKind::DepthwiseConv => self.depthwise_eff,
            OpKind::GroupedConv => self.grouped_eff,
            OpKind::Pool => self.pool_eff,
            OpKind::Linear => self.linear_eff,
            OpKind::Skip | OpKind::Zero => 1.0,
        }
    }

    fn kernel_efficiency(&self, kernel: usize) -> f64 {
        match kernel {
            0 | 1 => self.kernel1_eff,
            3 => self.kernel3_eff,
            _ => self.kernel5_eff,
        }
    }

    /// Latency of a whole profiled network in milliseconds.
    pub fn network_latency_ms(&self, net: &NetworkProfile) -> f64 {
        net.ops.iter().map(|op| self.op_latency_s(op)).sum::<f64>() * 1e3
    }

    /// Energy of one inference in millijoules: active power over the run
    /// plus DRAM traffic energy.
    pub fn network_energy_mj(&self, net: &NetworkProfile) -> f64 {
        let latency_s = self.network_latency_ms(net) * 1e-3;
        let bytes: f64 = net.ops.iter().map(OpProfile::memory_bytes).sum();
        self.power_w * latency_s * 1e3 + self.dram_nj_per_byte * bytes * 1e-6
    }
}

/// End-to-end latency of `arch` on `platform` for `dataset` inputs, in
/// milliseconds.
pub fn latency_ms(arch: &Architecture, dataset: Dataset, platform: Platform) -> f64 {
    platform.spec().network_latency_ms(&profile(arch, dataset))
}

/// Per-inference energy of `arch` on `platform` in millijoules.
pub fn energy_mj(arch: &Architecture, dataset: Dataset, platform: Platform) -> f64 {
    platform.spec().network_energy_mj(&profile(arch, dataset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_nasbench::{FbnetOp, Nb201Op, SearchSpaceId};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn conv_arch() -> Architecture {
        Architecture::nb201([Nb201Op::NorConv3x3; 6])
    }

    #[test]
    fn platform_index_and_names() {
        for (i, p) in Platform::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn latency_positive_and_deterministic() {
        for p in Platform::ALL {
            let l1 = latency_ms(&conv_arch(), Dataset::Cifar10, p);
            let l2 = latency_ms(&conv_arch(), Dataset::Cifar10, p);
            assert!(l1 > 0.0, "{p}");
            assert_eq!(l1, l2);
        }
    }

    #[test]
    fn bigger_network_is_slower_everywhere() {
        let small = Architecture::nb201([Nb201Op::SkipConnect; 6]);
        for p in Platform::ALL {
            assert!(
                latency_ms(&conv_arch(), Dataset::Cifar10, p)
                    > latency_ms(&small, Dataset::Cifar10, p),
                "{p}"
            );
        }
    }

    #[test]
    fn depthwise_relative_cost_is_platform_dependent() {
        // depthwise-heavy vs dense-heavy FBNet architectures
        let dw = Architecture::fbnet([FbnetOp::K3E1; 22]);
        let dense_ish = Architecture::fbnet([FbnetOp::K3E6; 22]); // more 1x1 dense work
        let ratio = |p: Platform| {
            latency_ms(&dense_ish, Dataset::Cifar10, p) / latency_ms(&dw, Dataset::Cifar10, p)
        };
        // mobile CPUs pay more for the extra dense work than the GPU does
        assert!(
            ratio(Platform::Pixel3) > ratio(Platform::EdgeGpu),
            "pixel {} vs gpu {}",
            ratio(Platform::Pixel3),
            ratio(Platform::EdgeGpu)
        );
    }

    #[test]
    fn smaller_inputs_are_faster() {
        for p in Platform::ALL {
            assert!(
                latency_ms(&conv_arch(), Dataset::ImageNet16, p)
                    < latency_ms(&conv_arch(), Dataset::Cifar10, p),
                "{p}"
            );
        }
    }

    #[test]
    fn energy_positive_and_scales_with_latency_platforms() {
        let e_gpu = energy_mj(&conv_arch(), Dataset::Cifar10, Platform::EdgeGpu);
        let e_eyeriss = energy_mj(&conv_arch(), Dataset::Cifar10, Platform::Eyeriss);
        assert!(e_gpu > 0.0 && e_eyeriss > 0.0);
        // the ASIC is far more energy-efficient than the GPU
        assert!(e_eyeriss < e_gpu);
    }

    #[test]
    fn zero_op_costs_nothing_and_skip_costs_little() {
        let spec = Platform::EdgeGpu.spec();
        let zero = OpProfile {
            name: "z".into(),
            kind: OpKind::Zero,
            flops: 0.0,
            params: 0.0,
            input_hw: 32,
            output_hw: 32,
            in_channels: 16,
            out_channels: 16,
            kernel: 0,
            groups: 1,
        };
        assert_eq!(spec.op_latency_s(&zero), 0.0);
        let skip = OpProfile {
            kind: OpKind::Skip,
            name: "s".into(),
            ..zero.clone()
        };
        let conv = OpProfile {
            kind: OpKind::Conv,
            flops: 1e9,
            kernel: 3,
            name: "c".into(),
            ..zero
        };
        assert!(spec.op_latency_s(&skip) < spec.op_latency_s(&conv));
    }

    #[test]
    fn cpu_skips_are_free() {
        let spec = Platform::RaspberryPi4.spec();
        let skip = OpProfile {
            name: "s".into(),
            kind: OpKind::Skip,
            flops: 0.0,
            params: 0.0,
            input_hw: 32,
            output_hw: 32,
            in_channels: 64,
            out_channels: 64,
            kernel: 0,
            groups: 1,
        };
        assert_eq!(spec.op_latency_s(&skip), 0.0);
    }

    #[test]
    fn random_archs_have_finite_costs_everywhere() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            for _ in 0..10 {
                let a = Architecture::random(space, &mut rng);
                for p in Platform::ALL {
                    for d in Dataset::ALL {
                        let l = latency_ms(&a, d, p);
                        let e = energy_mj(&a, d, p);
                        assert!(l.is_finite() && l >= 0.0);
                        assert!(e.is_finite() && e >= 0.0);
                    }
                }
            }
        }
    }
}
