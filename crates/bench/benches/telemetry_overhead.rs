//! Cost of the telemetry layer on the training hot path: the same
//! steady-state fused train step measured three ways.
//!
//! - `recorder_off` — telemetry disabled (the default); every
//!   instrumentation point is one relaxed atomic load. The PR acceptance
//!   point: within 2 % of the uninstrumented PR-2 number.
//! - `recorder_null` — telemetry enabled with a [`NullSink`]: events are
//!   built and timers read, then discarded, isolating pure
//!   instrumentation cost from sink IO.
//! - `recorder_jsonl` — telemetry enabled with a real JSONL sink writing
//!   to an in-memory buffer: encode cost included, file IO excluded.

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::train_step::{step_data, FusedTrainer, StepConfig};
use hwpr_obs::sink::{JsonlSink, NullSink};
use hwpr_obs::Recorder;
use std::sync::Arc;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let config = StepConfig::paper();
    let data = step_data(&config);
    let mut trainer = FusedTrainer::new(&config);
    for _ in 0..2 {
        trainer.step(&data);
    }

    hwpr_obs::shutdown();
    group.bench_function("recorder_off", |b| b.iter(|| trainer.step(&data)));

    hwpr_obs::install(Arc::new(NullSink) as Arc<dyn Recorder>);
    for _ in 0..2 {
        trainer.step(&data);
    }
    group.bench_function("recorder_null", |b| b.iter(|| trainer.step(&data)));

    hwpr_obs::install(
        Arc::new(JsonlSink::to_writer(Box::new(std::io::sink()))) as Arc<dyn Recorder>
    );
    for _ in 0..2 {
        trainer.step(&data);
    }
    group.bench_function("recorder_jsonl", |b| b.iter(|| trainer.step(&data)));
    hwpr_obs::shutdown();

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
