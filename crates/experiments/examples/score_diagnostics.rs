//! Dev diagnostic: how the trained HW-PR-NAS score behaves along the true
//! Pareto front (flat scores = good front coverage in top-k selection).
use hwpr_experiments::{Harness, Scale};
use hwpr_hwmodel::Platform;
use hwpr_moo::pareto_ranks;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};

fn main() {
    let h = Harness::with_scale(Scale::Fast);
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let data = h.dataset(SearchSpaceId::NasBench201, dataset, platform);
    let model = h.train_hw_pr_nas(&data, 1);
    let archs: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
    let objs: Vec<Vec<f64>> = data.samples().iter().map(|s| s.objectives()).collect();
    let ranks = pareto_ranks(&objs).unwrap();
    let scores = model.predict_scores(&archs, platform).unwrap();
    // per-rank score stats for the first 6 fronts
    for r in 0..6 {
        let vals: Vec<f64> = ranks
            .iter()
            .zip(&scores)
            .filter(|(&rk, _)| rk == r)
            .map(|(_, &s)| s)
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "rank {r}: n={:<4} score mean {mean:7.3} min {min:7.3} max {max:7.3}",
            vals.len()
        );
    }
    // front-0 members: score vs position on the front
    println!("\nfront-0 members (err, lat, score):");
    let mut f0: Vec<(f64, f64, f64)> = ranks
        .iter()
        .zip(&objs)
        .zip(&scores)
        .filter(|((&rk, _), _)| rk == 0)
        .map(|((_, o), &s)| (o[0], o[1], s))
        .collect();
    f0.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (e, l, s) in f0 {
        println!("  err {e:6.2}  lat {l:7.3}  score {s:7.3}");
    }
}
