//! The scalable variant (§III-F): add an energy objective by fine-tuning
//! only the score MLP for five epochs with frozen encoders, then search a
//! three-objective Pareto front (accuracy, latency, energy).
//!
//! ```text
//! cargo run --release --example three_objectives
//! ```

use hw_pr_nas::core::scalable::ScalableHwPrNas;
use hw_pr_nas::core::{ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::moo::{hypervolume, nadir_reference_point, pareto_front};
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::search::{MeasuredEvaluator, Moea, MoeaConfig, ScoreEvaluator, SearchError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(300),
        seed: 3,
    });
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let data = SurrogateDataset::from_simbench(&bench, dataset, platform)?;

    println!("training the scalable model on two objectives ...");
    let mut model = ScalableHwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::fast())?;
    println!("fine-tuning 5 epochs (frozen encoders) to add energy ...");
    model.extend_to_three_objectives(&data, 5, 0)?;
    assert_eq!(model.objectives(), 3);

    let mut evaluator = ScoreEvaluator::from_fn(
        "Scalable HW-PR-NAS",
        Box::new(move |archs| {
            model
                .predict_scores(archs)
                .map_err(|e| SearchError::Surrogate(e.to_string()))
        }),
    );
    let moea = Moea::new(MoeaConfig {
        population: 24,
        generations: 12,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })?;
    let result = moea.run(&mut evaluator)?;

    let oracle = MeasuredEvaluator::for_bench(&bench, dataset, platform);
    let objectives: Vec<Vec<f64>> = result
        .population
        .iter()
        .map(|a| oracle.true_objectives3(a))
        .collect();
    let front_idx = pareto_front(&objectives)?;
    let front: Vec<Vec<f64>> = front_idx.iter().map(|&i| objectives[i].clone()).collect();
    let reference = nadir_reference_point(&objectives, 1.0)?;
    let hv = hypervolume(&front, &reference)?;
    println!(
        "\n3-objective front: {} architectures, hypervolume {hv:.1}",
        front.len()
    );
    println!("error %  | latency ms | energy mJ");
    let mut sorted = front;
    sorted.sort_by(|a, b| a[1].total_cmp(&b[1]));
    for p in sorted.iter().take(15) {
        println!("{:7.2}  | {:9.3}  | {:8.3}", p[0], p[1], p[2]);
    }
    Ok(())
}
