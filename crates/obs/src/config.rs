//! Run-level telemetry wiring: the `HWPR_TELEMETRY` environment variable.
//!
//! | value            | effect                                   |
//! |------------------|------------------------------------------|
//! | unset, `off`, `0`| telemetry disabled (the default)         |
//! | `stderr`         | JSONL events to stderr                   |
//! | `jsonl:PATH`     | JSONL events to the file at `PATH`       |

use crate::sink::JsonlSink;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// The environment variable consulted by [`TelemetrySpec::from_env`].
pub const TELEMETRY_ENV: &str = "HWPR_TELEMETRY";

/// A parsed telemetry destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetrySpec {
    /// Telemetry disabled.
    Off,
    /// JSONL to stderr.
    Stderr,
    /// JSONL to a file.
    Jsonl(PathBuf),
}

impl TelemetrySpec {
    /// Parses a `HWPR_TELEMETRY` value.
    ///
    /// # Errors
    ///
    /// Returns a message for unrecognised specs (including `jsonl:` with
    /// an empty path).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        match spec {
            "" | "off" | "0" | "none" => Ok(Self::Off),
            "stderr" | "jsonl:stderr" => Ok(Self::Stderr),
            _ => match spec.strip_prefix("jsonl:") {
                Some("") => Err("HWPR_TELEMETRY=jsonl: needs a file path".to_string()),
                Some(path) => Ok(Self::Jsonl(PathBuf::from(path))),
                None => Err(format!(
                    "unrecognised HWPR_TELEMETRY value {spec:?} \
                     (expected off | stderr | jsonl:PATH)"
                )),
            },
        }
    }

    /// Reads and parses [`TELEMETRY_ENV`]; unset means [`Self::Off`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::parse`] errors.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(TELEMETRY_ENV) {
            Ok(value) => Self::parse(&value),
            Err(_) => Ok(Self::Off),
        }
    }

    /// Installs the matching sink as the global recorder and opens the
    /// run record with the `trace.meta` event ([`crate::trace_id`] +
    /// pid). Returns whether telemetry ended up enabled.
    ///
    /// Missing parent directories of a [`Self::Jsonl`] path are created.
    ///
    /// # Errors
    ///
    /// Propagates directory-/file-creation failures for [`Self::Jsonl`].
    /// Prefer [`Self::install_or_warn`] in binaries: telemetry is
    /// best-effort and must not kill the run it observes.
    pub fn install(&self) -> io::Result<bool> {
        match self {
            Self::Off => Ok(false),
            Self::Stderr => {
                crate::install(Arc::new(JsonlSink::to_stderr()));
                crate::emit_run_metadata();
                Ok(true)
            }
            Self::Jsonl(path) => {
                crate::install(Arc::new(JsonlSink::to_file(path)?));
                crate::emit_run_metadata();
                Ok(true)
            }
        }
    }

    /// [`Self::install`], degraded to a stderr warning on failure: an
    /// unwritable `jsonl:PATH` leaves telemetry off and the run alive.
    /// Returns whether telemetry ended up enabled.
    pub fn install_or_warn(&self) -> bool {
        match self.install() {
            Ok(enabled) => enabled,
            Err(err) => {
                eprintln!(
                    "[hwpr warn] could not open telemetry sink ({self:?}): {err}; \
                     telemetry disabled"
                );
                false
            }
        }
    }
}

/// One-call wiring for binaries: parse `HWPR_TELEMETRY` and install the
/// sink. Configuration problems are reported on stderr (never fatal — a
/// bad telemetry spec must not kill an experiment) and leave telemetry
/// off. Returns whether telemetry is enabled.
pub fn init_from_env() -> bool {
    match TelemetrySpec::from_env() {
        Ok(spec) => spec.install_or_warn(),
        Err(err) => {
            eprintln!("[hwpr warn] {err}");
            false
        }
    }
}

/// Shared warn-and-default parser for `HWPR_*` environment overrides.
///
/// Every tunable in the workspace (`HWPR_THREADS`, `HWPR_INFER_BATCH`,
/// `HWPR_INFER_PRECISION`, `HWPR_SCALE`) follows the same policy: a
/// value `parse` accepts is used as-is; anything else warns **through
/// the telemetry event sink** — naming the variable, the expected
/// grammar and the fallback actually taken — and returns `fallback`.
/// A typo must never silently change an experiment's configuration, and
/// must never kill it either.
pub fn spec_or<T: std::fmt::Display>(
    name: &str,
    expected: &str,
    spec: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    fallback: T,
) -> T {
    match parse(spec) {
        Some(value) => value,
        None => {
            crate::warn(format!(
                "invalid {name} value {spec:?} (expected {expected}); \
                 falling back to {fallback}"
            ));
            fallback
        }
    }
}

/// Reads the environment variable `name` and resolves it with the
/// [`spec_or`] warn-and-default policy; an unset variable yields
/// `unset()` (which may differ from the `invalid` fallback — e.g.
/// `HWPR_THREADS` defaults to the machine's parallelism when unset but
/// drops to 1 worker on garbage).
pub fn env_or_else<T: std::fmt::Display>(
    name: &str,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    unset: impl FnOnce() -> T,
    invalid: T,
) -> T {
    match std::env::var(name) {
        Ok(spec) => spec_or(name, expected, &spec, parse, invalid),
        Err(_) => unset(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_or_uses_parsed_values_and_falls_back_on_garbage() {
        assert_eq!(
            spec_or(
                "HWPR_X",
                "a positive integer",
                "4",
                |s| s.parse::<usize>().ok(),
                7
            ),
            4
        );
        assert_eq!(
            spec_or(
                "HWPR_X",
                "a positive integer",
                "lots",
                |s| s.parse::<usize>().ok(),
                7
            ),
            7
        );
    }

    #[test]
    fn env_or_else_distinguishes_unset_from_invalid() {
        // unset: the `unset` closure decides (no warning)
        assert_eq!(
            env_or_else(
                "HWPR_TEST_UNSET_SENTINEL",
                "a positive integer",
                |s| s.parse::<usize>().ok(),
                || 42,
                1,
            ),
            42
        );
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(TelemetrySpec::parse("off").unwrap(), TelemetrySpec::Off);
        assert_eq!(TelemetrySpec::parse("").unwrap(), TelemetrySpec::Off);
        assert_eq!(TelemetrySpec::parse("0").unwrap(), TelemetrySpec::Off);
        assert_eq!(
            TelemetrySpec::parse("stderr").unwrap(),
            TelemetrySpec::Stderr
        );
        assert_eq!(
            TelemetrySpec::parse("jsonl:/tmp/run.jsonl").unwrap(),
            TelemetrySpec::Jsonl(PathBuf::from("/tmp/run.jsonl"))
        );
        assert_eq!(
            TelemetrySpec::parse(" jsonl:run.jsonl ").unwrap(),
            TelemetrySpec::Jsonl(PathBuf::from("run.jsonl"))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TelemetrySpec::parse("jsonl:").is_err());
        assert!(TelemetrySpec::parse("csv:/tmp/x").is_err());
    }
}
