//! Regenerates the training-loss ablation (paper footnote 2).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::ablation_loss::run(&harness);
    hwpr_experiments::write_report("ablation_loss", &report);
}
