//! Prints the cross-platform latency correlation matrices (dev aid).
use hwpr_hwmodel::correlation::latency_correlation;
use hwpr_nasbench::{Dataset, SearchSpaceId};

fn main() {
    for ds in [Dataset::Cifar10, Dataset::ImageNet16] {
        let m = latency_correlation(SearchSpaceId::NasBench201, ds, 300, 0);
        println!("== NB201 {ds} ==\n{}", m.to_markdown());
    }
    let m = latency_correlation(SearchSpaceId::FBNet, Dataset::Cifar10, 300, 0);
    println!("== FBNet CIFAR-10 ==\n{}", m.to_markdown());
}
