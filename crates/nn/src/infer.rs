//! Tape-free frozen forms of the layers, compiled once from trained
//! parameters for the inference hot path.
//!
//! Each `Frozen*` type is built by its layer's `freeze(&params)` method: it
//! copies the trained values out of [`crate::Params`], packs every GEMM
//! weight into a persistent [`PackedWeight`] panel, and runs the forward
//! pass as direct fused-kernel calls ([`hwpr_autograd::apply_bias_act`],
//! [`hwpr_autograd::lstm_step_frozen`], pooled GCN propagation) — no tape,
//! no op recording, no gradient buffers, and dropout statically elided
//! (dropout is already the identity at inference).
//!
//! # Error budget
//!
//! The frozen-vs-tape contract is a documented error budget, not f32
//! bit-identity: at f32 a frozen forward must stay within **max-abs
//! ≤ 1e-5** of the taped layer with **Kendall τ = 1.0** on the
//! differential fixtures; at [`Precision::F16`]/[`Precision::Int8`] the
//! guarantee is rank preservation (**τ ≥ 0.99** per platform head).
//! Budget rather than bits keeps the freeze path free to specialise —
//! monomorphized fixed-shape GEMM kernels
//! ([`PackedWeight::pack_for_inference`]), division-free activations,
//! precision-tiered panels — without renegotiating the tests each time.
//! In the current implementation the f32 path happens to land on exact
//! bit-equality anyway (the frozen layers reuse the tape's fused
//! pointwise kernels, and both the prepacked and static GEMM paths are
//! bit-identical to the unpacked driver), but only the budget is
//! contractual. The tape stays the reference implementation, anchored by
//! differential tests in `hwpr-core`; the rational-divide activations the
//! fast kernels replaced live on in `hwpr_tensor::reference` as ground
//! truth.
//!
//! All scratch storage comes from a caller-held [`BufferPool`], so a warmed
//! forward pass performs no heap allocation.

use crate::{NnError, Result};
use hwpr_autograd::{apply_bias_act, lstm_step_frozen, Act, AutogradError};
use hwpr_tensor::{BufferPool, Matrix, PackedWeight, Precision};

/// Whether a packed panel belongs to an encoder GEMM or an MLP regressor
/// stack — the quantisation policy differs between the two.
#[derive(Debug, Clone, Copy)]
enum PanelRole {
    /// GCN layers and LSTM steps: compute-dominant, noise-tolerant bulk.
    Encoder,
    /// [`FrozenLinear`] regressor layers feeding scalar heads.
    Head,
}

/// The storage precision actually used for a `k x n` GEMM weight when the
/// model is frozen at `requested` precision.
///
/// Quantisation follows the usual backbone/head split:
///
/// - encoder GEMMs take `requested` as-is, including int8 — they dominate
///   the FLOP count and their noise is filtered by downstream layers;
/// - the MLP regressor stacks cap at f16 under an int8 freeze: their
///   outputs reach the scalar rank-critical heads within a hop or two and
///   the reductions are too short for per-channel int8 noise to average
///   out (int8 regressors cost ~0.01 Kendall τ; f16 is measurably free);
/// - degenerate panels (`n == 1` scalar heads, `k < 4` dots shorter than
///   one int8 lane group) stay f32.
///
/// [`Precision::F16`] quantises everything (binary16 weight rounding is
/// far below the model's own noise floor).
fn panel_precision(requested: Precision, role: PanelRole, k: usize, n: usize) -> Precision {
    match (requested, role) {
        (Precision::Int8, _) if n == 1 || k < 4 => Precision::F32,
        (Precision::Int8, PanelRole::Head) => Precision::F16,
        (p, _) => p,
    }
}

/// A [`crate::layers::Linear`] compiled for tape-free inference: prepacked
/// weight panel plus a copied bias row.
#[derive(Debug)]
pub struct FrozenLinear {
    weight: PackedWeight,
    bias: Option<Matrix>,
    in_dim: usize,
    out_dim: usize,
}

impl FrozenLinear {
    /// Packs `weight` and copies `bias` out of the parameter store.
    pub(crate) fn from_parts(
        weight: &Matrix,
        bias: Option<&Matrix>,
        in_dim: usize,
        out_dim: usize,
        precision: Precision,
    ) -> Self {
        let mut packed = PackedWeight::new();
        packed.pack_for_inference(
            weight,
            panel_precision(precision, PanelRole::Head, in_dim, out_dim),
        );
        Self {
            weight: packed,
            bias: bias.cloned(),
            in_dim,
            out_dim,
        }
    }

    /// The storage precision of the packed weight panel (may be f32 under
    /// an int8 freeze when the layer is exempted, see [`panel_precision`]).
    pub fn precision(&self) -> Precision {
        self.weight.precision()
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `act(x @ W + b)` into `out` (`[batch, out_dim]`): the frozen form of
    /// the fused `linear_act` tape node, sharing its pointwise tail.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x` or `out` mismatch the layer shape.
    pub fn forward_act_into(&self, x: &Matrix, act: Act, out: &mut Matrix) -> Result<()> {
        x.matmul_prepacked_into(&self.weight, out)
            .map_err(AutogradError::from)?;
        apply_bias_act(out, self.bias.as_ref(), act)?;
        Ok(())
    }
}

/// A [`crate::layers::Mlp`] compiled for tape-free inference. Hidden
/// layers run the fused affine + activation kernel; the final layer stays
/// linear and dropout is statically elided.
#[derive(Debug)]
pub struct FrozenMlp {
    layers: Vec<FrozenLinear>,
    act: Act,
}

impl FrozenMlp {
    /// Assembles a frozen MLP from prepacked layers.
    pub(crate) fn from_parts(layers: Vec<FrozenLinear>, act: Act) -> Self {
        Self { layers, act }
    }

    /// Output dimension of the final layer.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, FrozenLinear::out_dim)
    }

    /// Number of affine layers (one GEMM each per forward pass).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Applies the network to a pooled `x` (`[batch, input_dim]`),
    /// consuming it and returning a pooled `[batch, output_dim]` result.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from mismatched inputs.
    pub fn forward(&self, pool: &mut BufferPool, x: Matrix) -> Result<Matrix> {
        let _span = hwpr_obs::span("infer.mlp");
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last { self.act } else { Act::Identity };
            // fully overwritten by the prepacked GEMM: no zero-fill needed
            let mut out = pool.take_uninit(h.rows(), layer.out_dim());
            layer.forward_act_into(&h, act, &mut out)?;
            pool.put(h);
            h = out;
        }
        Ok(h)
    }
}

/// One frozen LSTM layer: the stacked `[W_ih; W_hh]` gate weight packed
/// once (the tape packs the same concatenation per pass) plus its bias.
#[derive(Debug)]
struct FrozenLstmCell {
    weight: PackedWeight,
    bias: Matrix,
    in_dim: usize,
}

/// A [`crate::layers::Lstm`] compiled for tape-free inference.
#[derive(Debug)]
pub struct FrozenLstm {
    cells: Vec<FrozenLstmCell>,
    input_dim: usize,
    hidden_dim: usize,
}

impl FrozenLstm {
    /// Assembles a frozen LSTM; `stacked` holds one `[W_ih; W_hh]` matrix
    /// and one bias row per layer.
    pub(crate) fn from_parts(
        stacked: Vec<(Matrix, Matrix)>,
        input_dim: usize,
        hidden_dim: usize,
        precision: Precision,
    ) -> Self {
        let cells = stacked
            .into_iter()
            .enumerate()
            .map(|(l, (w, bias))| {
                let (k, n) = w.shape();
                let mut packed = PackedWeight::new();
                packed.pack_for_inference(&w, panel_precision(precision, PanelRole::Encoder, k, n));
                FrozenLstmCell {
                    weight: packed,
                    bias,
                    in_dim: if l == 0 { input_dim } else { hidden_dim },
                }
            })
            .collect();
        Self {
            cells,
            input_dim,
            hidden_dim,
        }
    }

    /// Input feature dimension of the first layer.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Runs the recurrence over `steps` (each `[batch, input_dim]`) and
    /// returns the pooled final hidden state of the top layer
    /// (`[batch, hidden]`).
    ///
    /// The loop is step-major where the taped path is layer-major, but the
    /// dataflow (and therefore every scalar operation's inputs) is
    /// identical, so the result is bit-identical to
    /// [`crate::layers::Lstm::forward`]. Layer states thread through as
    /// packed `[h | c]` matrices; a deeper layer reads the first `hidden`
    /// columns of the layer below's state directly, eliding the tape path's
    /// per-step column slice. All working buffers are checked out of
    /// `pool` **once per layer** and ping-ponged across steps (rather
    /// than cycled through the pool per step — at small recurrence shapes
    /// the per-step pool traffic was measurable); `scratch` is caller-held
    /// and keeps its `Vec` capacities across calls.
    ///
    /// # Errors
    ///
    /// Returns a config error when `steps` is empty, or a shape error when
    /// step shapes are inconsistent.
    pub fn forward(
        &self,
        pool: &mut BufferPool,
        steps: &[Matrix],
        scratch: &mut LstmScratch,
    ) -> Result<Matrix> {
        if steps.is_empty() {
            return Err(NnError::Config("LSTM received an empty sequence".into()));
        }
        let _span = hwpr_obs::span("infer.lstm");
        let batch = steps[0].rows();
        let h = self.hidden_dim;
        let LstmScratch {
            states,
            next,
            xh,
            gates,
        } = scratch;
        // recycle anything a previous erroring call left behind
        for buf in states.drain(..).chain(next.drain(..)) {
            pool.put(buf);
        }
        for buf in xh.drain(..).chain(gates.drain(..)) {
            pool.put(buf);
        }
        for cell in &self.cells {
            // pool.take zero-fills, matching the taped zero initial [h | c];
            // the rest are fully overwritten by every lstm_step_frozen
            states.push(pool.take(batch, 2 * h));
            next.push(pool.take_uninit(batch, 2 * h));
            xh.push(pool.take_uninit(batch, cell.in_dim + h));
            gates.push(pool.take_uninit(batch, 4 * h));
        }
        for step in steps {
            for (l, cell) in self.cells.iter().enumerate() {
                {
                    // layer l > 0 reads the h-part of the layer below's
                    // state, already updated for this step
                    let x = if l == 0 { step } else { &states[l - 1] };
                    lstm_step_frozen(
                        x,
                        cell.in_dim,
                        &states[l],
                        &cell.weight,
                        &cell.bias,
                        &mut xh[l],
                        &mut gates[l],
                        &mut next[l],
                    )?;
                }
                // ping-pong: the freshly-written state becomes current;
                // the old buffer is next step's (fully overwritten) target
                std::mem::swap(&mut states[l], &mut next[l]);
            }
        }
        let mut out = pool.take_uninit(batch, h);
        let top = states.last().expect("at least one layer");
        for r in 0..batch {
            out.row_mut(r).copy_from_slice(&top.row(r)[..h]);
        }
        for buf in states.drain(..).chain(next.drain(..)) {
            pool.put(buf);
        }
        for buf in xh.drain(..).chain(gates.drain(..)) {
            pool.put(buf);
        }
        Ok(out)
    }
}

/// Caller-held working set for [`FrozenLstm::forward`]: per-layer state,
/// next-state, `[x | h]` staging and gate buffers. The `Vec`s keep their
/// capacity across calls; the matrices inside are pooled per call.
#[derive(Debug, Default)]
pub struct LstmScratch {
    states: Vec<Matrix>,
    next: Vec<Matrix>,
    xh: Vec<Matrix>,
    gates: Vec<Matrix>,
}

/// A [`crate::layers::GcnLayer`] compiled for tape-free inference.
#[derive(Debug)]
pub struct FrozenGcnLayer {
    weight: PackedWeight,
    bias: Matrix,
    out_dim: usize,
}

impl FrozenGcnLayer {
    /// Packs the layer weight and copies the bias.
    pub(crate) fn from_parts(
        weight: &Matrix,
        bias: &Matrix,
        out_dim: usize,
        precision: Precision,
    ) -> Self {
        let (k, n) = weight.shape();
        let mut packed = PackedWeight::new();
        packed.pack_for_inference(weight, panel_precision(precision, PanelRole::Encoder, k, n));
        Self {
            weight: packed,
            bias: bias.clone(),
            out_dim,
        }
    }

    /// Output node-feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `relu(Â · x · W + b)` per node block: consumes the pooled
    /// `[batch * nodes, in_dim]` input and returns the pooled output.
    /// Adjacencies are borrowed per sample, exactly as in the taped
    /// [`crate::layers::GcnLayer::forward`].
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure or feature dimension
    /// is inconsistent.
    pub fn forward(
        &self,
        pool: &mut BufferPool,
        x: Matrix,
        adjacency: &[impl std::borrow::Borrow<Matrix>],
        nodes: usize,
    ) -> Result<Matrix> {
        self.forward_each(pool, x, adjacency.len(), |b| adjacency[b].borrow(), nodes)
    }

    /// [`FrozenGcnLayer::forward`] with lazily fetched adjacency: block `b`
    /// of the batch is aggregated against `adj_of(b)` via the direct
    /// row-axpy kernel (no per-sample GEMM dispatch, no staging copies),
    /// then the whole `[batch * nodes, out_dim]` product runs as one
    /// prepacked GEMM. Bit-identical to the taped layer modulo the sign of
    /// zero (see `block_left_matmul_each_into`).
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure or feature dimension
    /// is inconsistent.
    pub fn forward_each<'a>(
        &self,
        pool: &mut BufferPool,
        x: Matrix,
        blocks: usize,
        adj_of: impl Fn(usize) -> &'a Matrix,
        nodes: usize,
    ) -> Result<Matrix> {
        let _span = hwpr_obs::span("infer.gcn");
        let mut agg = pool.take_uninit(x.rows(), x.cols());
        x.block_left_matmul_each_into(blocks, nodes, adj_of, &mut agg)
            .map_err(AutogradError::from)?;
        pool.put(x);
        let mut out = pool.take_uninit(agg.rows(), self.out_dim);
        agg.matmul_prepacked_into(&self.weight, &mut out)
            .map_err(AutogradError::from)?;
        apply_bias_act(&mut out, Some(&self.bias), Act::Relu)?;
        pool.put(agg);
        Ok(out)
    }

    /// [`FrozenGcnLayer::forward_each`] restricted to one output node per
    /// sample: aggregates only adjacency row `adj_row_of(b)` (the global
    /// readout node's row) per block and returns `[blocks, out_dim]` —
    /// the rows the encoder readout actually consumes. Only valid for the
    /// **last** layer of a stack, where the other node rows are dead; the
    /// produced rows are bit-identical to the corresponding rows of
    /// [`FrozenGcnLayer::forward_each`] (see
    /// `block_left_matmul_row_each_into`).
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure or feature dimension
    /// is inconsistent.
    pub fn forward_global_each<'a>(
        &self,
        pool: &mut BufferPool,
        x: Matrix,
        blocks: usize,
        adj_row_of: impl Fn(usize) -> &'a [f32],
        nodes: usize,
    ) -> Result<Matrix> {
        let _span = hwpr_obs::span("infer.gcn");
        let mut agg = pool.take_uninit(blocks, x.cols());
        x.block_left_matmul_row_each_into(blocks, nodes, adj_row_of, &mut agg)
            .map_err(AutogradError::from)?;
        pool.put(x);
        let mut out = pool.take_uninit(blocks, self.out_dim);
        agg.matmul_prepacked_into(&self.weight, &mut out)
            .map_err(AutogradError::from)?;
        apply_bias_act(&mut out, Some(&self.bias), Act::Relu)?;
        pool.put(agg);
        Ok(out)
    }

    /// The GEMM + bias + ReLU half of [`FrozenGcnLayer::forward_each`]
    /// against a borrowed, already-aggregated input: callers that share
    /// one `blockdiag(A) @ X` staging across several layer stacks (the
    /// aggregation is weight-independent) run each stack's first layer
    /// through this entry point.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `agg`'s width does not match the layer.
    pub fn forward_from_agg(&self, pool: &mut BufferPool, agg: &Matrix) -> Result<Matrix> {
        let _span = hwpr_obs::span("infer.gcn");
        let mut out = pool.take_uninit(agg.rows(), self.out_dim);
        agg.matmul_prepacked_into(&self.weight, &mut out)
            .map_err(AutogradError::from)?;
        apply_bias_act(&mut out, Some(&self.bias), Act::Relu)?;
        Ok(out)
    }
}

/// An [`crate::layers::Embedding`] compiled for tape-free inference (a
/// copied table; lookup is a row gather).
#[derive(Debug)]
pub struct FrozenEmbedding {
    table: Matrix,
    vocab: usize,
    dim: usize,
}

impl FrozenEmbedding {
    /// Copies the trained table out of the parameter store.
    pub(crate) fn from_parts(table: Matrix, vocab: usize, dim: usize) -> Self {
        Self { table, vocab, dim }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `ids` into the caller's `[ids.len(), dim]` output rows.
    ///
    /// # Errors
    ///
    /// Returns an index error if any id is `>= vocab` (mirroring the taped
    /// `gather_rows`).
    pub fn forward_into(&self, ids: &[usize], out: &mut Matrix) -> Result<()> {
        for (r, &id) in ids.iter().enumerate() {
            if id >= self.vocab {
                return Err(NnError::Autograd(AutogradError::IndexOutOfRange {
                    index: id,
                    rows: self.vocab,
                }));
            }
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Embedding, GcnLayer, LayerRng, Linear, Lstm, Mlp, MlpConfig};
    use crate::{Binder, Params};
    use hwpr_autograd::{Tape, Var};
    use hwpr_tensor::Init;
    use rand_chacha::rand_core::SeedableRng;

    fn det_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.09)
                .collect(),
        )
        .unwrap()
    }

    /// The frozen-vs-tape error budget (see the module docs): max-abs
    /// difference at or below `1e-5`. The two paths currently agree
    /// bitwise, but only the budget is contractual.
    fn assert_within_budget(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        let worst = got
            .iter()
            .zip(want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst <= 1e-5, "frozen-vs-tape max-abs {worst} > 1e-5");
    }

    #[test]
    fn frozen_linear_matches_tape_within_budget() {
        let mut params = Params::new();
        let fc = Linear::new(&mut params, "fc", 3, 2, Init::Xavier, 5, true);
        let x = det_matrix(4, 3, 1);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let xv = binder.input(x.clone());
        let y = fc.forward_act(&mut binder, xv, Act::Tanh).unwrap();
        let expected = tape.value(y).clone();

        let frozen = fc.freeze(&params);
        let mut out = Matrix::zeros(4, 2);
        frozen.forward_act_into(&x, Act::Tanh, &mut out).unwrap();
        assert_within_budget(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn frozen_mlp_matches_tape_within_budget() {
        let mut params = Params::new();
        let mut cfg = MlpConfig::new(3, vec![5, 4], 2, 11);
        cfg.dropout = 0.3; // elided at inference on both paths
        let mlp = Mlp::new(&mut params, "m", &cfg).unwrap();
        let x = det_matrix(6, 3, 2);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let xv = binder.input(x.clone());
        let mut rng = LayerRng::seed_from_u64(0);
        let y = mlp.forward(&mut binder, xv, &mut rng).unwrap();
        let expected = tape.value(y).clone();

        let frozen = mlp.freeze(&params);
        assert_eq!(frozen.depth(), 3);
        assert_eq!(frozen.output_dim(), 2);
        let mut pool = BufferPool::new();
        let input = pool.take_copy(&x);
        let out = frozen.forward(&mut pool, input).unwrap();
        assert_within_budget(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn frozen_lstm_matches_tape_within_budget() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 3, 4, 2, 9);
        let steps_data: Vec<Matrix> = (0..4).map(|i| det_matrix(2, 3, i + 3)).collect();
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let steps: Vec<Var> = steps_data.iter().map(|m| binder.input(m.clone())).collect();
        let h = lstm.forward(&mut binder, &steps).unwrap();
        let expected = tape.value(h).clone();

        let frozen = lstm.freeze(&params);
        assert_eq!(frozen.layers(), 2);
        assert_eq!(frozen.hidden_dim(), 4);
        let mut pool = BufferPool::new();
        let mut scratch = LstmScratch::default();
        let out = frozen
            .forward(&mut pool, &steps_data, &mut scratch)
            .unwrap();
        assert_within_budget(out.as_slice(), expected.as_slice());
        assert!(frozen.forward(&mut pool, &[], &mut scratch).is_err());
    }

    #[test]
    fn frozen_gcn_matches_tape_within_budget() {
        let mut params = Params::new();
        let gcn = GcnLayer::new(&mut params, "g", 4, 6, 1);
        let adj0 =
            crate::layers::normalize_adjacency(&Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]));
        let adj1 = Matrix::identity(2);
        let x = det_matrix(4, 4, 7); // batch 2, nodes 2
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let xv = binder.input(x.clone());
        let y = gcn
            .forward(&mut binder, xv, &[adj0.clone(), adj1.clone()], 2)
            .unwrap();
        let expected = tape.value(y).clone();

        let frozen = gcn.freeze(&params);
        assert_eq!(frozen.out_dim(), 6);
        let mut pool = BufferPool::new();
        let input = pool.take_copy(&x);
        let out = frozen
            .forward(&mut pool, input, &[&adj0, &adj1], 2)
            .unwrap();
        assert_within_budget(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn frozen_embedding_matches_tape_and_validates() {
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", 5, 3, 9);
        let ids = [0usize, 4, 2, 4];
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let y = emb.forward(&mut binder, &ids).unwrap();
        let expected = tape.value(y).clone();

        let frozen = emb.freeze(&params);
        assert_eq!(frozen.dim(), 3);
        let mut out = Matrix::zeros(4, 3);
        frozen.forward_into(&ids, &mut out).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
        assert!(frozen.forward_into(&[5], &mut out).is_err());
    }
}
