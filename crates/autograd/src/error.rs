//! Error type for autograd operations.

use hwpr_tensor::ShapeError;
use std::error::Error;
use std::fmt;

/// Error returned by tape operations and [`crate::Tape::backward`].
#[derive(Debug, Clone, PartialEq)]
pub enum AutogradError {
    /// An underlying matrix operation received incompatible shapes.
    Shape(ShapeError),
    /// `backward` was called on a node whose value is not `1 x 1`.
    NonScalarLoss {
        /// Shape of the offending loss node.
        shape: (usize, usize),
    },
    /// An op received an out-of-range row index (embedding gather).
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// A ranking loss was given an invalid permutation or pair list.
    InvalidRanking(String),
}

impl fmt::Display for AutogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutogradError::Shape(e) => write!(f, "{e}"),
            AutogradError::NonScalarLoss { shape } => {
                write!(
                    f,
                    "backward requires a 1x1 loss, got {}x{}",
                    shape.0, shape.1
                )
            }
            AutogradError::IndexOutOfRange { index, rows } => {
                write!(f, "row index {index} out of range for {rows} rows")
            }
            AutogradError::InvalidRanking(msg) => write!(f, "invalid ranking input: {msg}"),
        }
    }
}

impl Error for AutogradError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutogradError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for AutogradError {
    fn from(e: ShapeError) -> Self {
        AutogradError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let s = AutogradError::NonScalarLoss { shape: (2, 3) }.to_string();
        assert!(s.contains("2x3"));
        let s = AutogradError::IndexOutOfRange { index: 9, rows: 4 }.to_string();
        assert!(s.contains('9') && s.contains('4'));
        let s = AutogradError::InvalidRanking("empty".into()).to_string();
        assert!(s.contains("empty"));
    }

    #[test]
    fn shape_error_converts_and_sources() {
        let e: AutogradError = ShapeError::new("matmul", (1, 2), (3, 4)).into();
        assert!(e.to_string().contains("matmul"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AutogradError>();
    }
}
