//! Table I: regressor comparison (MLP / XGBoost / LGBoost) for the
//! accuracy and latency predictors on NAS-Bench-201.

use crate::{Harness, MarkdownTable};
use hwpr_core::encoders::EncoderChoice;
use hwpr_core::predictor::{Predictor, PredictorConfig, RegressorKind, TargetMetric};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let data = h.dataset(
        SearchSpaceId::NasBench201,
        Dataset::Cifar10,
        Platform::EdgeGpu,
    );
    let mut out = String::new();
    let _ = writeln!(out, "# Table I — regressors on NAS-Bench-201\n");
    let _ = writeln!(
        out,
        "Best encoder per metric as found in Fig. 4 (accuracy: GCN+AF, \
         latency: LSTM+AF); tree heads consume AF + one-hot op features. \
         RMSE in the target's natural units (accuracy %, latency ms).\n"
    );
    let mut t = MarkdownTable::new(vec![
        "Regressor",
        "Accuracy RMSE",
        "Accuracy Kendall τ",
        "Latency RMSE",
        "Latency Kendall τ",
    ]);
    for kind in [
        RegressorKind::Mlp,
        RegressorKind::XgBoost,
        RegressorKind::LgBoost,
    ] {
        let mut cells = vec![kind.to_string()];
        for target in [TargetMetric::Accuracy, TargetMetric::Latency] {
            let config = match kind {
                RegressorKind::Mlp => {
                    let encoders = match target {
                        TargetMetric::Accuracy => EncoderChoice::GCN_AF,
                        TargetMetric::Latency => EncoderChoice::LSTM_AF,
                    };
                    PredictorConfig {
                        model: h.scale.model_config(),
                        train: h.scale.train_config(),
                        ..PredictorConfig::mlp(encoders, target)
                    }
                }
                kind => PredictorConfig {
                    model: h.scale.model_config(),
                    train: h.scale.train_config(),
                    ..PredictorConfig::boosted(kind, target)
                },
            };
            let (_, report) = Predictor::fit(&data, &config).expect("predictor training failed");
            cells.push(format!("{:.3}", report.rmse));
            cells.push(format!("{:.4}", report.kendall_tau));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nPaper's shape: XGBoost gives the best accuracy RMSE/τ; MLP edges \
         out the boosted trees on latency τ; ranking correlation is not \
         proportional to RMSE."
    );
    out
}
