//! Pareto dominance relations (minimization convention).

/// Strict Pareto dominance: `a` dominates `b` iff `a` is no worse in every
/// objective and strictly better in at least one (§II-C of the paper).
///
/// # Panics
///
/// Panics if the two points have different lengths.
///
/// # Examples
///
/// ```
/// use hwpr_moo::dominates;
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off: incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dominance requires equal dimensions");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Weak dominance: `a` is no worse than `b` in every objective.
///
/// # Panics
///
/// Panics if the two points have different lengths.
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dominance requires equal dimensions");
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict gain
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0])); // incomparable
        assert!(!dominates(&[2.0], &[1.0]));
    }

    #[test]
    fn weak_dominance_includes_equality() {
        assert!(weakly_dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(weakly_dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(!weakly_dominates(&[2.0, 1.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_dimensions_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }
}
