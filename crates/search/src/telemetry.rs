//! Search telemetry: evaluator latency and per-generation MOEA records.
//!
//! Everything here is gated on [`hwpr_obs::enabled`] before any clock
//! read, front sort or hypervolume computation, so a search with
//! telemetry off pays one relaxed atomic load per generation.

use crate::evaluator::Fitness;
use hwpr_moo::{nadir_reference_point, IncrementalHv2, MooWorkspace};
use hwpr_obs::metrics::{registry, Histogram};
use hwpr_obs::Value;
use std::time::Instant;

/// Times one [`crate::Evaluator::evaluate`] call into the
/// `search.eval_ms` histogram. Inert when telemetry is off.
pub(crate) struct EvalTimer {
    start: Option<Instant>,
}

/// Starts an evaluation timer (a no-op timer with telemetry off).
pub(crate) fn eval_timer() -> EvalTimer {
    EvalTimer {
        start: hwpr_obs::enabled().then(Instant::now),
    }
}

impl EvalTimer {
    /// Stops the timer, recording the latency; returns the elapsed
    /// milliseconds for inclusion in the generation record.
    pub(crate) fn finish(self) -> Option<f64> {
        let start = self.start?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        registry()
            .histogram(
                "search.eval_ms",
                &Histogram::exponential_bounds(0.1, 4.0, 12),
            )
            .observe(ms);
        Some(ms)
    }
}

/// Times one island generation into the `search.island.gen.us`
/// histogram (microsecond buckets — island generations are much shorter
/// than whole evaluator batches). Inert when telemetry is off.
pub(crate) struct IslandGenTimer {
    start: Option<Instant>,
}

/// Starts an island-generation timer (a no-op with telemetry off).
pub(crate) fn island_gen_timer() -> IslandGenTimer {
    IslandGenTimer {
        start: hwpr_obs::enabled().then(Instant::now),
    }
}

impl IslandGenTimer {
    /// Stops the timer, recording the latency in microseconds.
    pub(crate) fn finish(self) {
        let Some(start) = self.start else { return };
        let us = start.elapsed().as_secs_f64() * 1e6;
        registry()
            .histogram(
                "search.island.gen.us",
                &Histogram::exponential_bounds(10.0, 4.0, 12),
            )
            .observe(us);
    }
}

/// Everything one generation record needs, gathered by the MOEA loop.
pub(crate) struct GenerationRecord<'a> {
    /// Generation index (0-based).
    pub generation: usize,
    /// Total evaluator calls so far.
    pub evaluations: usize,
    /// Wall + simulated time consumed so far, in milliseconds.
    pub elapsed_ms: f64,
    /// Latency of this generation's offspring evaluation, when timed.
    pub eval_ms: Option<f64>,
    /// The surviving population's fitness.
    pub fitness: &'a Fitness,
    /// `(hits, misses)` from a cache-backed evaluator.
    pub cache: Option<(u64, u64)>,
    /// Also emit the Pareto-front point set (`search.front`).
    pub snapshot_front: bool,
}

/// Per-run state for generation records: the hypervolume reference point
/// is fixed from the first front seen (coordinate-wise nadir plus a 10 %
/// margin), so per-generation hypervolumes are comparable within a run.
///
/// Two-objective runs (the paper's configuration) keep an
/// [`IncrementalHv2`] archive across generations: when the surviving
/// front matches the archive — the common elitist case — the recorded
/// hypervolume is an O(Δ log N) fold of the new points instead of a full
/// sort + sweep (`moo.hv.incremental` counts the recomputes avoided,
/// `moo.hv.full` the fallbacks).
#[derive(Default)]
pub(crate) struct GenerationTelemetry {
    reference: Option<Vec<f64>>,
    moo: MooWorkspace,
    archive: Option<IncrementalHv2>,
}

impl GenerationTelemetry {
    /// Emits `search.generation` (and optionally `search.front`) for one
    /// completed generation. A no-op with telemetry off.
    pub(crate) fn record(&mut self, rec: GenerationRecord<'_>) {
        if !hwpr_obs::enabled() {
            return;
        }
        let mut front_points: Vec<Vec<f64>> = Vec::new();
        if let Fitness::Objectives(objs)
        | Fitness::Ranked {
            objectives: objs, ..
        } = rec.fitness
        {
            if let Ok(front) = self.moo.pareto_front(objs) {
                front_points = front.iter().map(|&i| objs[i].as_ref().clone()).collect();
            }
        }
        let hv = self.hypervolume_of(&front_points);
        hwpr_obs::record_with("search.generation", || {
            let mut fields = vec![
                hwpr_obs::field("gen", rec.generation as u64),
                hwpr_obs::field("evaluations", rec.evaluations as u64),
                hwpr_obs::field("elapsed_ms", rec.elapsed_ms),
            ];
            if let Some(ms) = rec.eval_ms {
                fields.push(hwpr_obs::field("eval_ms", ms));
            }
            if !front_points.is_empty() {
                fields.push(hwpr_obs::field("front_size", front_points.len() as u64));
            }
            if let Some(hv) = hv {
                fields.push(hwpr_obs::field("hypervolume", hv));
            }
            if let Some((hits, misses)) = rec.cache {
                fields.push(hwpr_obs::field("cache_hits", hits));
                fields.push(hwpr_obs::field("cache_misses", misses));
                let total = hits + misses;
                if total > 0 {
                    fields.push(hwpr_obs::field(
                        "cache_hit_rate",
                        hits as f64 / total as f64,
                    ));
                }
            }
            fields
        });
        if rec.snapshot_front && !front_points.is_empty() {
            let points = Value::Array(
                front_points
                    .iter()
                    .map(|p| Value::Array(p.iter().map(|&x| Value::Float(x)).collect()))
                    .collect(),
            );
            hwpr_obs::record_with("search.front", || {
                vec![
                    hwpr_obs::field("gen", rec.generation as u64),
                    ("points".to_string(), points),
                ]
            });
        }
    }

    /// Hypervolume of `front` against the run's fixed reference point.
    /// Points past the reference (worse than the first generation's nadir
    /// plus margin) are clipped out rather than failing the computation.
    fn hypervolume_of(&mut self, front: &[Vec<f64>]) -> Option<f64> {
        if front.is_empty() {
            return None;
        }
        if self.reference.is_none() {
            let spread = front
                .iter()
                .flat_map(|p| p.iter().map(|v| v.abs()))
                .fold(0.0f64, f64::max);
            self.reference = nadir_reference_point(front, 0.1 * spread.max(1e-9)).ok();
        }
        let reference = self.reference.as_ref()?;
        let bounded: Vec<Vec<f64>> = front
            .iter()
            .filter(|p| p.len() == reference.len() && p.iter().zip(reference).all(|(x, r)| x <= r))
            .cloned()
            .collect();
        if bounded.is_empty() {
            return Some(0.0);
        }
        if reference.len() == 2 {
            if self.archive.is_none() {
                self.archive = Some(IncrementalHv2::new(reference).ok()?);
            }
            let archive = self.archive.as_mut().expect("archive just initialised");
            let mut on_archive = true;
            for p in &bounded {
                // bounded points are finite and inside the box: insert
                // cannot fail
                archive.insert(p[0], p[1]).ok()?;
                on_archive &= archive.contains(p[0], p[1]);
            }
            // `bounded` is mutually non-dominated, so its staircase is its
            // distinct points; when the archive front is exactly that set,
            // the archived hypervolume IS the current front's hypervolume
            let distinct = bounded
                .iter()
                .enumerate()
                .filter(|(i, p)| !bounded[..*i].contains(p))
                .count();
            if on_archive && archive.front_len() == distinct {
                registry().counter("moo.hv.incremental").inc();
                return Some(archive.hypervolume());
            }
            // the population front regressed below the archive: rebuild
            // from the current front so the recorded value keeps meaning
            // "hypervolume of this generation's front"
            registry().counter("moo.hv.full").inc();
            return archive.reset_from(&bounded).ok();
        }
        registry().counter("moo.hv.full").inc();
        self.moo.hypervolume(&bounded, reference).ok()
    }
}
