//! Perf-regression sentinel: scenario-by-scenario comparison of two
//! `HWPR_BENCH_JSON` snapshots (the `BENCH_prN.json` files the bench
//! harness writes).
//!
//! Comparison is on **median** nanoseconds — the bench harness records
//! both mean and median, and the median is the robust one on shared CI
//! runners. A scenario regresses when its new median exceeds the old by
//! more than its budget percentage; budgets resolve per scenario via
//! longest-prefix override (`--budget inference_throughput/=25`) falling
//! back to the global default. Scenarios present on only one side are
//! reported but are warnings by default: bench suites grow every PR and
//! a rename must not read as a regression.
//!
//! The caller maps [`DiffReport::verdict`] to an exit code; `hwpr-report
//! bench-diff` uses 0 = within budget, 2 = regression, so CI can gate on
//! it (softly via `--warn-only` on noisy runners).

use crate::report::{fmt_f64, table};
use serde::Value;

/// One scenario row from a bench snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Scenario name, e.g. `"inference_throughput/frozen_b8_f32"`.
    pub name: String,
    /// Median wall time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
}

/// Parses a bench snapshot (a JSON array of scenario objects).
///
/// # Errors
///
/// Returns a message for malformed JSON or rows missing
/// `name`/`median_ns`/`mean_ns`.
pub fn parse_snapshot(text: &str) -> Result<Vec<BenchRow>, String> {
    let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let rows = value
        .as_array()
        .ok_or("bench snapshot is not a JSON array")?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let pairs = row
                .as_object()
                .ok_or_else(|| format!("bench row {i} is not an object"))?;
            let get_str = |key: &str| match pairs.iter().find(|(k, _)| k == key) {
                Some((_, Value::String(s))) => Ok(s.clone()),
                _ => Err(format!("bench row {i}: missing string field `{key}`")),
            };
            let get_num = |key: &str| match pairs.iter().find(|(k, _)| k == key) {
                Some((_, Value::Float(f))) => Ok(*f),
                Some((_, Value::UInt(u))) => Ok(*u as f64),
                Some((_, Value::Int(n))) => Ok(*n as f64),
                _ => Err(format!("bench row {i}: missing numeric field `{key}`")),
            };
            Ok(BenchRow {
                name: get_str("name")?,
                median_ns: get_num("median_ns")?,
                mean_ns: get_num("mean_ns")?,
            })
        })
        .collect()
}

/// Budget configuration for a diff.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Allowed slowdown in percent for scenarios without an override
    /// (e.g. `10.0` accepts up to +10% on the median).
    pub default_budget_pct: f64,
    /// `(prefix, pct)` overrides; the **longest** prefix matching a
    /// scenario name wins.
    pub overrides: Vec<(String, f64)>,
    /// Treat scenarios present in the old snapshot but missing from the
    /// new one as failures instead of warnings.
    pub fail_on_missing: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            default_budget_pct: 10.0,
            overrides: Vec::new(),
            fail_on_missing: false,
        }
    }
}

impl DiffConfig {
    /// The budget (percent) applying to `scenario`.
    pub fn budget_for(&self, scenario: &str) -> f64 {
        self.overrides
            .iter()
            .filter(|(prefix, _)| scenario.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(self.default_budget_pct, |(_, pct)| *pct)
    }
}

/// Outcome for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within budget (may be mildly slower).
    Ok,
    /// Meaningfully faster (median improved by more than the budget).
    Improved,
    /// Slower than the budget allows.
    Regressed,
    /// Present only in the old snapshot (removed or renamed).
    OnlyOld,
    /// Present only in the new snapshot (newly added).
    OnlyNew,
}

impl Verdict {
    fn shown(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::OnlyOld => "only-old",
            Verdict::OnlyNew => "only-new",
        }
    }
}

/// One compared scenario.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Scenario name.
    pub name: String,
    /// Old median, ns (`None` for [`Verdict::OnlyNew`]).
    pub old_ns: Option<f64>,
    /// New median, ns (`None` for [`Verdict::OnlyOld`]).
    pub new_ns: Option<f64>,
    /// Median delta in percent, `(new - old) / old * 100`.
    pub delta_pct: Option<f64>,
    /// The budget that applied.
    pub budget_pct: f64,
    /// Outcome.
    pub verdict: Verdict,
}

/// The full scenario-by-scenario comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One row per scenario (union of both snapshots), regressions first,
    /// then by name.
    pub rows: Vec<DiffRow>,
    /// Whether missing-in-new scenarios count as failures.
    pub fail_on_missing: bool,
}

/// Compares two snapshots under `config`.
pub fn diff(old: &[BenchRow], new: &[BenchRow], config: &DiffConfig) -> DiffReport {
    let mut rows: Vec<DiffRow> = Vec::new();
    for o in old {
        let budget_pct = config.budget_for(&o.name);
        match new.iter().find(|n| n.name == o.name) {
            Some(n) => {
                // guard the ratio: a zero-median row would make every
                // delta infinite
                let delta_pct = if o.median_ns > 0.0 {
                    (n.median_ns - o.median_ns) / o.median_ns * 100.0
                } else {
                    0.0
                };
                let verdict = if delta_pct > budget_pct {
                    Verdict::Regressed
                } else if delta_pct < -budget_pct {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                rows.push(DiffRow {
                    name: o.name.clone(),
                    old_ns: Some(o.median_ns),
                    new_ns: Some(n.median_ns),
                    delta_pct: Some(delta_pct),
                    budget_pct,
                    verdict,
                });
            }
            None => rows.push(DiffRow {
                name: o.name.clone(),
                old_ns: Some(o.median_ns),
                new_ns: None,
                delta_pct: None,
                budget_pct,
                verdict: Verdict::OnlyOld,
            }),
        }
    }
    for n in new {
        if !old.iter().any(|o| o.name == n.name) {
            rows.push(DiffRow {
                name: n.name.clone(),
                old_ns: None,
                new_ns: Some(n.median_ns),
                delta_pct: None,
                budget_pct: config.budget_for(&n.name),
                verdict: Verdict::OnlyNew,
            });
        }
    }
    rows.sort_by(|a, b| {
        let rank = |v: Verdict| match v {
            Verdict::Regressed => 0,
            Verdict::OnlyOld => 1,
            Verdict::Improved => 2,
            Verdict::Ok => 3,
            Verdict::OnlyNew => 4,
        };
        rank(a.verdict)
            .cmp(&rank(b.verdict))
            .then_with(|| a.name.cmp(&b.name))
    });
    DiffReport {
        rows,
        fail_on_missing: config.fail_on_missing,
    }
}

impl DiffReport {
    /// Scenarios over budget (plus missing-in-new when
    /// `fail_on_missing`).
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                r.verdict == Verdict::Regressed
                    || (self.fail_on_missing && r.verdict == Verdict::OnlyOld)
            })
            .count()
    }

    /// Whether the new snapshot is acceptable.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the comparison table plus a one-line verdict.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.old_ns.map_or("-".into(), fmt_f64),
                    r.new_ns.map_or("-".into(), fmt_f64),
                    r.delta_pct.map_or("-".into(), |d| format!("{d:+.1}%")),
                    format!("{:.0}%", r.budget_pct),
                    r.verdict.shown().to_string(),
                ]
            })
            .collect();
        let mut out = table(
            &["scenario", "old ns", "new ns", "delta", "budget", "verdict"],
            &rows,
        );
        let failures = self.failures();
        let only_old = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::OnlyOld)
            .count();
        out.push_str(&format!(
            "\n{} scenarios compared, {} regressed, {} missing in new\n",
            self.rows.len(),
            failures,
            only_old
        ));
        out.push_str(if self.passed() {
            "verdict: PASS (within budget)\n"
        } else {
            "verdict: FAIL (budget exceeded)\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, median_ns: f64) -> BenchRow {
        BenchRow {
            name: name.into(),
            median_ns,
            mean_ns: median_ns,
        }
    }

    #[test]
    fn parse_reads_the_snapshot_format() {
        let rows = parse_snapshot(
            r#"[{"name": "a/b", "mean_ns": 10.5, "median_ns": 9.0,
                 "samples": 10, "iters_per_sample": 2}]"#,
        )
        .unwrap();
        assert_eq!(
            rows,
            vec![BenchRow {
                name: "a/b".into(),
                median_ns: 9.0,
                mean_ns: 10.5,
            }]
        );
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot(r#"[{"name": "x"}]"#).is_err());
    }

    #[test]
    fn regression_over_budget_is_flagged() {
        let old = vec![row("k/fast", 100.0), row("k/slow", 100.0)];
        let new = vec![row("k/fast", 105.0), row("k/slow", 125.0)];
        let report = diff(&old, &new, &DiffConfig::default()); // 10%
        assert_eq!(report.failures(), 1);
        assert!(!report.passed());
        let slow = report.rows.iter().find(|r| r.name == "k/slow").unwrap();
        assert_eq!(slow.verdict, Verdict::Regressed);
        assert_eq!(
            report
                .rows
                .iter()
                .find(|r| r.name == "k/fast")
                .unwrap()
                .verdict,
            Verdict::Ok
        );
        // regressions sort to the top of the report
        assert_eq!(report.rows[0].name, "k/slow");
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn longest_prefix_override_wins() {
        let config = DiffConfig {
            default_budget_pct: 10.0,
            overrides: vec![("k/".into(), 20.0), ("k/noisy".into(), 60.0)],
            fail_on_missing: false,
        };
        assert_eq!(config.budget_for("other/x"), 10.0);
        assert_eq!(config.budget_for("k/fast"), 20.0);
        assert_eq!(config.budget_for("k/noisy_gemm"), 60.0);

        let old = vec![row("k/noisy_gemm", 100.0)];
        let new = vec![row("k/noisy_gemm", 150.0)];
        assert!(diff(&old, &new, &config).passed());
        assert!(!diff(&old, &new, &DiffConfig::default()).passed());
    }

    #[test]
    fn improvement_and_additions_never_fail() {
        let old = vec![row("k/a", 100.0)];
        let new = vec![row("k/a", 40.0), row("k/brand_new", 5.0)];
        let report = diff(&old, &new, &DiffConfig::default());
        assert!(report.passed());
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
        assert_eq!(report.rows[1].verdict, Verdict::OnlyNew);
    }

    #[test]
    fn missing_scenarios_warn_by_default_and_fail_on_request() {
        let old = vec![row("k/gone", 100.0)];
        let new: Vec<BenchRow> = Vec::new();
        assert!(diff(&old, &new, &DiffConfig::default()).passed());
        let strict = DiffConfig {
            fail_on_missing: true,
            ..DiffConfig::default()
        };
        let report = diff(&old, &new, &strict);
        assert!(!report.passed());
        assert_eq!(report.rows[0].verdict, Verdict::OnlyOld);
    }

    #[test]
    fn zero_median_rows_do_not_blow_up_the_ratio() {
        let old = vec![row("k/degenerate", 0.0)];
        let new = vec![row("k/degenerate", 50.0)];
        let report = diff(&old, &new, &DiffConfig::default());
        assert!(report.passed());
        assert_eq!(report.rows[0].delta_pct, Some(0.0));
    }

    /// The real PR-6 -> PR-7 snapshots must pass at the budget the CI
    /// soft gate uses (50%): the known tape_serial slowdown (~32%, traded
    /// for the frozen-path wins) stays inside it, everything else is flat
    /// or faster.
    #[test]
    fn checked_in_snapshots_pass_at_the_ci_budget() {
        let old = parse_snapshot(include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_pr6.json"
        )))
        .unwrap();
        let new = parse_snapshot(include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_pr7.json"
        )))
        .unwrap();
        assert!(!old.is_empty() && !new.is_empty());
        let config = DiffConfig {
            default_budget_pct: 50.0,
            ..DiffConfig::default()
        };
        let report = diff(&old, &new, &config);
        assert!(report.passed(), "{}", report.render());
        // and the sentinel is not vacuous: a tight budget catches the
        // documented tape_serial slowdown in the same data
        let tight = diff(
            &old,
            &new,
            &DiffConfig {
                default_budget_pct: 5.0,
                ..DiffConfig::default()
            },
        );
        assert!(!tight.passed());
    }
}
