//! Frozen tape-free inference vs the recording-tape reference path — the
//! MOEA hot-path numbers behind `BENCH_pr4.json`.
//!
//! - `tape_serial` — the reference path (`predict_full_tape`): tape reset
//!   + parameter rebinding + op recording every chunk.
//! - `frozen_serial` — the frozen engine (`predict_full`): persistent
//!   prepacked weights, pooled activation arena, no tape.
//! - `frozen_parallel` — `predict_full_parallel` over two scoped workers,
//!   each with its own checked-out arena (pack-free). Only expected to
//!   beat `frozen_serial` on multi-core hosts; on a single-CPU runner the
//!   scoped-thread spawn is pure overhead.
//!
//! Acceptance: `frozen_serial` at least 1.5x faster per batch than
//! `tape_serial`; all three paths are bit-identical (differential tests
//! in `hwpr-core`).

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::{fixture_archs, fixture_model};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::SearchSpaceId;

fn bench_inference_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_throughput");
    group.sample_size(10);
    let model = fixture_model(64);
    let archs = fixture_archs(SearchSpaceId::NasBench201, 256);
    // warm the encoding cache and compile the frozen engine up front so
    // every measured iteration is pure forward cost on both paths
    model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    model.predict_full_tape(&archs, Platform::EdgeGpu).unwrap();

    group.bench_function("tape_serial", |b| {
        b.iter(|| model.predict_full_tape(&archs, Platform::EdgeGpu).unwrap())
    });
    group.bench_function("frozen_serial", |b| {
        b.iter(|| model.predict_full(&archs, Platform::EdgeGpu).unwrap())
    });
    group.bench_function("frozen_parallel", |b| {
        b.iter(|| {
            model
                .predict_full_parallel(&archs, Platform::EdgeGpu, 2)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference_throughput);
criterion_main!(benches);
