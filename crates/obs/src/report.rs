//! Turns a JSONL run record into a human-readable summary.
//!
//! Used by the `hwpr-report` binary:
//!
//! ```text
//! cargo run -p hwpr-obs --bin hwpr-report -- telemetry.jsonl
//! ```

use crate::event::Event;
use serde::Value;
use std::collections::BTreeMap;

/// Parses a JSONL run record (one event per line; blank lines skipped).
///
/// # Errors
///
/// Returns the first malformed line's error, with its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Renders the run summary: header, warnings, span aggregates, final
/// metric values and one table per record stream.
pub fn summarize(events: &[Event]) -> String {
    let mut out = String::new();
    let t_min = events.iter().map(Event::t_us).min().unwrap_or(0);
    let t_max = events.iter().map(Event::t_us).max().unwrap_or(0);
    out.push_str(&format!(
        "run record: {} events over {}\n",
        events.len(),
        fmt_us(t_max.saturating_sub(t_min))
    ));

    let warnings: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Warn { message, .. } => Some(message.as_str()),
            _ => None,
        })
        .collect();
    if !warnings.is_empty() {
        out.push_str(&format!("\nwarnings ({}):\n", warnings.len()));
        for w in &warnings {
            out.push_str(&format!("  ! {w}\n"));
        }
    }

    // span aggregates: count, total, mean, max per (name, label) variant;
    // labeled spans render as `name[label]`
    let mut spans: BTreeMap<(&str, Option<&str>), (u64, u64, u64)> = BTreeMap::new();
    for event in events {
        if let Event::SpanEnd {
            name,
            label,
            dur_us,
            ..
        } = event
        {
            let entry = spans.entry((name, label.as_deref())).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += dur_us;
            entry.2 = entry.2.max(*dur_us);
        }
    }
    if !spans.is_empty() {
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|((name, label), (count, total, max))| {
                let shown = match label {
                    Some(label) => format!("{name}[{label}]"),
                    None => name.to_string(),
                };
                vec![
                    shown,
                    count.to_string(),
                    fmt_us(*total),
                    fmt_us(total / count.max(&1)),
                    fmt_us(*max),
                ]
            })
            .collect();
        out.push_str("\nspans:\n");
        out.push_str(&table(&["span", "count", "total", "mean", "max"], &rows));
    }

    // final counter / gauge values (last event per name wins)
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, f64> = BTreeMap::new();
    for event in events {
        match event {
            Event::Counter { name, value, .. } => {
                counters.insert(name, *value);
            }
            Event::Gauge { name, value, .. } => {
                gauges.insert(name, *value);
            }
            _ => {}
        }
    }
    if !counters.is_empty() || !gauges.is_empty() {
        let mut rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(name, value)| vec![name.to_string(), "counter".into(), fmt_u64(*value)])
            .collect();
        rows.extend(
            gauges
                .iter()
                .map(|(name, value)| vec![name.to_string(), "gauge".into(), fmt_f64(*value)]),
        );
        out.push_str("\nmetrics:\n");
        out.push_str(&table(&["metric", "kind", "value"], &rows));
    }

    // histograms: last snapshot per name
    let mut hists: BTreeMap<&str, &Event> = BTreeMap::new();
    for event in events {
        if let Event::Hist { name, .. } = event {
            hists.insert(name, event);
        }
    }
    if !hists.is_empty() {
        let rows: Vec<Vec<String>> = hists
            .values()
            .filter_map(|event| {
                let Event::Hist {
                    name,
                    count,
                    sum,
                    bounds,
                    counts,
                    ..
                } = event
                else {
                    return None;
                };
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                let q = |q: f64| quantile(bounds, counts, q).map_or("-".into(), fmt_f64);
                Some(vec![
                    name.clone(),
                    count.to_string(),
                    fmt_f64(mean),
                    q(0.5),
                    q(0.95),
                ])
            })
            .collect();
        out.push_str("\nhistograms:\n");
        out.push_str(&table(
            &["histogram", "count", "mean", "~p50", "~p95"],
            &rows,
        ));
    }

    // record streams: one table per name, columns in first-seen order
    let mut streams: Vec<(&str, Vec<&Event>)> = Vec::new();
    for event in events {
        if let Event::Record { name, .. } = event {
            match streams.iter_mut().find(|(n, _)| *n == name) {
                Some((_, rows)) => rows.push(event),
                None => streams.push((name, vec![event])),
            }
        }
    }
    for (name, records) in &streams {
        let mut columns: Vec<&str> = Vec::new();
        for record in records {
            if let Event::Record { fields, .. } = record {
                for (key, _) in fields {
                    if !columns.contains(&key.as_str()) {
                        columns.push(key);
                    }
                }
            }
        }
        const MAX_ROWS: usize = 48;
        let mut rows: Vec<Vec<String>> = Vec::new();
        for record in records.iter().take(MAX_ROWS) {
            if let Event::Record { fields, .. } = record {
                rows.push(
                    columns
                        .iter()
                        .map(|col| {
                            fields
                                .iter()
                                .find(|(k, _)| k == col)
                                .map_or(String::new(), |(_, v)| fmt_value(v))
                        })
                        .collect(),
                );
            }
        }
        out.push_str(&format!("\n{name} ({} rows):\n", records.len()));
        let headers: Vec<&str> = columns.clone();
        out.push_str(&table(&headers, &rows));
        if records.len() > MAX_ROWS {
            out.push_str(&format!("  ... {} more rows\n", records.len() - MAX_ROWS));
        }
    }
    out
}

/// Approximate quantile from cumulative bucket counts: the upper bound of
/// the bucket holding the q-th observation. Returns `None` when the value
/// is unknowable — an empty histogram, or a quantile landing in the
/// overflow bucket of a histogram with no finite bounds. A quantile in
/// the overflow bucket of a bounded histogram reports the last finite
/// bound (a lower bound for the true quantile — the same direction of
/// approximation every bucket gives).
fn quantile(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    // clamp into [1, total] so q = 0 and fp round-up past 1.0 stay valid
    let target = ((q * total as f64).ceil().max(1.0) as u64).min(total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return match bounds.get(i) {
                Some(&bound) => Some(bound),
                // overflow bucket: best available is the last finite bound
                None => bounds.last().copied(),
            };
        }
    }
    // counts summed to < target can only happen with inconsistent input;
    // report the weakest valid answer rather than panicking
    bounds.last().copied()
}

fn fmt_value(value: &Value) -> String {
    match value {
        Value::Null => "-".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => fmt_u64(*u),
        Value::Float(f) => fmt_f64(*f),
        Value::String(s) => s.clone(),
        Value::Array(items) => format!("[{} items]", items.len()),
        Value::Object(pairs) => format!("{{{} fields}}", pairs.len()),
    }
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Renders an aligned plain-text table.
pub(crate) fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push_str("  ");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        // no trailing padding spaces
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render(&header_cells, &widths, &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render(&rule, &widths, &mut out);
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        let good = "{\"type\":\"warn\",\"message\":\"m\",\"t_us\":1}\n";
        assert_eq!(parse_jsonl(good).unwrap().len(), 1);
        let bad = format!("{good}not json\n");
        let err = parse_jsonl(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn summarize_renders_all_sections() {
        let events = vec![
            Event::SpanStart {
                id: 1,
                parent: 0,
                name: "search.moea".into(),
                label: None,
                tid: 1,
                t_us: 0,
            },
            Event::SpanEnd {
                id: 1,
                parent: 0,
                name: "search.moea".into(),
                label: None,
                tid: 1,
                t_us: 900,
                dur_us: 900,
            },
            Event::Counter {
                name: "tensor.gemm.calls".into(),
                value: 42,
                t_us: 950,
            },
            Event::Gauge {
                name: "autograd.tape.nodes".into(),
                value: 123.0,
                t_us: 950,
            },
            Event::Hist {
                name: "search.eval_ms".into(),
                count: 3,
                sum: 6.0,
                bounds: vec![1.0, 10.0],
                counts: vec![1, 2, 0],
                t_us: 950,
            },
            Event::Warn {
                message: "invalid HWPR_THREADS".into(),
                t_us: 10,
            },
            Event::Record {
                name: "search.generation".into(),
                t_us: 500,
                fields: vec![
                    ("gen".into(), Value::UInt(0)),
                    ("hv".into(), Value::Float(0.75)),
                ],
            },
        ];
        let text = summarize(&events);
        assert!(text.contains("7 events"));
        assert!(text.contains("search.moea"));
        assert!(text.contains("tensor.gemm.calls"));
        assert!(text.contains("autograd.tape.nodes"));
        assert!(text.contains("search.eval_ms"));
        assert!(text.contains("invalid HWPR_THREADS"));
        assert!(text.contains("search.generation (1 rows):"));
        assert!(text.contains("0.75"));
    }

    #[test]
    fn summarize_surfaces_frozen_inference_metrics() {
        // the frozen engine's span, prepack-reuse counter and per-batch
        // latency histogram must all land in their renderer sections
        let events = vec![
            Event::SpanStart {
                id: 1,
                parent: 0,
                name: "infer.frozen".into(),
                label: Some("int8".into()),
                tid: 2,
                t_us: 0,
            },
            Event::SpanEnd {
                id: 1,
                parent: 0,
                name: "infer.frozen".into(),
                label: Some("int8".into()),
                tid: 2,
                t_us: 400,
                dur_us: 400,
            },
            Event::Counter {
                name: "infer.prepack.reuse".into(),
                value: 96,
                t_us: 450,
            },
            Event::Hist {
                name: "infer.batch.us".into(),
                count: 4,
                sum: 800.0,
                bounds: vec![100.0, 1000.0],
                counts: vec![3, 1, 0],
                t_us: 450,
            },
        ];
        let text = summarize(&events);
        assert!(text.contains("infer.frozen[int8]"), "{text}");
        assert!(text.contains("infer.prepack.reuse"), "{text}");
        assert!(text.contains("96"), "{text}");
        assert!(text.contains("infer.batch.us"), "{text}");
    }

    #[test]
    fn summarize_surfaces_moo_kernel_metrics() {
        // the Pareto-kernel workspace emits sort/hv latency histograms, a
        // workspace-reuse counter and the incremental-vs-full hypervolume
        // split; all must land in their renderer sections
        let events = vec![
            Event::Counter {
                name: "moo.workspace.reuse".into(),
                value: 58,
                t_us: 10,
            },
            Event::Counter {
                name: "moo.hv.incremental".into(),
                value: 27,
                t_us: 10,
            },
            Event::Counter {
                name: "moo.hv.full".into(),
                value: 3,
                t_us: 10,
            },
            Event::Hist {
                name: "moo.sort.us".into(),
                count: 30,
                sum: 420.0,
                bounds: vec![1.0, 4.0, 16.0],
                counts: vec![12, 15, 3, 0],
                t_us: 20,
            },
            Event::Hist {
                name: "moo.hv.us".into(),
                count: 30,
                sum: 95.0,
                bounds: vec![1.0, 4.0, 16.0],
                counts: vec![25, 5, 0, 0],
                t_us: 20,
            },
        ];
        let text = summarize(&events);
        assert!(text.contains("moo.workspace.reuse"), "{text}");
        assert!(text.contains("58"), "{text}");
        assert!(text.contains("moo.hv.incremental"), "{text}");
        assert!(text.contains("moo.hv.full"), "{text}");
        assert!(text.contains("moo.sort.us"), "{text}");
        assert!(text.contains("moo.hv.us"), "{text}");
    }

    #[test]
    fn quantile_walks_buckets() {
        let bounds = [1.0, 2.0, 4.0];
        let counts = [5, 4, 1, 0];
        assert_eq!(quantile(&bounds, &counts, 0.5), Some(1.0));
        assert_eq!(quantile(&bounds, &counts, 0.9), Some(2.0));
        assert_eq!(quantile(&bounds, &counts, 0.95), Some(4.0));
        assert_eq!(quantile(&bounds, &counts, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_empty_histogram_is_unknown() {
        assert_eq!(quantile(&[1.0, 2.0, 4.0], &[0, 0, 0, 0], 0.5), None);
        assert_eq!(quantile(&[], &[], 0.5), None);
        assert_eq!(quantile(&[], &[0], 0.99), None);
    }

    #[test]
    fn quantile_single_sample_reports_its_bucket_for_every_q() {
        let bounds = [1.0, 2.0, 4.0];
        let counts = [0, 1, 0, 0];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(quantile(&bounds, &counts, q), Some(2.0), "q={q}");
        }
    }

    #[test]
    fn quantile_all_in_overflow_reports_last_finite_bound() {
        // every observation past the last bound: the honest answer is a
        // lower bound, never a division by zero or a panic
        let bounds = [1.0, 2.0, 4.0];
        let counts = [0, 0, 0, 7];
        assert_eq!(quantile(&bounds, &counts, 0.5), Some(4.0));
        assert_eq!(quantile(&bounds, &counts, 0.99), Some(4.0));
        // a histogram with only the overflow bucket has no finite bound
        assert_eq!(quantile(&[], &[3], 0.5), None);
    }

    #[test]
    fn summarize_renders_degenerate_histograms_without_panicking() {
        let events = vec![
            Event::Hist {
                name: "t.empty".into(),
                count: 0,
                sum: 0.0,
                bounds: vec![1.0, 10.0],
                counts: vec![0, 0, 0],
                t_us: 1,
            },
            Event::Hist {
                name: "t.overflow".into(),
                count: 4,
                sum: 400.0,
                bounds: vec![1.0, 10.0],
                counts: vec![0, 0, 4],
                t_us: 1,
            },
            Event::Hist {
                name: "t.single".into(),
                count: 1,
                sum: 5.0,
                bounds: vec![1.0, 10.0],
                counts: vec![0, 1, 0],
                t_us: 1,
            },
        ];
        let text = summarize(&events);
        // empty histogram: unknown quantiles render as "-", mean as 0
        assert!(text.contains("t.empty"), "{text}");
        assert!(text.contains('-'), "{text}");
        // all-in-overflow: last finite bound, not inf/NaN
        assert!(text.contains("t.overflow"), "{text}");
        assert!(!text.to_lowercase().contains("inf"), "{text}");
        assert!(!text.to_lowercase().contains("nan"), "{text}");
        assert!(text.contains("t.single"), "{text}");
    }
}
