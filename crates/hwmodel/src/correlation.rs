//! Cross-platform latency correlation study (§III-E of the paper).
//!
//! The paper justifies its multi-platform latency predictor by showing
//! that platform latencies correlate weakly in general — even the two
//! FPGAs disagree — while {Raspberry Pi 4, Pixel 3, ZC706} form a
//! correlated family at CIFAR input sizes that falls apart at other input
//! resolutions.

use crate::platform::{latency_ms, Platform};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A full 7x7 cross-platform correlation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    /// Pearson correlations indexed by `[Platform::index()][Platform::index()]`.
    values: [[f64; 7]; 7],
    dataset: Dataset,
}

impl CorrelationMatrix {
    /// Correlation between two platforms' latencies.
    pub fn get(&self, a: Platform, b: Platform) -> f64 {
        self.values[a.index()][b.index()]
    }

    /// The dataset (input size) the study was run on.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// Renders the matrix as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| |");
        for p in Platform::ALL {
            out.push_str(&format!(" {} |", p.name()));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in Platform::ALL {
            out.push_str("---|");
        }
        out.push('\n');
        for a in Platform::ALL {
            out.push_str(&format!("| {} |", a.name()));
            for b in Platform::ALL {
                out.push_str(&format!(" {:.2} |", self.get(a, b)));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes the cross-platform latency correlation over `samples` random
/// architectures of `space` at the input size of `dataset`.
pub fn latency_correlation(
    space: SearchSpaceId,
    dataset: Dataset,
    samples: usize,
    seed: u64,
) -> CorrelationMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let archs: Vec<Architecture> = (0..samples)
        .map(|_| Architecture::random(space, &mut rng))
        .collect();
    let mut latencies: Vec<Vec<f32>> = Vec::with_capacity(7);
    for p in Platform::ALL {
        latencies.push(
            archs
                .iter()
                .map(|a| latency_ms(a, dataset, p) as f32)
                .collect(),
        );
    }
    let mut values = [[0.0; 7]; 7];
    for a in Platform::ALL {
        for b in Platform::ALL {
            values[a.index()][b.index()] = if a == b {
                1.0
            } else {
                hwpr_metrics::pearson(&latencies[a.index()], &latencies[b.index()]).unwrap_or(0.0)
            };
        }
    }
    CorrelationMatrix { values, dataset }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = latency_correlation(SearchSpaceId::NasBench201, Dataset::Cifar10, 60, 0);
        for a in Platform::ALL {
            assert_eq!(m.get(a, a), 1.0);
            for b in Platform::ALL {
                assert!((m.get(a, b) - m.get(b, a)).abs() < 1e-9);
                assert!(m.get(a, b) <= 1.0 + 1e-9);
            }
        }
        assert_eq!(m.dataset(), Dataset::Cifar10);
    }

    #[test]
    fn cpu_family_is_strongly_correlated_on_cifar() {
        // the paper's §III-E family: Raspberry Pi 4, Pixel 3, FPGA ZC706
        let m = latency_correlation(SearchSpaceId::NasBench201, Dataset::Cifar10, 150, 1);
        assert!(
            m.get(Platform::RaspberryPi4, Platform::Pixel3) > 0.9,
            "pi/pixel {}",
            m.get(Platform::RaspberryPi4, Platform::Pixel3)
        );
        assert!(
            m.get(Platform::RaspberryPi4, Platform::FpgaZc706) > 0.75,
            "pi/zc706 {}",
            m.get(Platform::RaspberryPi4, Platform::FpgaZc706)
        );
    }

    #[test]
    fn fpga_pair_is_weakly_correlated() {
        let m = latency_correlation(SearchSpaceId::NasBench201, Dataset::Cifar10, 150, 2);
        let c = m.get(Platform::FpgaZc706, Platform::FpgaZcu102);
        assert!(
            c < 0.45,
            "FPGAs should disagree (paper reports 0.23), got {c}"
        );
    }

    #[test]
    fn markdown_render_contains_all_platforms() {
        let m = latency_correlation(SearchSpaceId::NasBench201, Dataset::Cifar10, 30, 3);
        let md = m.to_markdown();
        for p in Platform::ALL {
            assert!(md.contains(p.name()));
        }
    }
}
