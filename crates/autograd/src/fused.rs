//! Fused kernels for the training hot path.
//!
//! Two multi-op fusions that dominate the surrogate's step time:
//!
//! * [`Tape::linear_act`] — `act(x @ w [+ bias])` as one GEMM plus one
//!   pointwise pass (replaces `matmul` + `add_bias` + activation, three
//!   nodes and three full-size temporaries, with a single node);
//! * [`Tape::lstm_step`] — a whole LSTM cell step as one node: a single
//!   `[batch, 4·hidden]` gate GEMM against the concatenated
//!   `[W_ih; W_hh]` weight, one fused bias+sigmoid/tanh gate pass, and the
//!   state update, producing a packed `[h | c]` output. The unfused
//!   equivalent records ~14 nodes per step.
//!
//! Both store exactly what their backward rule needs (the fused LSTM saves
//! the packed input and post-activation gates) and draw all storage from
//! the tape pool, so they are allocation-free in steady state.

use crate::error::AutogradError;
use crate::tape::{Act, Op, Tape, Var};
use crate::Result;
use hwpr_tensor::{
    fast_sigmoid_block, fast_tanh, fast_tanh_block, Matrix, PackedWeight, ShapeError,
};

/// Applies an optional row-broadcast `bias` and activation `act` in place:
/// the exact pointwise tail of [`Tape::linear_act`], factored out so the
/// tape-free frozen inference path runs the same loop and cannot drift.
///
/// # Errors
///
/// Returns a shape error when `bias` is not `[1, value.cols()]`.
pub fn apply_bias_act(value: &mut Matrix, bias: Option<&Matrix>, act: Act) -> Result<()> {
    let n = value.cols();
    if let Some(bv) = bias {
        if bv.shape() != (1, n) {
            return Err(AutogradError::Shape(ShapeError::new(
                "apply_bias_act",
                (1, n),
                bv.shape(),
            )));
        }
        let bias_row = bv.as_slice();
        for row in value.as_mut_slice().chunks_exact_mut(n) {
            for (v, &bias_v) in row.iter_mut().zip(bias_row) {
                *v = act.apply(*v + bias_v);
            }
        }
    } else {
        // Whole-panel block kernels for the saturating activations: same
        // scalar arithmetic lane for lane (`fast_*_block` is bit-identical
        // to `Act::apply`), but the slice form hands the vectoriser one
        // long branch-free loop over the `[batch, n]` panel.
        match act {
            Act::Identity => {}
            Act::Tanh => fast_tanh_block(value.as_mut_slice()),
            Act::Sigmoid => fast_sigmoid_block(value.as_mut_slice()),
            _ => value.map_inplace(|v| act.apply(v)),
        }
    }
    Ok(())
}

/// Packs `[x | h_prev]` rows into `xh`: the forward staging step shared by
/// [`Tape::lstm_step`] and the frozen path. Only the first `input` columns
/// of each `x` row are read, so a packed `[h | c]` layer state can feed the
/// next layer without a column slice.
pub fn lstm_pack_xh(x: &Matrix, input: usize, hc: &Matrix, hidden: usize, xh: &mut Matrix) {
    for r in 0..x.rows() {
        let row = xh.row_mut(r);
        row[..input].copy_from_slice(&x.row(r)[..input]);
        row[input..].copy_from_slice(&hc.row(r)[..hidden]);
    }
}

/// Fused bias + gate activations in place: i, f, o sigmoid and g tanh on
/// the `[batch, 4·hidden]` pre-activation `gates` (gate order `[i f g o]`).
/// Each gate block is a contiguous slice processed by a branch-free
/// `fast_sigmoid`/`fast_tanh` loop the auto-vectoriser handles.
pub fn lstm_bias_gates(gates: &mut Matrix, bias: &Matrix, hidden: usize) {
    let width = 4 * hidden;
    let bv = bias.as_slice();
    // One uniform pass over each full `[i f g o]` row instead of three
    // narrow per-gate loops: at practical hidden sizes a single gate
    // block is shorter than a vector register, which forces the split
    // form onto the scalar epilogue. `fast_sigmoid` is exactly
    // `0.5 + 0.5·fast_tanh(0.5·x)`, and both selector constants are
    // powers of two (the pre-scale is exact), so evaluating every lane
    // through `fast_tanh` with a per-lane affine select is bit-identical
    // to the per-gate branch.
    if width <= MAX_GATE_WIDTH {
        // Every row shares the same lane classification, so stage the
        // selector constants per column once and split the work into a
        // prescale sweep, one [`fast_tanh_block`] over the **whole**
        // `[batch, 4·hidden]` panel (a single long contiguous loop with
        // no per-row epilogue), and an affine output sweep. Each lane
        // sees exactly the arithmetic of the fallback loop below.
        let mut scale = [0.0f32; MAX_GATE_WIDTH];
        let mut base = [0.0f32; MAX_GATE_WIDTH];
        let mut gain = [0.0f32; MAX_GATE_WIDTH];
        for j in 0..width {
            let is_tanh_lane = j >= 2 * hidden && j < 3 * hidden;
            (scale[j], base[j], gain[j]) = if is_tanh_lane {
                (1.0, 0.0, 1.0)
            } else {
                (0.5, 0.5, 0.5)
            };
        }
        let (sc, ba, ga) = (&scale[..width], &base[..width], &gain[..width]);
        for row in gates.as_mut_slice().chunks_exact_mut(width) {
            for (g, (&b, &s)) in row.iter_mut().zip(bv.iter().zip(sc)) {
                *g = s * (*g + b);
            }
        }
        fast_tanh_block(gates.as_mut_slice());
        for row in gates.as_mut_slice().chunks_exact_mut(width) {
            for (g, (&a, &m)) in row.iter_mut().zip(ba.iter().zip(ga)) {
                *g = a + m * *g;
            }
        }
        return;
    }
    for row in gates.as_mut_slice().chunks_exact_mut(width) {
        for (j, (g, &b)) in row.iter_mut().zip(bv).enumerate() {
            let is_tanh_lane = j >= 2 * hidden && j < 3 * hidden;
            let (scale, base, gain) = if is_tanh_lane {
                (1.0, 0.0, 1.0)
            } else {
                (0.5, 0.5, 0.5)
            };
            let t = fast_tanh(scale * (*g + b));
            *g = base + gain * t;
        }
    }
}

/// Widest `4·hidden` gate row the staged [`lstm_bias_gates`] fast path
/// covers from stack-resident selector arrays (hidden sizes ≤ 64).
const MAX_GATE_WIDTH: usize = 256;

/// LSTM state update from post-activation gates: `c_new = f·c_prev + i·g`,
/// `h_new = o·tanh(c_new)`, written into the packed `[h_new | c_new]`
/// output. Gate blocks are pre-split into equal-length slices so the `j`
/// loop has provable bounds and vectorises.
pub fn lstm_state_update(gates: &Matrix, hc_prev: &Matrix, hidden: usize, out: &mut Matrix) {
    if hidden <= 16 {
        // At vector-register-or-smaller hidden sizes the natural loop's
        // trip count defeats the vectoriser, so blocks of rows stage
        // `c_new` **contiguously** (no pad lanes — every staged lane is
        // live) into a stack buffer and push it through one long
        // [`fast_tanh_block`] pass, which compiles to full-width FMA
        // chains with no per-row epilogue. Live lanes see the exact
        // arithmetic of the general loop below.
        const CV: usize = 256;
        let rows = gates.rows();
        let block_rows = CV / hidden;
        let w4 = 4 * hidden;
        let w2 = 2 * hidden;
        let gs_all = gates.as_slice();
        let ps_all = hc_prev.as_slice();
        let os_all = out.as_mut_slice();
        let mut r = 0;
        while r < rows {
            let blk = (rows - r).min(block_rows);
            let live = blk * hidden;
            let mut cv = [0.0f32; CV];
            let gs = &gs_all[r * w4..(r + blk) * w4];
            let ps = &ps_all[r * w2..(r + blk) * w2];
            let os = &mut os_all[r * w2..(r + blk) * w2];
            for ((gr, pr), (or_, lanes)) in gs.chunks_exact(w4).zip(ps.chunks_exact(w2)).zip(
                os.chunks_exact_mut(w2)
                    .zip(cv[..live].chunks_exact_mut(hidden)),
            ) {
                let (i_g, rest) = gr.split_at(hidden);
                let (f_g, rest) = rest.split_at(hidden);
                let (g_g, _) = rest.split_at(hidden);
                let c_prev = &pr[hidden..];
                let c_out = &mut or_[hidden..];
                for j in 0..hidden {
                    let c_new = f_g[j] * c_prev[j] + i_g[j] * g_g[j];
                    c_out[j] = c_new;
                    lanes[j] = c_new;
                }
            }
            fast_tanh_block(&mut cv[..live]);
            for (gr, (or_, lanes)) in gs
                .chunks_exact(w4)
                .zip(os.chunks_exact_mut(w2).zip(cv[..live].chunks_exact(hidden)))
            {
                let o_g = &gr[3 * hidden..];
                let h_out = &mut or_[..hidden];
                for j in 0..hidden {
                    h_out[j] = o_g[j] * lanes[j];
                }
            }
            r += blk;
        }
        return;
    }
    for r in 0..gates.rows() {
        let gr = gates.row(r);
        let (i_g, rest) = gr.split_at(hidden);
        let (f_g, rest) = rest.split_at(hidden);
        let (g_g, o_g) = rest.split_at(hidden);
        let c_prev = &hc_prev.row(r)[hidden..];
        let (h_out, c_out) = out.row_mut(r).split_at_mut(hidden);
        for j in 0..hidden {
            let c_new = f_g[j] * c_prev[j] + i_g[j] * g_g[j];
            c_out[j] = c_new;
            h_out[j] = o_g[j] * fast_tanh(c_new);
        }
    }
}

/// Tape-free fused LSTM cell step against a prepacked gate weight: the
/// frozen-inference form of [`Tape::lstm_step`], built from the same three
/// stages (pack, bias+gates, state update) so the two are bit-identical.
///
/// `x` may be wider than `input` (only its first `input` columns are read),
/// letting a previous layer's packed `[h | c]` state feed the next layer
/// directly. `xh` (`[batch, input + hidden]`) and `gates`
/// (`[batch, 4·hidden]`) are caller-provided scratch; `out` receives the
/// packed `[h_new | c_new]` next state.
///
/// # Errors
///
/// Returns a shape error when the prepacked weight does not match the
/// staged `xh`/`gates` shapes.
#[allow(clippy::too_many_arguments)]
pub fn lstm_step_frozen(
    x: &Matrix,
    input: usize,
    hc: &Matrix,
    w: &PackedWeight,
    bias: &Matrix,
    xh: &mut Matrix,
    gates: &mut Matrix,
    out: &mut Matrix,
) -> Result<()> {
    let hidden = hc.cols() / 2;
    lstm_pack_xh(x, input, hc, hidden, xh);
    xh.matmul_prepacked_into(w, gates)?;
    lstm_bias_gates(gates, bias, hidden);
    lstm_state_update(gates, hc, hidden, out);
    Ok(())
}

impl Tape {
    /// Fused affine + activation: `act(x @ w + bias)` in one node.
    ///
    /// `x` is `[batch, in]`, `w` is `[in, out]` and `bias`, when given, is
    /// `[1, out]`. Pass [`Act::Identity`] for a plain (optionally biased)
    /// matmul that still skips the intermediate nodes.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operand shapes are inconsistent.
    pub fn linear_act(&mut self, x: Var, w: Var, bias: Option<Var>, act: Act) -> Result<Var> {
        let (m, _) = self.nodes[x.0].value.shape();
        let n = self.nodes[w.0].value.cols();
        let mut value = self.pool.take(m, n);
        self.nodes[x.0]
            .value
            .matmul_into(&self.nodes[w.0].value, &mut value)?;
        if let Err(e) = apply_bias_act(&mut value, bias.map(|b| &self.nodes[b.0].value), act) {
            self.pool.put(value);
            return Err(e);
        }
        Ok(self.push(value, Op::LinearAct { x, w, bias, act }))
    }

    /// Fused LSTM cell step.
    ///
    /// `x` is the step input `[batch, in]`, `hc` the packed previous state
    /// `[h_prev | c_prev]` of shape `[batch, 2·hidden]`, `w` the stacked
    /// weight `[W_ih; W_hh]` of shape `[in + hidden, 4·hidden]` and `bias`
    /// the gate bias `[1, 4·hidden]`. Gate order is `[i f g o]`. Returns
    /// the packed next state `[h_new | c_new]`, ready to feed the next
    /// step's `hc` without slicing; take `slice_cols(out, 0, hidden)` for
    /// the hidden output only.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operand shapes are inconsistent.
    pub fn lstm_step(&mut self, x: Var, hc: Var, w: Var, bias: Var) -> Result<Var> {
        let (batch, input) = self.nodes[x.0].value.shape();
        let hc_shape = self.nodes[hc.0].value.shape();
        let w_shape = self.nodes[w.0].value.shape();
        let bias_shape = self.nodes[bias.0].value.shape();
        let hidden = hc_shape.1 / 2;
        if hidden == 0 || hc_shape != (batch, 2 * hidden) || !hc_shape.1.is_multiple_of(2) {
            return Err(AutogradError::Shape(ShapeError::new(
                "lstm_step",
                (batch, 2 * hidden.max(1)),
                hc_shape,
            )));
        }
        if w_shape != (input + hidden, 4 * hidden) {
            return Err(AutogradError::Shape(ShapeError::new(
                "lstm_step",
                (input + hidden, 4 * hidden),
                w_shape,
            )));
        }
        if bias_shape != (1, 4 * hidden) {
            return Err(AutogradError::Shape(ShapeError::new(
                "lstm_step",
                (1, 4 * hidden),
                bias_shape,
            )));
        }

        // pack [x | h_prev] once; it feeds the gate GEMM forward and the
        // weight-gradient GEMM backward
        let mut xh = self.pool.take(batch, input + hidden);
        lstm_pack_xh(
            &self.nodes[x.0].value,
            input,
            &self.nodes[hc.0].value,
            hidden,
            &mut xh,
        );

        // one [batch, 4·hidden] GEMM for all four gates, against weight
        // panels packed once per pass and shared by every sequence step
        let mut gates = self.pool.take(batch, 4 * hidden);
        let pack = match self.packs.take(w.0, false) {
            Some(pack) => pack,
            None => {
                let mut pack = self.packs.spare();
                pack.pack(&self.nodes[w.0].value);
                pack
            }
        };
        xh.matmul_prepacked_into(&pack, &mut gates)?;
        self.packs.put(w.0, false, pack);

        // fused bias + gate activations (i, f, o sigmoid; g tanh) followed
        // by the state update — the same shared stages the frozen path
        // runs, so taped and tape-free inference stay bit-identical. libm
        // `exp`/`tanh` here used to cost more than the gate GEMM.
        lstm_bias_gates(&mut gates, &self.nodes[bias.0].value, hidden);
        let mut value = self.pool.take(batch, 2 * hidden);
        lstm_state_update(&gates, &self.nodes[hc.0].value, hidden, &mut value);

        Ok(self.push(
            value,
            Op::LstmStep {
                x,
                hc,
                w,
                bias,
                xh,
                gates,
            },
        ))
    }

    pub(crate) fn backprop_linear_act(
        &mut self,
        i: usize,
        x: Var,
        w: Var,
        bias: Option<Var>,
        act: Act,
        grad: &Matrix,
    ) -> Result<()> {
        let (m, n) = grad.shape();
        // gradient at the pre-activation, via the stored output y
        let mut dpre = self.pool.take(m, n);
        {
            let y = self.nodes[i].value.as_slice();
            for ((d, &g), &yv) in dpre.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(y) {
                *d = g * act.dapply(yv);
            }
        }
        let k = self.nodes[x.0].value.cols();
        let mut dx = self.pool.take(m, k);
        dpre.matmul_nt_into(&self.nodes[w.0].value, &mut dx)?;
        // dw and db accumulate straight into the gradient slots (GEMM is
        // natively `C +=`), skipping a zeroed temporary per contribution
        self.ensure_grad(w);
        let mut dw = self.nodes[w.0].grad.take().expect("ensured above");
        self.nodes[x.0].value.matmul_tn_acc(&dpre, &mut dw)?;
        self.nodes[w.0].grad = Some(dw);
        if let Some(b) = bias {
            self.ensure_grad(b);
            let mut db = self.nodes[b.0].grad.take().expect("ensured above");
            dpre.sum_rows_acc(&mut db);
            self.nodes[b.0].grad = Some(db);
        }
        self.accumulate(x, dx);
        self.pool.put(dpre);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backprop_lstm_step(
        &mut self,
        i: usize,
        x: Var,
        hc: Var,
        w: Var,
        bias: Var,
        xh: &Matrix,
        gates: &Matrix,
        grad: &Matrix,
    ) -> Result<()> {
        let (batch, two_h) = grad.shape();
        let hidden = two_h / 2;
        let input = self.nodes[x.0].value.cols();

        let mut dpre = self.pool.take(batch, 4 * hidden);
        let mut dhc = self.pool.take(batch, 2 * hidden);
        {
            let value = &self.nodes[i].value; // [h_new | c_new]
            let hcv = &self.nodes[hc.0].value; // [h_prev | c_prev]
            for r in 0..batch {
                let gr = gates.row(r);
                let (i_g, rest) = gr.split_at(hidden);
                let (f_g, rest) = rest.split_at(hidden);
                let (g_g, o_g) = rest.split_at(hidden);
                let c_new = &value.row(r)[hidden..];
                let c_prev = &hcv.row(r)[hidden..];
                let (dh, dc_up) = grad.row(r).split_at(hidden);
                let (d_i, rest) = dpre.row_mut(r).split_at_mut(hidden);
                let (d_f, rest) = rest.split_at_mut(hidden);
                let (d_g, d_o) = rest.split_at_mut(hidden);
                let dc_out = &mut dhc.row_mut(r)[hidden..];
                for j in 0..hidden {
                    // must match the forward's fast_tanh so the stored
                    // h = o·tanh(c) and its derivative stay consistent
                    let tanh_c = fast_tanh(c_new[j]);
                    let dc_tot = dc_up[j] + dh[j] * o_g[j] * (1.0 - tanh_c * tanh_c);
                    d_i[j] = dc_tot * g_g[j] * i_g[j] * (1.0 - i_g[j]);
                    d_f[j] = dc_tot * c_prev[j] * f_g[j] * (1.0 - f_g[j]);
                    d_g[j] = dc_tot * i_g[j] * (1.0 - g_g[j] * g_g[j]);
                    d_o[j] = dh[j] * tanh_c * o_g[j] * (1.0 - o_g[j]);
                    dc_out[j] = dc_tot * f_g[j];
                }
            }
        }

        // dxh = dpre @ w^T splits into dx and dh_prev; w^T is packed once
        // per backward pass and shared by every step's backprop
        let mut dxh = self.pool.take(batch, input + hidden);
        let pack = match self.packs.take(w.0, true) {
            Some(pack) => pack,
            None => {
                let mut pack = self.packs.spare();
                pack.pack_transposed(&self.nodes[w.0].value);
                pack
            }
        };
        dpre.matmul_prepacked_into(&pack, &mut dxh)?;
        self.packs.put(w.0, true, pack);
        let mut dx = self.pool.take(batch, input);
        for r in 0..batch {
            let src = dxh.row(r);
            dx.row_mut(r).copy_from_slice(&src[..input]);
        }
        for r in 0..batch {
            let (head, _) = dhc.row_mut(r).split_at_mut(hidden);
            head.copy_from_slice(&dxh.row(r)[input..]);
        }

        // the weight and bias gradients accumulate across all sequence
        // steps; sum each step's contribution straight into the gradient
        // slot (GEMM is natively `C +=`) instead of filling and adding a
        // per-step temporary
        self.ensure_grad(w);
        let mut dw = self.nodes[w.0].grad.take().expect("ensured above");
        xh.matmul_tn_acc(&dpre, &mut dw)?;
        self.nodes[w.0].grad = Some(dw);
        self.ensure_grad(bias);
        let mut db = self.nodes[bias.0].grad.take().expect("ensured above");
        dpre.sum_rows_acc(&mut db);
        self.nodes[bias.0].grad = Some(db);

        self.accumulate(x, dx);
        self.accumulate(hc, dhc);
        self.pool.put(dpre);
        self.pool.put(dxh);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_difference_check;
    use hwpr_tensor::reference;

    fn det_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) * 0.09)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn linear_act_gradients_all_activations() {
        for act in [Act::Identity, Act::Tanh, Act::Sigmoid] {
            // non-square with bias
            finite_difference_check(&[(2, 3), (3, 4), (1, 4)], move |tape, vars| {
                let y = tape.linear_act(vars[0], vars[1], Some(vars[2]), act)?;
                Ok(tape.mean_all(y))
            });
            // batch = 1, no bias
            finite_difference_check(&[(1, 3), (3, 2)], move |tape, vars| {
                let y = tape.linear_act(vars[0], vars[1], None, act)?;
                Ok(tape.mean_all(y))
            });
        }
    }

    #[test]
    fn linear_act_relu_gradient_away_from_kink() {
        finite_difference_check(&[(2, 3), (3, 2)], |tape, vars| {
            // bias shifts pre-activations away from the ReLU kink
            let bias = tape.leaf(Matrix::filled(1, 2, 0.4));
            let y = tape.linear_act(vars[0], vars[1], Some(bias), Act::Relu)?;
            Ok(tape.mean_all(y))
        });
    }

    #[test]
    fn linear_act_matches_unfused_graph_and_reference() {
        let x = det_matrix(3, 5, 1);
        let w = det_matrix(5, 4, 2);
        let b = det_matrix(1, 4, 3);

        // fused pass
        let mut fused = Tape::new();
        let (fx, fw, fb) = (
            fused.leaf(x.clone()),
            fused.leaf(w.clone()),
            fused.leaf(b.clone()),
        );
        let fy = fused.linear_act(fx, fw, Some(fb), Act::Tanh).unwrap();
        let floss = fused.mean_all(fy);
        fused.backward(floss).unwrap();

        // unfused tape graph
        let mut plain = Tape::new();
        let (px, pw, pb) = (
            plain.leaf(x.clone()),
            plain.leaf(w.clone()),
            plain.leaf(b.clone()),
        );
        let mm = plain.matmul(px, pw).unwrap();
        let aff = plain.add_bias(mm, pb).unwrap();
        let py = plain.tanh(aff);
        let ploss = plain.mean_all(py);
        plain.backward(ploss).unwrap();

        // value vs the naive reference kernel
        let mut expect = reference::matmul(&x, &w).unwrap();
        for r in 0..expect.rows() {
            for (v, &bias_v) in expect.row_mut(r).iter_mut().zip(b.as_slice()) {
                *v = (*v + bias_v).tanh();
            }
        }
        for (f, e) in fused.value(fy).as_slice().iter().zip(expect.as_slice()) {
            assert!((f - e).abs() < 1e-5, "fused value {f} vs reference {e}");
        }

        // gradients vs the unfused graph
        for (fv, pv) in [(fx, px), (fw, pw), (fb, pb)] {
            let fg = fused.grad(fv).unwrap();
            let pg = plain.grad(pv).unwrap();
            for (a, b) in fg.as_slice().iter().zip(pg.as_slice()) {
                assert!((a - b).abs() < 1e-5, "grad mismatch: fused {a} unfused {b}");
            }
        }
    }

    #[test]
    fn linear_act_rejects_bad_bias() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 3));
        let w = tape.leaf(Matrix::zeros(3, 4));
        let b = tape.leaf(Matrix::zeros(1, 3));
        assert!(tape.linear_act(x, w, Some(b), Act::Identity).is_err());
    }

    #[test]
    fn lstm_step_gradients() {
        // batch 2, input 3, hidden 2 — non-square everywhere
        finite_difference_check(&[(2, 3), (2, 4), (5, 8), (1, 8)], |tape, vars| {
            let out = tape.lstm_step(vars[0], vars[1], vars[2], vars[3])?;
            Ok(tape.mean_all(out))
        });
        // batch = 1 edge shape
        finite_difference_check(&[(1, 2), (1, 6), (5, 12), (1, 12)], |tape, vars| {
            let out = tape.lstm_step(vars[0], vars[1], vars[2], vars[3])?;
            Ok(tape.mean_all(out))
        });
    }

    #[test]
    fn lstm_step_gradients_through_two_chained_steps() {
        // state threading: the second step's gradient must flow through the
        // packed hc output of the first
        finite_difference_check(&[(2, 3), (2, 4), (5, 8), (1, 8), (2, 3)], |tape, vars| {
            let s1 = tape.lstm_step(vars[0], vars[1], vars[2], vars[3])?;
            let s2 = tape.lstm_step(vars[4], s1, vars[2], vars[3])?;
            Ok(tape.mean_all(s2))
        });
    }

    #[test]
    fn lstm_step_matches_unfused_graph() {
        let batch = 3;
        let input = 4;
        let hidden = 2;
        let x = det_matrix(batch, input, 1);
        let h0 = det_matrix(batch, hidden, 2);
        let c0 = det_matrix(batch, hidden, 3);
        let w_ih = det_matrix(input, 4 * hidden, 4);
        let w_hh = det_matrix(hidden, 4 * hidden, 5);
        let bias = det_matrix(1, 4 * hidden, 6);

        // fused: packed hc and stacked weight
        let mut fused = Tape::new();
        let fx = fused.leaf(x.clone());
        let f_wih = fused.leaf(w_ih.clone());
        let f_whh = fused.leaf(w_hh.clone());
        let fw = fused.concat_rows(&[f_wih, f_whh]).unwrap();
        let fb = fused.leaf(bias.clone());
        let fhc = fused.leaf(Matrix::concat_cols(&[&h0, &c0]).unwrap());
        let fout = fused.lstm_step(fx, fhc, fw, fb).unwrap();
        let fh = fused.slice_cols(fout, 0, hidden).unwrap();
        let floss = fused.mean_all(fh);
        fused.backward(floss).unwrap();

        // unfused: the pre-fusion per-gate graph
        let mut plain = Tape::new();
        let px = plain.leaf(x.clone());
        let p_wih = plain.leaf(w_ih.clone());
        let p_whh = plain.leaf(w_hh.clone());
        let pb = plain.leaf(bias.clone());
        let ph = plain.leaf(h0.clone());
        let pc = plain.leaf(c0.clone());
        let gi = plain.matmul(px, p_wih).unwrap();
        let gh = plain.matmul(ph, p_whh).unwrap();
        let gsum = plain.add(gi, gh).unwrap();
        let gates = plain.add_bias(gsum, pb).unwrap();
        let i_pre = plain.slice_cols(gates, 0, hidden).unwrap();
        let f_pre = plain.slice_cols(gates, hidden, 2 * hidden).unwrap();
        let g_pre = plain.slice_cols(gates, 2 * hidden, 3 * hidden).unwrap();
        let o_pre = plain.slice_cols(gates, 3 * hidden, 4 * hidden).unwrap();
        let i_g = plain.sigmoid(i_pre);
        let f_g = plain.sigmoid(f_pre);
        let g_g = plain.tanh(g_pre);
        let o_g = plain.sigmoid(o_pre);
        let fc = plain.mul(f_g, pc).unwrap();
        let ig = plain.mul(i_g, g_g).unwrap();
        let c_new = plain.add(fc, ig).unwrap();
        let c_act = plain.tanh(c_new);
        let h_new = plain.mul(o_g, c_act).unwrap();
        let ploss = plain.mean_all(h_new);
        plain.backward(ploss).unwrap();

        // hidden output matches
        for r in 0..batch {
            for j in 0..hidden {
                let f = fused.value(fout)[(r, j)];
                let p = plain.value(h_new)[(r, j)];
                assert!((f - p).abs() < 1e-5, "h mismatch at ({r},{j}): {f} vs {p}");
            }
        }
        // cell state matches
        for r in 0..batch {
            for j in 0..hidden {
                let f = fused.value(fout)[(r, hidden + j)];
                let p = plain.value(c_new)[(r, j)];
                assert!((f - p).abs() < 1e-5, "c mismatch at ({r},{j}): {f} vs {p}");
            }
        }
        // every leaf gradient matches
        let pairs = [(fx, px), (f_wih, p_wih), (f_whh, p_whh), (fb, pb)];
        for (fv, pv) in pairs {
            let fg = fused.grad(fv).unwrap();
            let pg = plain.grad(pv).unwrap();
            assert_eq!(fg.shape(), pg.shape());
            for (a, b) in fg.as_slice().iter().zip(pg.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "leaf grad mismatch: fused {a} unfused {b}"
                );
            }
        }
        // packed dhc matches [dh | dc]
        let fg_hc = fused.grad(fhc).unwrap();
        let pg_h = plain.grad(ph).unwrap();
        let pg_c = plain.grad(pc).unwrap();
        for r in 0..batch {
            for j in 0..hidden {
                assert!((fg_hc[(r, j)] - pg_h[(r, j)]).abs() < 1e-5, "dh mismatch");
                assert!(
                    (fg_hc[(r, hidden + j)] - pg_c[(r, j)]).abs() < 1e-5,
                    "dc mismatch"
                );
            }
        }
    }

    #[test]
    fn lstm_step_rejects_bad_shapes() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 3));
        let hc = tape.leaf(Matrix::zeros(2, 4));
        let w = tape.leaf(Matrix::zeros(5, 8));
        let bias = tape.leaf(Matrix::zeros(1, 8));
        let bad_w = tape.leaf(Matrix::zeros(4, 8));
        let bad_bias = tape.leaf(Matrix::zeros(1, 4));
        let bad_hc = tape.leaf(Matrix::zeros(2, 3));
        assert!(tape.lstm_step(x, hc, bad_w, bias).is_err());
        assert!(tape.lstm_step(x, hc, w, bad_bias).is_err());
        assert!(tape.lstm_step(x, bad_hc, w, bias).is_err());
        assert!(tape.lstm_step(x, hc, w, bias).is_ok());
    }

    #[test]
    fn reset_reuses_fused_buffers_deterministically() {
        let run = |tape: &mut Tape| -> f32 {
            let x = tape.leaf_copy(&det_matrix(2, 3, 7));
            let hc = tape.leaf_copy(&det_matrix(2, 4, 8));
            let w = tape.leaf_copy(&det_matrix(5, 8, 9));
            let b = tape.leaf_copy(&det_matrix(1, 8, 10));
            let s = tape.lstm_step(x, hc, w, b).unwrap();
            let y = tape.linear_act(s, w, None, Act::Identity);
            // s is [2,4], w is [5,8]: shape error exercises the error path
            assert!(y.is_err());
            let loss = tape.mean_all(s);
            tape.backward(loss).unwrap();
            tape.value(loss)[(0, 0)]
        };
        let mut tape = Tape::new();
        let l1 = run(&mut tape);
        tape.reset();
        let l2 = run(&mut tape);
        assert_eq!(l1, l2);
    }
}
