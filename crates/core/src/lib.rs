//! **HW-PR-NAS** — the Pareto rank-preserving surrogate model of the
//! paper, plus the baseline surrogates it is compared against.
//!
//! The model (§III of the paper) scores an architecture so that higher
//! scores mean closer to the true Pareto front of (accuracy, latency):
//!
//! - an **accuracy branch**: GCN encoder over the architecture graph,
//!   concatenated with the manual Architecture Features (AF), feeding an
//!   MLP regressor;
//! - a **latency branch**: embedded-token LSTM encoder concatenated with
//!   AF, feeding a per-platform bank of MLP regressors (the
//!   *multi-platform latency predictor* of §III-E, indexed by the target
//!   hardware);
//! - a **fusion layer** that combines the two branch outputs into a single
//!   Pareto score.
//!
//! Training (§III-A) minimises the listwise **ListMLE Pareto ranking
//! loss** over each batch, sorted by true non-dominated-sorting rank,
//! plus per-branch RMSE auxiliary losses, with the Table II
//! hyperparameters (AdamW, lr 3e-4, cosine annealing, batch 128,
//! dropout 0.02, weight decay 3e-4, 80 epochs with early stopping).
//!
//! Also provided:
//!
//! - [`predictor`] — standalone single-objective predictors with
//!   swappable encoders (AF / LSTM / GCN / combinations) and heads (MLP /
//!   XGBoost / LGBoost) for the Fig. 4 and Table I studies;
//! - [`baselines`] — BRP-NAS-style (two GCN regressors) and GATES-style
//!   (hinge-ranking GCN) surrogate pairs;
//! - [`scalable`] — the ≥3-objective variant of §III-F (frozen encoders,
//!   one MLP fine-tuned for 5 epochs).

#![warn(missing_docs)]
pub mod baselines;
pub mod config;
pub mod data;
pub mod encoders;
pub mod frozen;
pub mod model;
pub mod persist;
pub mod predictor;
pub mod scalable;
mod train;

pub use config::{ModelConfig, TrainConfig};
pub use data::{ArchSample, EncodingCache, SurrogateDataset};
pub use frozen::{FrozenModel, InferArena};
pub use hwpr_tensor::Precision;
pub use model::HwPrNas;
pub use persist::{observe_saves, SaveWatch};
pub use train::{nb201_fraction, TrainReport};

use std::error::Error;
use std::fmt;

/// Error produced when building or training surrogate models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A neural-network layer failed (shape mismatch, invalid config).
    Nn(hwpr_nn::NnError),
    /// A gradient-boosting model failed to fit.
    Gbdt(hwpr_gbdt::GbdtError),
    /// Pareto-rank computation failed on the batch objectives.
    Moo(hwpr_moo::MooError),
    /// The training data is unusable (empty, inconsistent).
    Data(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "{e}"),
            CoreError::Gbdt(e) => write!(f, "{e}"),
            CoreError::Moo(e) => write!(f, "{e}"),
            CoreError::Data(msg) => write!(f, "invalid training data: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Gbdt(e) => Some(e),
            CoreError::Moo(e) => Some(e),
            CoreError::Data(_) => None,
        }
    }
}

impl From<hwpr_nn::NnError> for CoreError {
    fn from(e: hwpr_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<hwpr_autograd::AutogradError> for CoreError {
    fn from(e: hwpr_autograd::AutogradError) -> Self {
        CoreError::Nn(e.into())
    }
}

impl From<hwpr_gbdt::GbdtError> for CoreError {
    fn from(e: hwpr_gbdt::GbdtError) -> Self {
        CoreError::Gbdt(e)
    }
}

impl From<hwpr_moo::MooError> for CoreError {
    fn from(e: hwpr_moo::MooError) -> Self {
        CoreError::Moo(e)
    }
}

/// Convenience alias for fallible surrogate operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: CoreError = hwpr_nn::NnError::Config("x".into()).into();
        assert!(e.to_string().contains('x'));
        assert!(Error::source(&e).is_some());
        let e: CoreError = hwpr_moo::MooError::EmptySet.into();
        assert!(!e.to_string().is_empty());
        let e = CoreError::Data("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(Error::source(&e).is_none());
    }
}
