//! Benchmarks behind Fig. 4: forward-pass cost of each encoder scheme
//! (AF extraction, LSTM over tokens, GCN over the architecture graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_bench::fixture_archs;
use hwpr_core::data::EncodingCache;
use hwpr_core::encoders::{EncoderChoice, EncoderSet};
use hwpr_core::ModelConfig;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_nn::layers::LayerRng;
use hwpr_nn::{Binder, Params};
use rand_chacha::rand_core::SeedableRng;

fn bench_encoders(c: &mut Criterion) {
    let archs = fixture_archs(SearchSpaceId::NasBench201, 64);
    let mut group = c.benchmark_group("fig4_encoders");
    for choice in EncoderChoice::FIG4_VARIANTS {
        group.bench_with_input(
            BenchmarkId::new("forward", choice.to_string()),
            &choice,
            |b, &choice| {
                let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
                let mut params = Params::new();
                let encoder = EncoderSet::new(
                    &mut params,
                    "enc",
                    &ModelConfig::fast(),
                    choice,
                    &cache,
                    &archs,
                )
                .expect("encoder build failed");
                // warm the cache so we measure the model, not profiling
                for a in &archs {
                    let _ = cache.encoding(a);
                }
                let mut rng = LayerRng::seed_from_u64(0);
                b.iter(|| {
                    let mut tape = hwpr_autograd::Tape::new();
                    let mut binder = Binder::new(&mut tape, &params);
                    encoder
                        .forward(&mut binder, &cache, &archs, &mut rng)
                        .expect("forward failed");
                    tape.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
