//! Throughput of one MOEA generation's surrogate evaluation: serial vs
//! `crossbeam`-chunked parallel prediction, and a cold vs warm
//! cross-generation score cache.
//!
//! The parallel rows measure the same batch split across 4 worker
//! threads; on a single-core host they can only match the serial path
//! (the thread pool adds a little overhead), while on a multi-core host
//! they scale with the cores. The warm-cache row is the speedup the
//! cache contributes once a generation's offspring repeat earlier
//! architectures (mutation rate 0.9 repeats many).

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::fixture_dataset;
use hwpr_core::{HwPrNas, ModelConfig, TrainConfig};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, SearchSpaceId};
use hwpr_search::{Evaluator, HwPrNasEvaluator, ScoreCache, SearchClock};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// One paper-sized generation: population 150.
const GENERATION: usize = 150;

fn generation_batch(seed: u64) -> Vec<Architecture> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..GENERATION)
        .map(|_| Architecture::random(SearchSpaceId::NasBench201, &mut rng))
        .collect()
}

fn evaluate_once(eval: &mut HwPrNasEvaluator, archs: &[Architecture]) {
    let mut clock = SearchClock::unbounded();
    eval.evaluate(archs, &mut clock).expect("evaluation runs");
}

fn bench_surrogate(c: &mut Criterion) {
    let data = fixture_dataset(96);
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("tiny fit");
    let model = Arc::new(model);
    let archs = generation_batch(11);

    let mut group = c.benchmark_group("surrogate_throughput");
    group.sample_size(10);
    group.bench_function("predict_full/serial", |b| {
        b.iter(|| {
            model
                .predict_full(&archs, Platform::EdgeGpu)
                .expect("predict")
        });
    });
    group.bench_function("predict_full/parallel4", |b| {
        b.iter(|| {
            model
                .predict_full_parallel(&archs, Platform::EdgeGpu, 4)
                .expect("predict")
        });
    });
    // a full generation step through the evaluator, cache cold every
    // iteration (fresh evaluator => fresh private cache)
    group.bench_function("generation_eval/serial_cold", |b| {
        b.iter(|| {
            let mut eval =
                HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(1);
            evaluate_once(&mut eval, &archs);
        });
    });
    group.bench_function("generation_eval/parallel4_cold", |b| {
        b.iter(|| {
            let mut eval =
                HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu).with_threads(4);
            evaluate_once(&mut eval, &archs);
        });
    });
    // warm cross-generation cache: every architecture already scored
    let warm = Arc::new(ScoreCache::new());
    {
        let mut eval = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu)
            .with_shared_cache(Arc::clone(&warm));
        evaluate_once(&mut eval, &archs);
    }
    group.bench_function("generation_eval/warm_cache", |b| {
        b.iter(|| {
            let mut eval = HwPrNasEvaluator::new(Arc::clone(&model), Platform::EdgeGpu)
                .with_shared_cache(Arc::clone(&warm))
                .with_threads(1);
            evaluate_once(&mut eval, &archs);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_surrogate);
criterion_main!(benches);
