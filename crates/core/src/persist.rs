//! Saving and loading trained HW-PR-NAS models.
//!
//! Training a surrogate costs GPU-hours in the paper's setting (Table II);
//! a downstream user searches many times with one trained model, so the
//! model must round-trip through disk. The format is a single JSON
//! document: the [`ModelConfig`], the target metadata, and every
//! parameter matrix in registration order (registration order is a pure
//! function of the config, so rebuilding the architecture and overwriting
//! the weights reproduces the exact model).

use crate::config::ModelConfig;
use crate::data::EncodingCache;
use crate::model::HwPrNas;
use crate::{CoreError, Result};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, Dataset};
use hwpr_tensor::Matrix;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// On-disk representation of a trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Network sizes (drives the rebuild).
    pub model_config: ModelConfig,
    /// Platforms with latency heads, in head order.
    pub platforms: Vec<Platform>,
    /// Latency normalisation per head.
    pub max_latency: Vec<f64>,
    /// Dataset the model was trained for.
    pub dataset: Dataset,
    /// Graph padding size of the encoding cache.
    pub cache_nodes: usize,
    /// Token padding length of the encoding cache.
    pub cache_seq_len: usize,
    /// The accuracy branch's fitted AF normaliser.
    pub accuracy_normalizer: Option<hwpr_nasbench::features::FeatureNormalizer>,
    /// The latency branch's fitted AF normaliser.
    pub latency_normalizer: Option<hwpr_nasbench::features::FeatureNormalizer>,
    /// Every parameter matrix, in registration order.
    pub parameters: Vec<Matrix>,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// A registered save observer (see [`observe_saves`]).
type SaveObserver = Arc<dyn Fn(&Path) + Send + Sync>;

static SAVE_OBSERVERS: OnceLock<Mutex<Vec<(u64, SaveObserver)>>> = OnceLock::new();
static NEXT_WATCH_ID: AtomicU64 = AtomicU64::new(1);

fn save_observers() -> &'static Mutex<Vec<(u64, SaveObserver)>> {
    SAVE_OBSERVERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registration handle returned by [`observe_saves`]; dropping it
/// removes the observer.
#[must_use = "dropping the watch immediately unregisters the observer"]
pub struct SaveWatch {
    id: u64,
}

impl std::fmt::Debug for SaveWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaveWatch").field("id", &self.id).finish()
    }
}

impl Drop for SaveWatch {
    fn drop(&mut self) {
        save_observers().lock().retain(|(id, _)| *id != self.id);
    }
}

/// Registers a process-wide observer called (on the saving thread, after
/// the file is fully written) every time [`HwPrNas::save`] succeeds.
///
/// This is the hot-swap hook the serving layer builds on: a model
/// registry watches the path a trainer persists to and republishes the
/// retrained weights the moment they hit disk. Observers receive the
/// path exactly as the saver passed it and must not panic.
pub fn observe_saves(observer: impl Fn(&Path) + Send + Sync + 'static) -> SaveWatch {
    let id = NEXT_WATCH_ID.fetch_add(1, Ordering::Relaxed);
    save_observers().lock().push((id, Arc::new(observer)));
    SaveWatch { id }
}

/// Snapshots and invokes the registered save observers for `path`.
fn notify_saved(path: &Path) {
    // snapshot under the lock, call outside it: an observer is allowed to
    // save another model (republish flows) without deadlocking
    let observers: Vec<SaveObserver> = save_observers()
        .lock()
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .collect();
    for observer in observers {
        observer(path);
    }
}

/// Serialises `value` and writes it to `path` as a single JSON document —
/// the on-disk convention every persisted artifact in the workspace
/// follows (trained models here, search snapshots in `hwpr-search`).
///
/// # Errors
///
/// Returns [`CoreError::Data`] on serialisation or I/O failure.
pub fn write_json_file<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<()> {
    let json =
        serde_json::to_string(value).map_err(|e| CoreError::Data(format!("serialise: {e}")))?;
    std::fs::write(path.as_ref(), json)
        .map_err(|e| CoreError::Data(format!("write {}: {e}", path.as_ref().display())))
}

/// Reads and parses a JSON document previously written by
/// [`write_json_file`]. Version checking stays with the caller: the
/// document's `version` field means different things per artifact type.
///
/// # Errors
///
/// Returns [`CoreError::Data`] on I/O or parse failure.
pub fn read_json_file<T: Deserialize>(path: impl AsRef<Path>) -> Result<T> {
    let json = std::fs::read_to_string(path.as_ref())
        .map_err(|e| CoreError::Data(format!("read {}: {e}", path.as_ref().display())))?;
    serde_json::from_str(&json).map_err(|e| CoreError::Data(format!("parse: {e}")))
}

impl HwPrNas {
    /// The model's on-disk form (always at the current
    /// [`FORMAT_VERSION`]).
    fn saved(&self) -> SavedModel {
        let parameters: Vec<Matrix> = self
            .params
            .ids()
            .into_iter()
            .map(|id| self.params.get(id).clone())
            .collect();
        SavedModel {
            version: FORMAT_VERSION,
            model_config: self.model_config.clone(),
            platforms: self.platforms.clone(),
            max_latency: self.max_latency.clone(),
            dataset: self.dataset,
            cache_nodes: self.cache.nodes(),
            cache_seq_len: self.cache.seq_len(),
            accuracy_normalizer: self.accuracy_encoder.normalizer().cloned(),
            latency_normalizer: self.latency_encoder.normalizer().cloned(),
            parameters,
        }
    }

    /// Serialises the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] if serialisation fails (cannot happen
    /// for well-formed models).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(&self.saved()).map_err(|e| CoreError::Data(format!("serialise: {e}")))
    }

    /// Writes the model to `path` as JSON and notifies any registered
    /// save observers (see [`observe_saves`]) once the write succeeded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] on I/O or serialisation failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        write_json_file(&self.saved(), path.as_ref())?;
        notify_saved(path.as_ref());
        Ok(())
    }

    /// Rebuilds a model from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] when the document is malformed, the
    /// version is unsupported, or the parameter shapes disagree with the
    /// rebuilt architecture.
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: SavedModel =
            serde_json::from_str(json).map_err(|e| CoreError::Data(format!("parse: {e}")))?;
        Self::from_saved(saved)
    }

    /// Rebuilds a model from its parsed on-disk form.
    fn from_saved(saved: SavedModel) -> Result<Self> {
        if saved.version != FORMAT_VERSION {
            return Err(CoreError::Data(format!(
                "unsupported model format version {} (expected {FORMAT_VERSION})",
                saved.version
            )));
        }
        let cache = EncodingCache::new(saved.dataset, saved.cache_nodes, saved.cache_seq_len);
        // any single architecture suffices to construct the encoders; the
        // fitted normalisers are restored explicitly right after
        let seed_arch = Architecture::nb201_from_index(0).expect("index 0 exists");
        let mut model = Self::build(
            &saved.model_config,
            cache,
            &[seed_arch],
            saved.platforms,
            saved.max_latency,
            saved.dataset,
        )?;
        if let Some(n) = saved.accuracy_normalizer {
            model.accuracy_encoder.set_normalizer(n);
        }
        if let Some(n) = saved.latency_normalizer {
            model.latency_encoder.set_normalizer(n);
        }
        let ids = model.params.ids();
        if ids.len() != saved.parameters.len() {
            return Err(CoreError::Data(format!(
                "parameter count mismatch: document has {}, architecture needs {}",
                saved.parameters.len(),
                ids.len()
            )));
        }
        for (id, value) in ids.into_iter().zip(saved.parameters) {
            if model.params.get(id).shape() != value.shape() {
                return Err(CoreError::Data(format!(
                    "parameter `{}` shape mismatch",
                    model.params.name(id)
                )));
            }
            *model.params.get_mut(id) = value;
        }
        // the weights changed after build: any frozen engine compiled in
        // between (none today, but cheap insurance) would be stale
        model.invalidate_frozen();
        Ok(model)
    }

    /// Loads a model previously written by [`HwPrNas::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Data`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_saved(read_json_file(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::data::SurrogateDataset;
    use hwpr_hwmodel::{SimBench, SimBenchConfig};
    use hwpr_nasbench::SearchSpaceId;

    fn trained() -> (HwPrNas, SurrogateDataset) {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(40),
            seed: 8,
        });
        let data =
            SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        (model, data)
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let (model, data) = trained();
        let archs: Vec<Architecture> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.arch.clone())
            .collect();
        let before = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        let json = model.to_json().unwrap();
        let restored = HwPrNas::from_json(&json).unwrap();
        let after = restored.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (b - a).abs() < 1e-5,
                "prediction drift after round trip: {b} vs {a}"
            );
        }
        assert_eq!(restored.platforms(), model.platforms());
        assert_eq!(restored.dataset(), model.dataset());
    }

    #[test]
    fn save_and_load_via_file() {
        let (model, data) = trained();
        let dir = std::env::temp_dir().join("hwpr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let restored = HwPrNas::load(&path).unwrap();
        let arch = data.samples()[0].arch.clone();
        assert_eq!(
            model
                .predict_scores(std::slice::from_ref(&arch), Platform::EdgeGpu)
                .unwrap(),
            restored.predict_scores(&[arch], Platform::EdgeGpu).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let (model, _) = trained();
        let mut json = model.to_json().unwrap();
        json = json.replacen("\"version\":1", "\"version\":99", 1);
        assert!(HwPrNas::from_json(&json).is_err());
        assert!(HwPrNas::from_json("{not json").is_err());
        assert!(HwPrNas::load("/nonexistent/path/model.json").is_err());
    }

    #[test]
    fn save_observers_fire_after_save_and_unregister_on_drop() {
        let (model, _) = trained();
        let dir = std::env::temp_dir().join("hwpr_persist_watch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watched.json");
        let seen = Arc::new(Mutex::new(0usize));
        // other tests in the binary save models concurrently: the
        // observer counts only its own path
        let watch = observe_saves({
            let seen = Arc::clone(&seen);
            move |p: &Path| {
                if p.ends_with("watched.json") {
                    *seen.lock() += 1;
                }
            }
        });
        model.save(&path).unwrap();
        assert_eq!(*seen.lock(), 1, "observer must fire once per save");
        drop(watch);
        model.save(&path).unwrap();
        assert_eq!(*seen.lock(), 1, "a dropped watch must not fire");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_normalizers_match() {
        let (model, _) = trained();
        let json = model.to_json().unwrap();
        let restored = HwPrNas::from_json(&json).unwrap();
        assert_eq!(
            model.accuracy_encoder.normalizer(),
            restored.accuracy_encoder.normalizer()
        );
        assert_eq!(
            model.latency_encoder.normalizer(),
            restored.latency_encoder.normalizer()
        );
    }
}
