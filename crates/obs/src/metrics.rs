//! Typed process-global metrics: counters, gauges and histograms.
//!
//! All metric updates are lock-free relaxed atomics, so instrumented hot
//! paths never contend and never allocate. Handles are `Arc`s; the global
//! [`Registry`] tracks every live metric through weak references and can
//! snapshot them all into the event stream ([`Registry::emit`]).
//!
//! Two handle styles cover the workspace's needs:
//!
//! - **Named get-or-create** ([`Registry::counter`] & friends) for static
//!   instrumentation points (GEMM FLOP counts, backward-pass timings);
//!   the registry keeps these alive for the process lifetime.
//! - **Instance registration** ([`Registry::register_counter`]) for
//!   per-object counters (one `ScoreCache` per evaluator); the metric
//!   dies with its owner and [`Registry::snapshot`] sums live instances
//!   that share a name.

use crate::event::Event;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// A monotonically increasing counter.
///
/// [`Counter::add`] counts unconditionally (a relaxed `fetch_add`), so
/// counters double as functional statistics — the `ScoreCache` hit/miss
/// counters feed `SearchResult::surrogate_calls` even with telemetry off.
/// Hot paths that only want the count under telemetry should gate the
/// call on [`crate::enabled`].
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    /// Creates a standalone counter (see [`Registry::register_counter`]).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the count to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point gauge (f64 bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a standalone gauge reading 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `counts[i]` observations fell in
/// `(bounds[i-1], bounds[i]]`, with one extra overflow bucket past the
/// last bound. Updates are per-bucket relaxed atomics plus a CAS loop for
/// the running sum, so concurrent observers never lose counts.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    pub fn new(name: impl Into<String>, bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            name: name.into(),
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// `n` exponential bucket bounds starting at `first` and growing by
    /// `factor` — the workspace default for latency-style metrics.
    pub fn exponential_bounds(first: f64, factor: f64, n: usize) -> Vec<f64> {
        let mut bound = first;
        (0..n)
            .map(|_| {
                let b = bound;
                bound *= factor;
                b
            })
            .collect()
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot as an [`Event::Hist`].
    pub fn to_event(&self, t_us: u64) -> Event {
        Event::Hist {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum(),
            bounds: self.bounds.clone(),
            counts: self.bucket_counts(),
            t_us,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    // named handles are kept alive for the process lifetime
    named_counters: HashMap<String, Arc<Counter>>,
    named_gauges: HashMap<String, Arc<Gauge>>,
    named_histograms: HashMap<String, Arc<Histogram>>,
    // instance metrics live only as long as their owners
    counters: Vec<Weak<Counter>>,
    gauges: Vec<Weak<Gauge>>,
    histograms: Vec<Weak<Histogram>>,
}

/// The process-global metric registry (see [`registry`]).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// An aggregated point-in-time view of every live metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter totals by name (instances sharing a name are summed).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (last registered instance wins).
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots (one per live instance).
    pub histograms: Vec<Event>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Returns the counter named `name`, creating (and keeping alive) a
    /// fresh one on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some(existing) = inner.named_counters.get(name) {
            return Arc::clone(existing);
        }
        let counter = Arc::new(Counter::new(name));
        inner.counters.push(Arc::downgrade(&counter));
        inner
            .named_counters
            .insert(name.to_string(), Arc::clone(&counter));
        counter
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some(existing) = inner.named_gauges.get(name) {
            return Arc::clone(existing);
        }
        let gauge = Arc::new(Gauge::new(name));
        inner.gauges.push(Arc::downgrade(&gauge));
        inner
            .named_gauges
            .insert(name.to_string(), Arc::clone(&gauge));
        gauge
    }

    /// Returns the histogram named `name`, creating it with `bounds` on
    /// first use (later callers inherit the first bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some(existing) = inner.named_histograms.get(name) {
            return Arc::clone(existing);
        }
        let histogram = Arc::new(Histogram::new(name, bounds));
        inner.histograms.push(Arc::downgrade(&histogram));
        inner
            .named_histograms
            .insert(name.to_string(), Arc::clone(&histogram));
        histogram
    }

    /// Registers a per-instance counter. The registry holds only a weak
    /// reference: the counter disappears from snapshots when its owner
    /// drops it, and live instances sharing a name are summed.
    pub fn register_counter(&self, counter: Counter) -> Arc<Counter> {
        let counter = Arc::new(counter);
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .counters
            .push(Arc::downgrade(&counter));
        counter
    }

    /// Registers a per-instance gauge (weakly held, like counters).
    pub fn register_gauge(&self, gauge: Gauge) -> Arc<Gauge> {
        let gauge = Arc::new(gauge);
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .gauges
            .push(Arc::downgrade(&gauge));
        gauge
    }

    /// Registers a per-instance histogram (weakly held).
    pub fn register_histogram(&self, histogram: Histogram) -> Arc<Histogram> {
        let histogram = Arc::new(histogram);
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .histograms
            .push(Arc::downgrade(&histogram));
        histogram
    }

    /// Aggregates every live metric, pruning dropped instances.
    pub fn snapshot(&self) -> Snapshot {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        let mut counters: Vec<(String, u64)> = Vec::new();
        inner.counters.retain(|weak| {
            let Some(counter) = weak.upgrade() else {
                return false;
            };
            match counters.iter_mut().find(|(n, _)| n == counter.name()) {
                Some((_, total)) => *total += counter.get(),
                None => counters.push((counter.name().to_string(), counter.get())),
            }
            true
        });
        let mut gauges: Vec<(String, f64)> = Vec::new();
        inner.gauges.retain(|weak| {
            let Some(gauge) = weak.upgrade() else {
                return false;
            };
            match gauges.iter_mut().find(|(n, _)| n == gauge.name()) {
                Some((_, value)) => *value = gauge.get(),
                None => gauges.push((gauge.name().to_string(), gauge.get())),
            }
            true
        });
        let t_us = crate::now_us();
        let mut histograms = Vec::new();
        inner.histograms.retain(|weak| {
            let Some(histogram) = weak.upgrade() else {
                return false;
            };
            histograms.push(histogram.to_event(t_us));
            true
        });
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Emits the full snapshot through the installed recorder (a no-op
    /// with telemetry off).
    pub fn emit(&self) {
        if !crate::enabled() {
            return;
        }
        let snapshot = self.snapshot();
        let t_us = crate::now_us();
        for (name, value) in snapshot.counters {
            crate::emit(Event::Counter { name, value, t_us });
        }
        for (name, value) in snapshot.gauges {
            crate::emit(Event::Gauge { name, value, t_us });
        }
        for hist in snapshot.histograms {
            crate::emit(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new("t.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new("t.gauge");
        g.set(2.5);
        g.set(-7.0);
        assert_eq!(g.get(), -7.0);
    }

    #[test]
    fn histogram_places_boundary_values_in_lower_bucket() {
        let h = Histogram::new("t.hist", &[1.0, 10.0, 100.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // boundary: still bucket 0 (<= bound)
        h.observe(1.0000001); // bucket 1
        h.observe(10.0); // bucket 1
        h.observe(99.9); // bucket 2
        h.observe(1e6); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (0.5 + 1.0 + 1.0000001 + 10.0 + 99.9 + 1e6)).abs() < 1e-6);
    }

    #[test]
    fn exponential_bounds_grow_by_factor() {
        let b = Histogram::exponential_bounds(1.0, 4.0, 4);
        assert_eq!(b, vec![1.0, 4.0, 16.0, 64.0]);
    }

    #[test]
    fn registry_sums_instances_and_prunes_dead_ones() {
        let registry = Registry::default();
        let a = registry.register_counter(Counter::new("t.instances"));
        let b = registry.register_counter(Counter::new("t.instances"));
        a.add(3);
        b.add(4);
        let snap = registry.snapshot();
        let total = snap
            .counters
            .iter()
            .find(|(n, _)| n == "t.instances")
            .map(|(_, v)| *v);
        assert_eq!(total, Some(7));
        drop(b);
        let snap = registry.snapshot();
        let total = snap
            .counters
            .iter()
            .find(|(n, _)| n == "t.instances")
            .map(|(_, v)| *v);
        assert_eq!(total, Some(3));
    }

    #[test]
    fn named_handles_are_shared() {
        let registry = Registry::default();
        let a = registry.counter("t.named");
        let b = registry.counter("t.named");
        a.inc();
        assert_eq!(b.get(), 1);
        let g = registry.gauge("t.g");
        registry.gauge("t.g").set(9.0);
        assert_eq!(g.get(), 9.0);
        let h = registry.histogram("t.h", &[1.0]);
        registry.histogram("t.h", &[5.0, 6.0]).observe(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.bounds(), &[1.0]);
    }
}
