//! Model and training configurations (Table II).

use serde::{Deserialize, Serialize};

/// Sizes of the HW-PR-NAS network components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden width of the GCN encoder layers.
    pub gcn_hidden: usize,
    /// Number of GCN layers.
    pub gcn_layers: usize,
    /// Hidden width of the LSTM encoder.
    pub lstm_hidden: usize,
    /// Number of stacked LSTM layers.
    pub lstm_layers: usize,
    /// Token-embedding dimension for the LSTM encoder.
    pub embed_dim: usize,
    /// Hidden widths of the predictor MLP heads.
    pub mlp_hidden: Vec<usize>,
    /// Dropout probability inside the MLP heads.
    pub dropout: f32,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's published sizes: 2-layer GCN with 600 hidden units,
    /// 2-layer LSTM with 225 hidden units.
    pub fn paper() -> Self {
        Self {
            gcn_hidden: 600,
            gcn_layers: 2,
            lstm_hidden: 225,
            lstm_layers: 2,
            embed_dim: 48,
            mlp_hidden: vec![256, 128],
            dropout: 0.02,
            seed: 0,
        }
    }

    /// Reduced sizes for CPU-scale experiments (same topology, smaller
    /// widths); the reproduction's default.
    pub fn fast() -> Self {
        Self {
            gcn_hidden: 96,
            gcn_layers: 2,
            lstm_hidden: 64,
            lstm_layers: 2,
            embed_dim: 24,
            mlp_hidden: vec![64, 32],
            dropout: 0.02,
            seed: 0,
        }
    }

    /// Tiny sizes for unit tests.
    pub fn tiny() -> Self {
        Self {
            gcn_hidden: 16,
            gcn_layers: 2,
            lstm_hidden: 12,
            lstm_layers: 1,
            embed_dim: 8,
            mlp_hidden: vec![16],
            dropout: 0.0,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Optimisation hyperparameters (Table II of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Early-stopping patience in epochs (no validation improvement).
    pub early_stop_patience: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-annealed to zero).
    pub learning_rate: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Weight of the listwise Pareto ranking loss.
    pub rank_loss_weight: f32,
    /// Weight of the per-branch RMSE auxiliary losses.
    pub rmse_loss_weight: f32,
    /// Extra epochs training *only the fusion layer* with the ranking
    /// loss after the joint phase ("we further train the last dense layer
    /// one last time to achieve an optimal Pareto ranking", §IV-A).
    pub fusion_finetune_epochs: usize,
    /// Weight of the within-front score-variance regulariser enforcing
    /// the paper's stated property that "architectures within the same
    /// Pareto front will have a similar score".
    pub tie_regularizer_weight: f32,
    /// Shuffling/dropout seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Table II exactly: 80 epochs (early stop ~30), lr 3e-4, cosine
    /// annealing, batch 128, AdamW, weight decay 3e-4, dropout 0.02.
    pub fn paper() -> Self {
        Self {
            epochs: 80,
            early_stop_patience: 30,
            batch_size: 128,
            learning_rate: 3e-4,
            weight_decay: 3e-4,
            rank_loss_weight: 1.0,
            rmse_loss_weight: 1.0,
            fusion_finetune_epochs: 20,
            tie_regularizer_weight: 0.2,
            seed: 0,
        }
    }

    /// Shorter schedule for CPU-scale experiments; same optimiser.
    pub fn fast() -> Self {
        Self {
            epochs: 25,
            early_stop_patience: 8,
            batch_size: 128,
            learning_rate: 1e-3,
            weight_decay: 3e-4,
            rank_loss_weight: 1.0,
            rmse_loss_weight: 1.0,
            fusion_finetune_epochs: 10,
            tie_regularizer_weight: 0.2,
            seed: 0,
        }
    }

    /// A handful of epochs for unit tests.
    pub fn tiny() -> Self {
        Self {
            epochs: 4,
            early_stop_patience: 4,
            batch_size: 32,
            learning_rate: 3e-3,
            weight_decay: 0.0,
            rank_loss_weight: 1.0,
            rmse_loss_weight: 1.0,
            fusion_finetune_epochs: 3,
            tie_regularizer_weight: 0.2,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let t = TrainConfig::paper();
        assert_eq!(t.epochs, 80);
        assert_eq!(t.early_stop_patience, 30);
        assert_eq!(t.batch_size, 128);
        assert!((t.learning_rate - 3e-4).abs() < 1e-9);
        assert!((t.weight_decay - 3e-4).abs() < 1e-9);
        let m = ModelConfig::paper();
        assert_eq!(m.gcn_hidden, 600);
        assert_eq!(m.gcn_layers, 2);
        assert_eq!(m.lstm_hidden, 225);
        assert_eq!(m.lstm_layers, 2);
        assert!((m.dropout - 0.02).abs() < 1e-9);
    }

    #[test]
    fn seeding_builders() {
        assert_eq!(ModelConfig::fast().with_seed(9).seed, 9);
        assert_eq!(TrainConfig::fast().with_seed(9).seed, 9);
    }

    #[test]
    fn defaults_are_fast() {
        assert_eq!(ModelConfig::default(), ModelConfig::fast());
        assert_eq!(TrainConfig::default(), TrainConfig::fast());
    }
}
