//! Benchmarks behind the §III-E latency study and the SimBench tables:
//! profiling throughput and per-platform roofline evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwpr_bench::fixture_archs;
use hwpr_hwmodel::{latency_ms, Platform, SimBench};
use hwpr_nasbench::profile::profile;
use hwpr_nasbench::{Dataset, SearchSpaceId};

fn bench_latency_models(c: &mut Criterion) {
    let nb = fixture_archs(SearchSpaceId::NasBench201, 32);
    let fb = fixture_archs(SearchSpaceId::FBNet, 32);
    let mut group = c.benchmark_group("latency_models");

    group.bench_function("profile_nb201_batch32", |b| {
        b.iter(|| {
            nb.iter()
                .map(|a| profile(a, Dataset::Cifar10).total_flops())
                .sum::<f64>()
        });
    });
    group.bench_function("profile_fbnet_batch32", |b| {
        b.iter(|| {
            fb.iter()
                .map(|a| profile(a, Dataset::Cifar10).total_flops())
                .sum::<f64>()
        });
    });
    for platform in [Platform::EdgeGpu, Platform::FpgaZcu102, Platform::Pixel3] {
        group.bench_with_input(
            BenchmarkId::new("latency_all_archs", platform.name()),
            &platform,
            |b, &platform| {
                b.iter(|| {
                    nb.iter()
                        .map(|a| latency_ms(a, Dataset::Cifar10, platform))
                        .sum::<f64>()
                });
            },
        );
    }
    group.bench_function("simbench_measure_one_arch", |b| {
        let bench = hwpr_bench::fixture_bench(4);
        let model = bench.oracle_model();
        b.iter(|| SimBench::measure(&nb[0], &model));
    });
    group.finish();
}

criterion_group!(benches, bench_latency_models);
criterion_main!(benches);
