//! Token-sequence encoding for the LSTM encoder — §III-C(2) of the paper.
//!
//! The paper feeds the benchmark's string form (e.g.
//! `|nor_conv_3x3~0|nor_conv_3x3~1|`) through a layer embedding; here the
//! string is tokenised into a shared vocabulary covering both spaces so a
//! single embedding table can serve NAS-Bench-201 and FBNet sequences.

use crate::arch::Architecture;
use crate::op::{FbnetOp, Nb201Op};

/// Shared vocabulary: 5 NAS-Bench-201 ops, then 9 FBNet ops, then PAD.
pub const VOCAB_SIZE: usize = Nb201Op::ALL.len() + FbnetOp::ALL.len() + 1;

/// The padding token id.
pub const PAD_TOKEN: usize = VOCAB_SIZE - 1;

/// Maximum sequence length across both spaces (FBNet's 22 layers).
pub const MAX_SEQUENCE_LEN: usize = crate::arch::FBNET_LAYERS;

/// Token ids of an architecture in the shared vocabulary, unpadded
/// (length 6 for NAS-Bench-201, 22 for FBNet).
pub fn tokens(arch: &Architecture) -> Vec<usize> {
    match arch {
        Architecture::Nb201(ops) => ops.iter().map(|o| o.index()).collect(),
        Architecture::Fbnet(ops) => ops.iter().map(|o| Nb201Op::ALL.len() + o.index()).collect(),
    }
}

/// Token ids padded with [`PAD_TOKEN`] to `len`.
///
/// # Panics
///
/// Panics if the architecture's natural sequence is longer than `len`.
pub fn padded_tokens(arch: &Architecture, len: usize) -> Vec<usize> {
    let mut t = tokens(arch);
    assert!(t.len() <= len, "sequence longer than padding target");
    t.resize(len, PAD_TOKEN);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpaceId;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn vocab_layout() {
        assert_eq!(VOCAB_SIZE, 15);
        assert_eq!(PAD_TOKEN, 14);
        assert_eq!(MAX_SEQUENCE_LEN, 22);
    }

    #[test]
    fn nb201_tokens_are_op_indices() {
        let a = Architecture::nb201([
            Nb201Op::None,
            Nb201Op::SkipConnect,
            Nb201Op::NorConv1x1,
            Nb201Op::NorConv3x3,
            Nb201Op::AvgPool3x3,
            Nb201Op::None,
        ]);
        assert_eq!(tokens(&a), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn fbnet_tokens_are_offset() {
        let a = Architecture::fbnet([FbnetOp::K3E1; 22]);
        let t = tokens(&a);
        assert_eq!(t.len(), 22);
        assert!(t.iter().all(|&x| x == 5));
    }

    #[test]
    fn token_spaces_do_not_collide() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let nb = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let fb = Architecture::random(SearchSpaceId::FBNet, &mut rng);
        let nb_max = tokens(&nb).into_iter().max().unwrap();
        let fb_min = tokens(&fb).into_iter().min().unwrap();
        assert!(nb_max < 5);
        assert!(fb_min >= 5);
    }

    #[test]
    fn padding_fills_with_pad_token() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let t = padded_tokens(&a, MAX_SEQUENCE_LEN);
        assert_eq!(t.len(), 22);
        assert!(t[6..].iter().all(|&x| x == PAD_TOKEN));
        assert!(t[..6].iter().all(|&x| x != PAD_TOKEN));
    }

    #[test]
    #[should_panic(expected = "longer than padding target")]
    fn padding_too_short_panics() {
        let a = Architecture::fbnet([FbnetOp::Skip; 22]);
        let _ = padded_tokens(&a, 6);
    }

    #[test]
    fn all_tokens_below_vocab() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            for _ in 0..20 {
                let a = Architecture::random(space, &mut rng);
                assert!(padded_tokens(&a, MAX_SEQUENCE_LEN)
                    .iter()
                    .all(|&t| t < VOCAB_SIZE));
            }
        }
    }
}
