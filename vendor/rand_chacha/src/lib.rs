//! ChaCha8-based RNG for the offline build (see `vendor/README.md`).
//!
//! Implements the ChaCha stream cipher with 8 double-rounds as a random
//! number generator. The keystream follows RFC 7539 block structure (with an
//! all-zero nonce and a 64-bit block counter), so output quality matches the
//! upstream `rand_chacha`, though the word-consumption order is not
//! guaranteed byte-identical to it.

/// Re-export of the core traits under the name downstream code imports
/// (`rand_chacha::rand_core::SeedableRng`).
pub use rand as rand_core;

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means the buffer is spent.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn cloned_rng_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits total; expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones));
    }
}
