//! The telemetry event model and its JSON-lines encoding.
//!
//! Every event renders to one flat JSON object with a `"type"` tag, so a
//! run record is a plain JSONL file any log tooling can consume. The
//! encoding round-trips: [`Event::to_json`] followed by
//! [`Event::from_json`] rebuilds the event (integral floats inside
//! free-form [`Event::Record`] fields come back as integers — the JSON
//! text does not distinguish `3.0` from `3`).

use serde::Value;

/// One telemetry event. Timestamps (`t_us`) are microseconds since the
/// process telemetry epoch and are monotonic within a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened (`parent` is 0 for root spans).
    SpanStart {
        /// Process-unique span id (> 0).
        id: u64,
        /// Enclosing span id, 0 at the root.
        parent: u64,
        /// Span name, e.g. `"search.moea"`.
        name: String,
        /// Optional variant label, e.g. the precision of an
        /// `"infer.frozen"` span. Omitted from the JSON when absent.
        label: Option<String>,
        /// Dense lane id of the emitting thread (0 in pre-tracing
        /// captures; see [`crate::thread_id`]).
        tid: u64,
        /// Start time.
        t_us: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
        /// Enclosing span id, 0 at the root.
        parent: u64,
        /// Span name.
        name: String,
        /// Optional variant label from the matching start event.
        label: Option<String>,
        /// Dense lane id of the emitting thread (0 in pre-tracing
        /// captures; see [`crate::thread_id`]).
        tid: u64,
        /// End time.
        t_us: u64,
        /// Span duration (monotonic, so `t_us >= start.t_us + dur_us` is
        /// never violated by clock steps).
        dur_us: u64,
    },
    /// A monotonic counter's current value.
    Counter {
        /// Metric name.
        name: String,
        /// Current count.
        value: u64,
        /// Snapshot time.
        t_us: u64,
    },
    /// A gauge's current value.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
        /// Snapshot time.
        t_us: u64,
    },
    /// A histogram snapshot: cumulative `counts[i]` observations fell in
    /// `(bounds[i-1], bounds[i]]`; the final slot is the overflow bucket.
    Hist {
        /// Metric name.
        name: String,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
        /// Bucket upper bounds (sorted ascending).
        bounds: Vec<f64>,
        /// Per-bucket counts; `bounds.len() + 1` entries.
        counts: Vec<u64>,
        /// Snapshot time.
        t_us: u64,
    },
    /// A warning surfaced through the sink (misconfiguration, fallbacks).
    Warn {
        /// Human-readable message.
        message: String,
        /// Emission time.
        t_us: u64,
    },
    /// A free-form structured row, e.g. per-epoch training metrics
    /// (`"train.epoch"`) or per-generation search metrics
    /// (`"search.generation"`). Field keys must not collide with the
    /// reserved `"type"` / `"name"` / `"t_us"` keys.
    Record {
        /// Record stream name.
        name: String,
        /// Emission time.
        t_us: u64,
        /// Named payload fields, rendered inline into the JSON object.
        fields: Vec<(String, Value)>,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn t_us(&self) -> u64 {
        match self {
            Event::SpanStart { t_us, .. }
            | Event::SpanEnd { t_us, .. }
            | Event::Counter { t_us, .. }
            | Event::Gauge { t_us, .. }
            | Event::Hist { t_us, .. }
            | Event::Warn { t_us, .. }
            | Event::Record { t_us, .. } => *t_us,
        }
    }

    /// Renders the event as one compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("event serialisation is infallible")
    }

    /// Parses one JSON object produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a missing/unknown `"type"`
    /// tag, or missing required fields.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        Self::from_value(&value)
    }

    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        let mut put = |k: &str, v: Value| pairs.push((k.to_string(), v));
        match self {
            Event::SpanStart {
                id,
                parent,
                name,
                label,
                tid,
                t_us,
            } => {
                put("type", Value::String("span_start".into()));
                put("id", Value::UInt(*id));
                put("parent", Value::UInt(*parent));
                put("name", Value::String(name.clone()));
                if let Some(label) = label {
                    put("label", Value::String(label.clone()));
                }
                put("tid", Value::UInt(*tid));
                put("t_us", Value::UInt(*t_us));
            }
            Event::SpanEnd {
                id,
                parent,
                name,
                label,
                tid,
                t_us,
                dur_us,
            } => {
                put("type", Value::String("span_end".into()));
                put("id", Value::UInt(*id));
                put("parent", Value::UInt(*parent));
                put("name", Value::String(name.clone()));
                if let Some(label) = label {
                    put("label", Value::String(label.clone()));
                }
                put("tid", Value::UInt(*tid));
                put("t_us", Value::UInt(*t_us));
                put("dur_us", Value::UInt(*dur_us));
            }
            Event::Counter { name, value, t_us } => {
                put("type", Value::String("counter".into()));
                put("name", Value::String(name.clone()));
                put("value", Value::UInt(*value));
                put("t_us", Value::UInt(*t_us));
            }
            Event::Gauge { name, value, t_us } => {
                put("type", Value::String("gauge".into()));
                put("name", Value::String(name.clone()));
                put("value", Value::Float(*value));
                put("t_us", Value::UInt(*t_us));
            }
            Event::Hist {
                name,
                count,
                sum,
                bounds,
                counts,
                t_us,
            } => {
                put("type", Value::String("hist".into()));
                put("name", Value::String(name.clone()));
                put("count", Value::UInt(*count));
                put("sum", Value::Float(*sum));
                put(
                    "bounds",
                    Value::Array(bounds.iter().map(|&b| Value::Float(b)).collect()),
                );
                put(
                    "counts",
                    Value::Array(counts.iter().map(|&c| Value::UInt(c)).collect()),
                );
                put("t_us", Value::UInt(*t_us));
            }
            Event::Warn { message, t_us } => {
                put("type", Value::String("warn".into()));
                put("message", Value::String(message.clone()));
                put("t_us", Value::UInt(*t_us));
            }
            Event::Record { name, t_us, fields } => {
                put("type", Value::String("record".into()));
                put("name", Value::String(name.clone()));
                put("t_us", Value::UInt(*t_us));
                for (k, v) in fields {
                    pairs.push((k.clone(), v.clone()));
                }
            }
        }
        Value::Object(pairs)
    }

    fn from_value(value: &Value) -> Result<Self, String> {
        let pairs = value.as_object().ok_or("event is not a JSON object")?;
        let get = |key: &str| -> Result<&Value, String> {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            match get(key)? {
                Value::String(s) => Ok(s.clone()),
                other => Err(format!(
                    "field `{key}`: expected string, got {}",
                    other.kind()
                )),
            }
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            match get(key)? {
                Value::UInt(u) => Ok(*u),
                Value::Int(i) if *i >= 0 => Ok(*i as u64),
                other => Err(format!(
                    "field `{key}`: expected unsigned integer, got {}",
                    other.kind()
                )),
            }
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            match get(key)? {
                Value::Float(f) => Ok(*f),
                Value::Int(i) => Ok(*i as f64),
                Value::UInt(u) => Ok(*u as f64),
                other => Err(format!(
                    "field `{key}`: expected number, got {}",
                    other.kind()
                )),
            }
        };
        // absent on spans written before labels existed (and on unlabeled
        // spans), so failure to find the key is not an error
        let get_label = || -> Result<Option<String>, String> {
            match pairs.iter().find(|(k, _)| k == "label").map(|(_, v)| v) {
                None => Ok(None),
                Some(Value::String(s)) => Ok(Some(s.clone())),
                Some(other) => Err(format!(
                    "field `label`: expected string, got {}",
                    other.kind()
                )),
            }
        };
        // absent on spans written before thread lanes existed; 0 keeps
        // old captures loadable (exporters fold lane 0 into one lane)
        let get_tid = || -> Result<u64, String> {
            match pairs.iter().find(|(k, _)| k == "tid") {
                None => Ok(0),
                Some(_) => get_u64("tid"),
            }
        };
        let kind = get_str("type")?;
        Ok(match kind.as_str() {
            "span_start" => Event::SpanStart {
                id: get_u64("id")?,
                parent: get_u64("parent")?,
                name: get_str("name")?,
                label: get_label()?,
                tid: get_tid()?,
                t_us: get_u64("t_us")?,
            },
            "span_end" => Event::SpanEnd {
                id: get_u64("id")?,
                parent: get_u64("parent")?,
                name: get_str("name")?,
                label: get_label()?,
                tid: get_tid()?,
                t_us: get_u64("t_us")?,
                dur_us: get_u64("dur_us")?,
            },
            "counter" => Event::Counter {
                name: get_str("name")?,
                value: get_u64("value")?,
                t_us: get_u64("t_us")?,
            },
            "gauge" => Event::Gauge {
                name: get_str("name")?,
                value: get_f64("value")?,
                t_us: get_u64("t_us")?,
            },
            "hist" => {
                let bounds = match get("bounds")? {
                    Value::Array(items) => items
                        .iter()
                        .map(|v| match v {
                            Value::Float(f) => Ok(*f),
                            Value::Int(i) => Ok(*i as f64),
                            Value::UInt(u) => Ok(*u as f64),
                            other => Err(format!("bucket bound: {}", other.kind())),
                        })
                        .collect::<Result<Vec<f64>, String>>()?,
                    other => return Err(format!("field `bounds`: {}", other.kind())),
                };
                let counts = match get("counts")? {
                    Value::Array(items) => items
                        .iter()
                        .map(|v| match v {
                            Value::UInt(u) => Ok(*u),
                            Value::Int(i) if *i >= 0 => Ok(*i as u64),
                            other => Err(format!("bucket count: {}", other.kind())),
                        })
                        .collect::<Result<Vec<u64>, String>>()?,
                    other => return Err(format!("field `counts`: {}", other.kind())),
                };
                Event::Hist {
                    name: get_str("name")?,
                    count: get_u64("count")?,
                    sum: get_f64("sum")?,
                    bounds,
                    counts,
                    t_us: get_u64("t_us")?,
                }
            }
            "warn" => Event::Warn {
                message: get_str("message")?,
                t_us: get_u64("t_us")?,
            },
            "record" => Event::Record {
                name: get_str("name")?,
                t_us: get_u64("t_us")?,
                fields: pairs
                    .iter()
                    .filter(|(k, _)| k != "type" && k != "name" && k != "t_us")
                    .cloned()
                    .collect(),
            },
            other => return Err(format!("unknown event type `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_events_round_trip() {
        let start = Event::SpanStart {
            id: 7,
            parent: 3,
            name: "search.moea".into(),
            label: None,
            tid: 1,
            t_us: 120,
        };
        let end = Event::SpanEnd {
            id: 7,
            parent: 3,
            name: "search.moea".into(),
            label: None,
            tid: 1,
            t_us: 950,
            dur_us: 830,
        };
        for ev in [start, end] {
            let json = ev.to_json();
            assert!(!json.contains("label"), "unlabeled span leaks the key");
            assert_eq!(Event::from_json(&json).unwrap(), ev);
        }
    }

    #[test]
    fn labeled_span_events_round_trip() {
        let start = Event::SpanStart {
            id: 9,
            parent: 0,
            name: "infer.frozen".into(),
            label: Some("int8".into()),
            tid: 4,
            t_us: 5,
        };
        let end = Event::SpanEnd {
            id: 9,
            parent: 0,
            name: "infer.frozen".into(),
            label: Some("int8".into()),
            tid: 4,
            t_us: 55,
            dur_us: 50,
        };
        for ev in [start, end] {
            let json = ev.to_json();
            assert!(json.contains("\"label\":\"int8\""));
            assert!(json.contains("\"tid\":4"));
            assert_eq!(Event::from_json(&json).unwrap(), ev);
        }
    }

    #[test]
    fn pre_tracing_span_events_parse_with_lane_zero() {
        // captures written before thread lanes existed carry no `tid`
        let ev = Event::from_json(
            "{\"type\":\"span_end\",\"id\":2,\"parent\":1,\
             \"name\":\"train.loop\",\"t_us\":80,\"dur_us\":70}",
        )
        .unwrap();
        assert_eq!(
            ev,
            Event::SpanEnd {
                id: 2,
                parent: 1,
                name: "train.loop".into(),
                label: None,
                tid: 0,
                t_us: 80,
                dur_us: 70,
            }
        );
    }

    #[test]
    fn record_keeps_field_order_and_values() {
        let ev = Event::Record {
            name: "train.epoch".into(),
            t_us: 42,
            fields: vec![
                ("epoch".into(), Value::UInt(3)),
                ("loss".into(), Value::Float(0.125)),
                ("note".into(), Value::String("tie \"quoted\"".into())),
            ],
        };
        assert_eq!(Event::from_json(&ev.to_json()).unwrap(), ev);
    }

    #[test]
    fn unknown_type_is_rejected() {
        assert!(Event::from_json("{\"type\":\"nope\",\"t_us\":0}").is_err());
        assert!(Event::from_json("[1,2]").is_err());
        assert!(Event::from_json("{\"t_us\":0}").is_err());
    }
}
