//! Property-style integration tests for the paper's key equations and
//! training-objective behaviour, spanning crates.

use hw_pr_nas::autograd::Tape;
use hw_pr_nas::hwmodel::{SimBench, SimBenchConfig};
use hw_pr_nas::moo::{dominates, fast_non_dominated_sort, pareto_ranks};
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::tensor::Matrix;
use hwpr_hwmodel::Platform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eqs. (1)-(3) of the paper hold for fronts built from *benchmark*
    /// objective vectors (not just synthetic points).
    #[test]
    fn paper_equations_hold_on_benchmark_objectives(seed in 0u64..500, n in 4usize..32) {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(n),
            seed,
        });
        let objs: Vec<Vec<f64>> = bench
            .entries()
            .iter()
            .map(|e| e.objectives(Dataset::Cifar10, Platform::EdgeGpu))
            .collect();
        let fronts = fast_non_dominated_sort(&objs).unwrap();
        for (k, front) in fronts.iter().enumerate() {
            for &i in front {
                for &j in front {
                    prop_assert!(!dominates(&objs[i], &objs[j])); // Eq. 1
                }
            }
            if k + 1 < fronts.len() {
                for &i in &fronts[k + 1] {
                    for &j in front {
                        prop_assert!(!dominates(&objs[i], &objs[j])); // Eq. 2
                    }
                    prop_assert!(front.iter().any(|&j| dominates(&objs[j], &objs[i]))); // Eq. 3
                }
            }
        }
    }

    /// The ListMLE loss (Eq. 4) is minimised by scores that respect the
    /// Pareto ranking: scoring by negated rank never loses to scoring by
    /// a random permutation's values.
    #[test]
    fn listmle_prefers_rank_consistent_scores(seed in 0u64..200) {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(12),
            seed,
        });
        let objs: Vec<Vec<f64>> = bench
            .entries()
            .iter()
            .map(|e| e.objectives(Dataset::Cifar100, Platform::Pixel3))
            .collect();
        let ranks = pareto_ranks(&objs).unwrap();
        let mut order: Vec<usize> = (0..ranks.len()).collect();
        order.sort_by_key(|&i| ranks[i]);

        let good: Vec<f32> = ranks.iter().map(|&r| -(r as f32)).collect();
        let bad: Vec<f32> = ranks.iter().map(|&r| r as f32).collect(); // inverted

        let loss = |scores: &[f32]| {
            let mut tape = Tape::new();
            let s = tape.leaf(Matrix::col_vector(scores));
            let l = tape.list_mle(s, &order).unwrap();
            tape.value(l)[(0, 0)]
        };
        prop_assert!(loss(&good) <= loss(&bad) + 1e-5);
    }
}

#[test]
fn benchmark_tables_are_identical_across_generations() {
    let config = SimBenchConfig {
        space: SearchSpaceId::FBNet,
        sample_size: Some(20),
        seed: 77,
    };
    let a = SimBench::generate(config.clone());
    let b = SimBench::generate(config);
    assert_eq!(a, b);
    // and the oracle regenerates the exact table rows
    let model = a.oracle_model();
    for entry in a.entries() {
        let remeasured = SimBench::measure(entry.arch(), &model);
        assert_eq!(&remeasured, entry);
    }
}
