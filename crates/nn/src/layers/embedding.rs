//! Token embedding table.

use crate::params::{Binder, ParamId, Params};
use crate::Result;
use hwpr_autograd::Var;
use hwpr_tensor::Init;

/// Lookup table mapping token ids to dense vectors.
///
/// Used by the LSTM encoder: the string form of an architecture (e.g.
/// `|nor_conv_3x3~0|...`) is tokenised into operation ids and each id is
/// embedded before entering the recurrence.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `vocab x dim` embedding table initialised N(0, 0.1).
    pub fn new(params: &mut Params, name: &str, vocab: usize, dim: usize, seed: u64) -> Self {
        let table = params.add(
            &format!("{name}.table"),
            vocab,
            dim,
            Init::Normal(0.1),
            seed,
        );
        Self { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a batch of token ids, returning a `[ids.len(), dim]` node.
    ///
    /// # Errors
    ///
    /// Returns an index error if any id is `>= vocab`.
    pub fn forward(&self, binder: &mut Binder<'_, '_>, ids: &[usize]) -> Result<Var> {
        let table = binder.param(self.table);
        Ok(binder.tape().gather_rows(table, ids)?)
    }

    /// Compiles the table for tape-free inference (a copied table; lookup
    /// stays a row gather).
    pub fn freeze(&self, params: &Params) -> crate::infer::FrozenEmbedding {
        crate::infer::FrozenEmbedding::from_parts(
            params.get(self.table).clone(),
            self.vocab,
            self.dim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;

    #[test]
    fn embeds_ids_to_rows() {
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", 5, 3, 9);
        assert_eq!(emb.vocab(), 5);
        assert_eq!(emb.dim(), 3);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let out = emb.forward(&mut binder, &[0, 4, 4]).unwrap();
        let v = tape.value(out);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(1), v.row(2));
    }

    #[test]
    fn rejects_out_of_vocab() {
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", 2, 2, 0);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        assert!(emb.forward(&mut binder, &[2]).is_err());
    }

    #[test]
    fn duplicate_ids_accumulate_gradient() {
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "emb", 3, 1, 1);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let out = emb.forward(&mut binder, &[1, 1]).unwrap();
        let loss = binder.tape().sum_all(out);
        let grads = binder.finish(loss).unwrap();
        let g = grads[0].as_ref().unwrap();
        assert_eq!(g[(1, 0)], 2.0);
        assert_eq!(g[(0, 0)], 0.0);
    }
}
