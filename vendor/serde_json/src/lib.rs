//! Offline subset of `serde_json` (see `vendor/README.md`): `to_string` and
//! `from_str` against the serde shim's [`serde::Value`] data model.

use serde::{Deserialize, Serialize, Value};

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value());
    Ok(out)
}

/// Parses JSON text and rebuilds `T` from the resulting value tree.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, duplicate object
/// keys, or a shape mismatch against `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display is shortest-roundtrip, always valid JSON.
                out.push_str(&f.to_string());
            } else {
                // Matches serde_json's behaviour of emitting null for
                // non-finite floats.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn fail(&self, message: &str) -> Error {
        Error::custom(format!("{message} at offset {}", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.consume_literal("null").map(|()| Value::Null),
            Some(b't') => self.consume_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.consume_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.fail(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key `{key}`")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                Some(_) => return Err(self.fail("unescaped control character in string")),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char> {
        let escaped = self
            .peek()
            .ok_or_else(|| self.fail("unterminated escape"))?;
        self.pos += 1;
        Ok(match escaped {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    self.consume_literal("\\u")
                        .map_err(|_| self.fail("unpaired surrogate"))?;
                    let second = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else {
                    first
                };
                char::from_u32(code).ok_or_else(|| self.fail("invalid unicode escape"))?
            }
            other => return Err(self.fail(&format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let value = Value::Object(vec![
            (
                "name".into(),
                Value::String("cell3.edge(0,1)\n\"x\"".into()),
            ),
            ("seed".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-42)),
            ("rate".into(), Value::Float(0.1)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn vec_of_floats_roundtrip() {
        let xs = vec![0.25f32, -1.5, 3.0e7, f32::MIN_POSITIVE];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":1,}").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(from_str::<Value>("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let back: Value = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, Value::String("A😀".into()));
    }

    #[test]
    fn whitespace_tolerant() {
        let back: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
