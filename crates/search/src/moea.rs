//! Algorithm 1: the multi-objective evolutionary algorithm.

use crate::clock::SearchClock;
use crate::evaluator::{Evaluator, Fitness, SharedObjectives};
use crate::{Result, SearchError};
use hwpr_moo::{Fronts, MooWorkspace};
use hwpr_nasbench::{Architecture, SearchSpaceId};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::borrow::Cow;
use std::time::Duration;

/// Configuration of the MOEA (§IV-C1: population 150, 250 generations,
/// mutation rate 0.9, tournament parent selection, 24 h budget).
#[derive(Debug, Clone, PartialEq)]
pub struct MoeaConfig {
    /// Population size (also the size of the final Pareto set, `k`).
    pub population: usize,
    /// Maximum number of generations.
    pub generations: usize,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Probability of producing an offspring by crossover (otherwise the
    /// tournament winner is cloned before mutation).
    pub crossover_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Search spaces to sample from (one or both benchmarks).
    pub spaces: Vec<SearchSpaceId>,
    /// Total time budget (wall + simulated).
    pub budget: Option<Duration>,
    /// Record a population snapshot per generation (hypervolume
    /// convergence studies; costs memory).
    pub record_populations: bool,
    /// Architectures injected into the initial population (Algorithm 1:
    /// "an initial population is randomly generated **or using a sampling
    /// strategy**"); typically the best-scored training architectures.
    /// Truncated to the population size; the remainder is random.
    pub seed_population: Vec<Architecture>,
    /// RNG seed.
    pub seed: u64,
}

impl MoeaConfig {
    /// The paper's settings on a single space.
    pub fn paper(space: SearchSpaceId) -> Self {
        Self {
            population: 150,
            generations: 250,
            mutation_rate: 0.9,
            crossover_rate: 0.5,
            tournament: 2,
            spaces: vec![space],
            budget: Some(Duration::from_secs(24 * 3600)),
            record_populations: false,
            seed_population: Vec::new(),
            seed: 0,
        }
    }

    /// A small configuration for tests and smoke runs.
    pub fn small(space: SearchSpaceId) -> Self {
        Self {
            population: 16,
            generations: 8,
            mutation_rate: 0.9,
            crossover_rate: 0.5,
            tournament: 2,
            spaces: vec![space],
            budget: None,
            record_populations: false,
            seed_population: Vec::new(),
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.population < 2 {
            return Err(SearchError::Config("population must be at least 2".into()));
        }
        if self.spaces.is_empty() {
            return Err(SearchError::Config(
                "at least one search space required".into(),
            ));
        }
        if self.tournament == 0 {
            return Err(SearchError::Config(
                "tournament size must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) || !(0.0..=1.0).contains(&self.crossover_rate)
        {
            return Err(SearchError::Config("rates must be in [0, 1]".into()));
        }
        Ok(())
    }
}

/// Statistics recorded after each generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Total evaluator calls so far (architectures × calls per arch).
    pub evaluations: usize,
    /// Wall + simulated time consumed so far.
    pub elapsed: Duration,
    /// Population snapshot (only when
    /// [`MoeaConfig::record_populations`] is set).
    pub population: Option<Vec<Architecture>>,
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The final population (size `k` — the paper's Pareto set source).
    pub population: Vec<Architecture>,
    /// Evaluator name used.
    pub evaluator: String,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Simulated (charged) time of the run.
    pub simulated_time: Duration,
    /// Number of architecture evaluations performed.
    pub evaluations: usize,
    /// Number of underlying surrogate calls performed.
    pub surrogate_calls: usize,
    /// Per-generation progress.
    pub history: Vec<GenerationStats>,
}

impl SearchResult {
    /// Total accounted search time (wall + simulated), the Fig. 7 metric.
    pub fn total_time(&self) -> Duration {
        self.wall_time + self.simulated_time
    }
}

/// The MOEA of Algorithm 1, generic over the evaluation backend.
#[derive(Debug)]
pub struct Moea {
    config: MoeaConfig,
}

impl Moea {
    /// Creates a search with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Config`] for degenerate settings.
    pub fn new(config: MoeaConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &MoeaConfig {
        &self.config
    }

    /// Runs the search with `evaluator` and returns the final population.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures.
    pub fn run(&self, evaluator: &mut dyn Evaluator) -> Result<SearchResult> {
        let cfg = &self.config;
        let _search_span = hwpr_obs::span("search.moea");
        let mut generation_telemetry = crate::telemetry::GenerationTelemetry::default();
        // one workspace for the whole run: every per-generation sort and
        // crowding call reuses its buffers instead of allocating
        let mut moo = MooWorkspace::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut clock = match cfg.budget {
            Some(b) => SearchClock::with_budget(b),
            None => SearchClock::unbounded(),
        };
        let mut evaluations = 0usize;
        let mut surrogate_calls = 0usize;
        let mut history = Vec::new();

        // initial population: configured seeds first (sampling strategy),
        // the remainder uniform across the configured spaces
        let mut population: Vec<Architecture> = cfg
            .seed_population
            .iter()
            .take(cfg.population)
            .cloned()
            .collect();
        for i in population.len()..cfg.population {
            let space = cfg.spaces[i % cfg.spaces.len()];
            population.push(Architecture::random(space, &mut rng));
        }
        let timer = crate::telemetry::eval_timer();
        let mut fitness = evaluator.evaluate(&population, &mut clock)?;
        timer.finish();
        evaluations += population.len();
        surrogate_calls += population.len() * evaluator.calls_per_arch();

        for generation in 0..cfg.generations {
            if clock.exhausted() {
                break;
            }
            let _gen_span = hwpr_obs::span("search.generation");
            // offspring via tournament selection + crossover + mutation
            let keys = selection_keys(&fitness, &mut moo)?;
            let mut offspring = Vec::with_capacity(cfg.population);
            for _ in 0..cfg.population {
                let a = tournament(keys.as_ref(), cfg.tournament, &mut rng);
                let child = if rng.gen_bool(cfg.crossover_rate) {
                    let b = tournament(keys.as_ref(), cfg.tournament, &mut rng);
                    population[a]
                        .crossover(&population[b], &mut rng)
                        .unwrap_or_else(|| population[a].clone())
                } else {
                    population[a].clone()
                };
                let child = if rng.gen_bool(cfg.mutation_rate) {
                    child.mutate(&mut rng)
                } else {
                    child
                };
                offspring.push(child);
            }
            let timer = crate::telemetry::eval_timer();
            let offspring_fitness = evaluator.evaluate(&offspring, &mut clock)?;
            let eval_ms = timer.finish();
            evaluations += offspring.len();
            surrogate_calls += offspring.len() * evaluator.calls_per_arch();

            // elitist survivor selection over P ∪ Q
            let (merged, merged_fitness) = merge(population, fitness, offspring, offspring_fitness);
            let keep = survivor_selection(&merged, &merged_fitness, cfg.population, &mut moo)?;
            // survivor indices are unique, so survivors move out of the
            // merged pool instead of being cloned each generation
            let mut merged: Vec<Option<Architecture>> = merged.into_iter().map(Some).collect();
            population = keep
                .iter()
                .map(|&i| merged[i].take().expect("survivor indices are unique"))
                .collect();
            fitness = filter_fitness(&merged_fitness, &keep);

            history.push(GenerationStats {
                generation,
                evaluations,
                elapsed: clock.total_elapsed(),
                population: cfg.record_populations.then(|| population.clone()),
            });
            generation_telemetry.record(crate::telemetry::GenerationRecord {
                generation,
                evaluations,
                elapsed_ms: clock.total_elapsed().as_secs_f64() * 1e3,
                eval_ms,
                fitness: &fitness,
                cache: evaluator.cache_stats(),
                snapshot_front: cfg.record_populations,
            });
        }
        // cache-backed evaluators answer repeated architectures without a
        // model call; report the calls actually made when they track it
        let surrogate_calls = evaluator
            .calls_made()
            .map_or(surrogate_calls, |calls| calls as usize);
        Ok(SearchResult {
            population,
            evaluator: evaluator.name(),
            wall_time: clock.wall_elapsed(),
            simulated_time: clock.simulated_elapsed(),
            evaluations,
            surrogate_calls,
            history,
        })
    }
}

/// Scalar sort keys (higher = fitter) for tournament selection.
///
/// For scores the key is the score itself; for objective vectors the key
/// is `-(rank + crowding tie-break)` from non-dominated sorting — the
/// comparisons the paper counts as two-surrogate overhead.
fn selection_keys<'a>(fitness: &'a Fitness, moo: &mut MooWorkspace) -> Result<Cow<'a, [f64]>> {
    match fitness {
        // scores are borrowed straight out of the fitness — no per-
        // generation copy of the whole key vector
        Fitness::Scores(s) | Fitness::Ranked { scores: s, .. } => Ok(Cow::Borrowed(s.as_slice())),
        Fitness::Objectives(objs) => {
            let mut fronts = Fronts::new();
            moo.fast_non_dominated_sort_into(objs, &mut fronts)?;
            let mut key = vec![0.0f64; objs.len()];
            for (rank, front) in fronts.iter().enumerate() {
                let crowd = moo.crowding_distance_of(objs, front)?;
                for (slot, &i) in front.iter().enumerate() {
                    let tie = 1.0 - 1.0 / (1.0 + crowd[slot].min(1e12));
                    key[i] = -(rank as f64) + tie * 0.5;
                }
            }
            Ok(Cow::Owned(key))
        }
    }
}

pub(crate) fn tournament<R: Rng>(keys: &[f64], size: usize, rng: &mut R) -> usize {
    let mut best = rng.gen_range(0..keys.len());
    for _ in 1..size {
        let challenger = rng.gen_range(0..keys.len());
        if keys[challenger] > keys[best] {
            best = challenger;
        }
    }
    best
}

fn merge(
    mut population: Vec<Architecture>,
    fitness: Fitness,
    mut offspring: Vec<Architecture>,
    offspring_fitness: Fitness,
) -> (Vec<Architecture>, Fitness) {
    population.append(&mut offspring);
    let merged_fitness = match (fitness, offspring_fitness) {
        (Fitness::Scores(mut a), Fitness::Scores(b)) => {
            a.extend(b);
            Fitness::Scores(a)
        }
        (Fitness::Objectives(mut a), Fitness::Objectives(b)) => {
            a.extend(b);
            Fitness::Objectives(a)
        }
        (
            Fitness::Ranked {
                scores: mut sa,
                objectives: mut oa,
            },
            Fitness::Ranked {
                scores: sb,
                objectives: ob,
            },
        ) => {
            sa.extend(sb);
            oa.extend(ob);
            Fitness::Ranked {
                scores: sa,
                objectives: oa,
            }
        }
        _ => unreachable!("evaluator changed fitness kind mid-search"),
    };
    (population, merged_fitness)
}

/// Elitist survivor selection: top-k by score, or NSGA-II
/// (rank, crowding) for objective vectors. Duplicate architectures are
/// removed first so the population cannot collapse onto copies of the
/// score maximiser (`merged` aligns with the fitness entries).
fn survivor_selection(
    merged: &[Architecture],
    fitness: &Fitness,
    k: usize,
    moo: &mut MooWorkspace,
) -> Result<Vec<usize>> {
    // keep one entry per distinct architecture
    let mut seen = std::collections::HashSet::new();
    let unique: Vec<usize> = (0..merged.len())
        .filter(|&i| seen.insert((merged[i].space(), merged[i].index())))
        .collect();
    match fitness {
        Fitness::Scores(s) => {
            let mut idx = unique;
            idx.sort_by(|&a, &b| s[b].total_cmp(&s[a]));
            idx.truncate(k);
            Ok(idx)
        }
        Fitness::Ranked { scores, objectives } => {
            // the score decides front membership (top 2k pool); the same
            // call's predicted objectives then keep the pool diverse —
            // boundary (corner) candidates always survive
            // the score gates front membership: only the best-scored
            // candidates (k plus a 25 % margin) enter the pool; crowding
            // on the same call's predicted objectives then trims the
            // margin so coverage, not score noise, decides the last slots
            let mut pool = unique;
            pool.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            pool.truncate(k + k / 4 + 1);
            if pool.len() <= k {
                return Ok(pool);
            }
            let crowd = moo.crowding_distance_of(objectives, &pool)?;
            let mut order: Vec<usize> = (0..pool.len()).collect();
            order.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]));
            Ok(order.into_iter().take(k).map(|slot| pool[slot]).collect())
        }
        Fitness::Objectives(all_objs) => {
            let objs: Vec<SharedObjectives> = unique.iter().map(|&i| all_objs[i].clone()).collect();
            let mut fronts = Fronts::new();
            moo.fast_non_dominated_sort_into(&objs, &mut fronts)?;
            let mut keep = Vec::with_capacity(k);
            for front in fronts.iter() {
                if keep.len() + front.len() <= k {
                    keep.extend(front.iter().map(|&i| unique[i]));
                } else {
                    // fill the remainder with the most spread-out members
                    let crowd = moo.crowding_distance_of(&objs, front)?;
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]));
                    for &slot in order.iter().take(k - keep.len()) {
                        keep.push(unique[front[slot]]);
                    }
                    break;
                }
            }
            Ok(keep)
        }
    }
}

fn filter_fitness(fitness: &Fitness, keep: &[usize]) -> Fitness {
    match fitness {
        Fitness::Scores(s) => Fitness::Scores(keep.iter().map(|&i| s[i]).collect()),
        Fitness::Objectives(o) => Fitness::Objectives(keep.iter().map(|&i| o[i].clone()).collect()),
        Fitness::Ranked { scores, objectives } => Fitness::Ranked {
            scores: keep.iter().map(|&i| scores[i]).collect(),
            objectives: keep.iter().map(|&i| objectives[i].clone()).collect(),
        },
    }
}

/// Shuffle-free helper used by tests: picks `k` best indices by score.
#[cfg(test)]
pub(crate) fn top_k_by_score(scores: &[f64], k: usize) -> Vec<usize> {
    let archs: Vec<Architecture> = (0..scores.len())
        .map(|i| Architecture::nb201_from_index(i as u64).expect("small index"))
        .collect();
    let mut moo = MooWorkspace::new();
    survivor_selection(&archs, &Fitness::Scores(scores.to_vec()), k, &mut moo)
        .expect("scores never fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{share_objectives, ScoreEvaluator};
    use rand::seq::SliceRandom as _;

    /// Score = -(distance to a known optimum): MOEA should find it.
    fn stub_evaluator() -> ScoreEvaluator {
        ScoreEvaluator::from_fn(
            "stub",
            Box::new(|archs| {
                Ok(archs
                    .iter()
                    .map(|a| {
                        // favour architectures with many conv3x3 (op index 3)
                        a.op_indices().iter().filter(|&&o| o == 3).count() as f64
                    })
                    .collect())
            }),
        )
    }

    #[test]
    fn moea_improves_stub_objective() {
        let moea = Moea::new(MoeaConfig::small(SearchSpaceId::NasBench201)).unwrap();
        let mut eval = stub_evaluator();
        let result = moea.run(&mut eval).unwrap();
        assert_eq!(result.population.len(), 16);
        assert_eq!(result.evaluator, "stub");
        assert!(result.evaluations > 16);
        assert_eq!(result.history.len(), 8);
        // the best member should be close to all-conv3x3
        let best = result
            .population
            .iter()
            .map(|a| a.op_indices().iter().filter(|&&o| o == 3).count())
            .max()
            .unwrap();
        assert!(best >= 5, "best only has {best}/6 conv3x3 edges");
    }

    #[test]
    fn moea_with_objectives_keeps_nondominated() {
        let mut eval = ScoreEvaluator::from_fn(
            "objective-stub",
            Box::new(|archs| Ok(archs.iter().map(|a| a.index() as f64).collect())),
        );
        // trivially runs with scores; objectives path tested via survivor fn
        let moea = Moea::new(MoeaConfig::small(SearchSpaceId::NasBench201)).unwrap();
        assert!(moea.run(&mut eval).is_ok());
        // survivor selection on objectives prefers the first front
        let objs = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![5.0, 5.0],
        ];
        let archs: Vec<Architecture> = (0..4)
            .map(|i| Architecture::nb201_from_index(i).unwrap())
            .collect();
        let keep = survivor_selection(
            &archs,
            &Fitness::Objectives(share_objectives(objs)),
            3,
            &mut MooWorkspace::new(),
        )
        .unwrap();
        assert_eq!(keep.len(), 3);
        assert!(!keep.contains(&3), "dominated point survived");
    }

    #[test]
    fn config_validation() {
        let base = MoeaConfig::small(SearchSpaceId::NasBench201);
        assert!(Moea::new(base.clone()).is_ok());
        let mut bad = base.clone();
        bad.population = 1;
        assert!(Moea::new(bad).is_err());
        let mut bad = base.clone();
        bad.spaces.clear();
        assert!(Moea::new(bad).is_err());
        let mut bad = base.clone();
        bad.tournament = 0;
        assert!(Moea::new(bad).is_err());
        let mut bad = base;
        bad.mutation_rate = 1.5;
        assert!(Moea::new(bad).is_err());
    }

    #[test]
    fn paper_config_values() {
        let cfg = MoeaConfig::paper(SearchSpaceId::FBNet);
        assert_eq!(cfg.population, 150);
        assert_eq!(cfg.generations, 250);
        assert!((cfg.mutation_rate - 0.9).abs() < 1e-12);
        assert_eq!(cfg.budget, Some(Duration::from_secs(86_400)));
    }

    #[test]
    fn mixed_space_search_produces_both_spaces() {
        let mut cfg = MoeaConfig::small(SearchSpaceId::NasBench201);
        cfg.spaces = vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet];
        cfg.generations = 2;
        let moea = Moea::new(cfg).unwrap();
        let mut eval =
            ScoreEvaluator::from_fn("flat", Box::new(|archs| Ok(vec![0.0; archs.len()])));
        let result = moea.run(&mut eval).unwrap();
        let nb = result
            .population
            .iter()
            .filter(|a| a.space() == SearchSpaceId::NasBench201)
            .count();
        assert!(nb > 0 && nb < result.population.len());
    }

    #[test]
    fn top_k_sorts_descending() {
        let mut scores: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        scores.shuffle(&mut rng);
        let top = top_k_by_score(&scores, 3);
        let mut vals: Vec<f64> = top.iter().map(|&i| scores[i]).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MoeaConfig::small(SearchSpaceId::NasBench201).with_seed(42);
        let moea = Moea::new(cfg).unwrap();
        let a = moea.run(&mut stub_evaluator()).unwrap();
        let b = moea.run(&mut stub_evaluator()).unwrap();
        assert_eq!(a.population, b.population);
    }

    #[test]
    fn ranked_selection_keeps_objective_corners() {
        // 6 candidates, k = 4: the score pool (k + 25 %) admits all six,
        // and the crowding pass must keep the two corner trade-offs
        let archs: Vec<Architecture> = (0..6)
            .map(|i| Architecture::nb201_from_index(i).unwrap())
            .collect();
        let scores = vec![1.0, 0.99, 0.98, 0.97, 0.96, 0.95];
        let objectives: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 5.0 - i as f64]).collect();
        let fitness = Fitness::Ranked {
            scores,
            objectives: share_objectives(objectives),
        };
        let keep = survivor_selection(&archs, &fitness, 4, &mut MooWorkspace::new()).unwrap();
        assert_eq!(keep.len(), 4);
        assert!(keep.contains(&0), "low-error corner evicted");
        assert!(keep.contains(&5), "low-latency corner evicted");
    }

    #[test]
    fn ranked_selection_pool_is_score_gated() {
        // 12 candidates, k = 4: pool = top 6 scores; anything below the
        // score cut can never be selected, however spread out it is
        let archs: Vec<Architecture> = (0..12)
            .map(|i| Architecture::nb201_from_index(i).unwrap())
            .collect();
        let mut scores = vec![0.0; 12];
        for (i, s) in scores.iter_mut().enumerate().take(6) {
            *s = 10.0 - i as f64;
        }
        // extreme objectives on a low-scored candidate
        let mut objectives: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, i as f64]).collect();
        objectives[11] = vec![-1000.0, 1000.0];
        let fitness = Fitness::Ranked {
            scores,
            objectives: share_objectives(objectives),
        };
        let keep = survivor_selection(&archs, &fitness, 4, &mut MooWorkspace::new()).unwrap();
        assert!(
            !keep.contains(&11),
            "score-gated pool admitted a low-score candidate"
        );
    }

    #[test]
    fn ranked_selection_prefers_high_scores_first() {
        // with more candidates than 2k, only the top-2k scores enter the
        // diversity pool at all
        let archs: Vec<Architecture> = (0..10)
            .map(|i| Architecture::nb201_from_index(i).unwrap())
            .collect();
        let mut scores = vec![0.0; 10];
        scores[3] = 5.0;
        scores[6] = 4.0;
        let objectives: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let fitness = Fitness::Ranked {
            scores,
            objectives: share_objectives(objectives),
        };
        let keep = survivor_selection(&archs, &fitness, 1, &mut MooWorkspace::new()).unwrap();
        // pool = top-2 scores {3, 6}; crowding over 2 points keeps both at
        // infinity, truncation keeps the first by crowding order
        assert_eq!(keep.len(), 1);
        assert!(keep[0] == 3 || keep[0] == 6);
    }

    #[test]
    fn duplicate_architectures_are_evicted() {
        let arch = Architecture::nb201_from_index(5).unwrap();
        let archs = vec![arch.clone(), arch.clone(), arch];
        let fitness = Fitness::Scores(vec![3.0, 2.0, 1.0]);
        let keep = survivor_selection(&archs, &fitness, 3, &mut MooWorkspace::new()).unwrap();
        assert_eq!(keep, vec![0], "duplicates must collapse to one entry");
    }
}
