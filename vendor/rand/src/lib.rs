//! Minimal offline subset of the `rand` crate API (see `vendor/README.md`).
//!
//! Provides the `RngCore` / `SeedableRng` core traits, the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::shuffle`.
//! Streams are deterministic and uniform but not byte-compatible with the
//! upstream crate.

/// Core random-number source: everything is derived from `next_u32`/`next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG constructor trait. `seed_from_u64` expands the integer seed
/// through SplitMix64, matching the upstream crate's documented approach.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A value that can be sampled uniformly from an RNG (subset of `Standard`).
pub trait UniformSample {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range that can be sampled from (subset of `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection-free widening multiply keeps bias below 2^-64.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (self.start as i128 + (wide >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (start as i128 + (wide >> 64) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as UniformSample>::sample_from(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = <$t as UniformSample>::sample_from(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Extension methods over any `RngCore`, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle and
    /// uniform element choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let j = (wide >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u128;
            let wide = (rng.next_u64() as u128).wrapping_mul(span);
            Some(&self[(wide >> 64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5);
            assert!(v < 5);
            let f: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StepRng(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StepRng(11);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
